"""Legacy setup shim so editable installs work offline (no wheel package)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "ARC (Abstract Relational Calculus) reference implementation: "
        "translator, multi-backend evaluator, and analysis toolkit"
    ),
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "License :: OSI Approved :: MIT License",
        "Topic :: Database",
        "Intended Audience :: Science/Research",
    ],
)
