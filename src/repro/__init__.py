"""ARC: Abstract Relational Calculus — reference implementation.

A reproduction of *"Database Research needs an Abstract Relational Query
Language"* (Gatterbauer & Sabale, CIDR 2026): a semantics-first reference
metalanguage separating a query's relational core from its modalities
(comprehension text, Abstract Language Tree, diagrammatic higraph) and
from orthogonal conventions (set/bag, empty-aggregate, null logic).

Quickstart
----------
>>> import repro
>>> db = repro.Database()
>>> _ = db.create("R", ["A", "B"], [(1, 10), (1, 20), (2, 5)])
>>> q = repro.parse("{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}")
>>> repro.evaluate(q, db).sorted_rows()
[Tuple(A=1, sm=30), Tuple(A=2, sm=5)]
"""

from .core import (
    Conventions,
    SET_CONVENTIONS,
    SOUFFLE_CONVENTIONS,
    SQL_CONVENTIONS,
    build_higraph,
    link,
    parse,
    parse_collection,
    parse_program,
    parse_sentence,
    render_alt,
    render_higraph_ascii,
    render_svg,
    validate,
)
from .api import EvalOptions, Prepared, Session
from .data import NULL, Database, Relation, Truth, Tuple
from .engine import Evaluator, evaluate, standard_registry
from .errors import (
    ArcError,
    BudgetExceeded,
    EvaluationError,
    LinkError,
    OptionsError,
    ParseError,
    QueryTimeout,
    ResourceError,
    RewriteError,
    SchemaError,
    ValidationError,
)

__version__ = "0.1.0"

__all__ = [
    "Conventions",
    "SET_CONVENTIONS",
    "SOUFFLE_CONVENTIONS",
    "SQL_CONVENTIONS",
    "build_higraph",
    "link",
    "parse",
    "parse_collection",
    "parse_program",
    "parse_sentence",
    "render_alt",
    "render_higraph_ascii",
    "render_svg",
    "validate",
    "NULL",
    "Database",
    "Relation",
    "Truth",
    "Tuple",
    "EvalOptions",
    "Prepared",
    "Session",
    "Evaluator",
    "evaluate",
    "standard_registry",
    "ArcError",
    "BudgetExceeded",
    "EvaluationError",
    "LinkError",
    "OptionsError",
    "ParseError",
    "QueryTimeout",
    "ResourceError",
    "RewriteError",
    "SchemaError",
    "ValidationError",
    "__version__",
]
