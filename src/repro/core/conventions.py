"""Conventions: orthogonal, environment-level semantic parameters.

The paper's central separation of concerns (Section 1, 2.6, 2.7): a
*language* encodes the relational composition of a query; a *convention* is
an orthogonal design decision that affects observable behaviour but not the
relational pattern.  This module makes those decisions first-class switches
that the evaluator honours, so the same ARC query can be interpreted like
SQL, like Soufflé, or like a set-theoretic calculus simply by flipping them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class Semantics(enum.Enum):
    """Set vs. bag interpretation of every relation and query result (§2.7)."""

    SET = "set"
    BAG = "bag"


class EmptyAggregate(enum.Enum):
    """What ``sum``/``avg``/``min``/``max`` return over zero input rows (§2.6).

    SQL returns NULL; Soufflé (which has no NULL) returns the aggregate's
    neutral element (0 for sum/count, and errors for min/max — we model the
    neutral-element family as ZERO).  ``count`` is always 0 in both worlds.
    """

    NULL = "null"
    ZERO = "zero"


class NullComparison(enum.Enum):
    """Three-valued (SQL) vs. two-valued logic for comparisons with NULL (§2.10)."""

    THREE_VALUED = "3vl"
    TWO_VALUED = "2vl"


@dataclass(frozen=True)
class Conventions:
    """An immutable bundle of semantic switches.

    Attributes
    ----------
    semantics:
        Set or bag interpretation of relations and results.
    empty_aggregate:
        Behaviour of non-count aggregates over empty groups.
    null_comparison:
        Whether comparisons touching NULL yield UNKNOWN (3VL) or are decided
        in a two-valued domain where NULL is an ordinary value.
    """

    semantics: Semantics = Semantics.SET
    empty_aggregate: EmptyAggregate = EmptyAggregate.NULL
    null_comparison: NullComparison = NullComparison.THREE_VALUED

    def with_(self, **changes):
        """Return a copy with some switches flipped."""
        return replace(self, **changes)

    @property
    def is_bag(self):
        return self.semantics is Semantics.BAG

    @property
    def is_set(self):
        return self.semantics is Semantics.SET

    @property
    def three_valued(self):
        return self.null_comparison is NullComparison.THREE_VALUED

    def describe(self):
        return (
            f"semantics={self.semantics.value}, "
            f"empty_aggregate={self.empty_aggregate.value}, "
            f"null_comparison={self.null_comparison.value}"
        )


#: SQL's conventions: bag semantics, NULL for empty aggregates, 3VL.
SQL_CONVENTIONS = Conventions(
    semantics=Semantics.BAG,
    empty_aggregate=EmptyAggregate.NULL,
    null_comparison=NullComparison.THREE_VALUED,
)

#: Soufflé's conventions: set semantics, 0 for empty aggregates, no 3VL.
SOUFFLE_CONVENTIONS = Conventions(
    semantics=Semantics.SET,
    empty_aggregate=EmptyAggregate.ZERO,
    null_comparison=NullComparison.TWO_VALUED,
)

#: Classical set-theoretic conventions (textbook TRC).
SET_CONVENTIONS = Conventions(
    semantics=Semantics.SET,
    empty_aggregate=EmptyAggregate.NULL,
    null_comparison=NullComparison.THREE_VALUED,
)
