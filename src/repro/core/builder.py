"""Programmatic construction helpers for ARC ASTs.

The comprehension-syntax parser (:mod:`repro.core.parser`) is the usual way
to obtain an AST; this module offers terse helpers for building nodes in
Python when programmatic construction is clearer (generators, rewrites,
tests).

Example
-------
>>> from repro.core import builder as b
>>> q = b.collection(
...     "Q", ["A"],
...     b.exists(
...         [b.bind("r", "R"), b.bind("s", "S")],
...         b.conj(b.eq(b.attr("Q.A"), b.attr("r.A")),
...                b.eq(b.attr("r.B"), b.attr("s.B")),
...                b.eq(b.attr("s.C"), b.const(0))),
...     ),
... )
"""

from __future__ import annotations

from . import nodes as n


def attr(dotted):
    """Build an Attr from ``"var.attr"`` (or pass two args via :func:`attr2`)."""
    var, _, name = dotted.partition(".")
    if not name:
        raise ValueError(f"expected 'var.attr', got {dotted!r}")
    return n.Attr(var, name)


def attr2(var, name):
    return n.Attr(var, name)


def const(value):
    return n.Const(value)


def _expr(value):
    """Coerce strings to Attr and plain scalars to Const."""
    if isinstance(value, n.Node):
        return value
    if isinstance(value, str) and "." in value:
        return attr(value)
    return n.Const(value)


def cmp(left, op, right):
    return n.Comparison(_expr(left), op, _expr(right))


def eq(left, right):
    return cmp(left, "=", right)


def neq(left, right):
    return cmp(left, "<>", right)


def lt(left, right):
    return cmp(left, "<", right)


def lte(left, right):
    return cmp(left, "<=", right)


def gt(left, right):
    return cmp(left, ">", right)


def gte(left, right):
    return cmp(left, ">=", right)


def arith(op, left, right):
    return n.Arith(op, _expr(left), _expr(right))


def agg(func, arg=None):
    return n.AggCall(func, _expr(arg) if arg is not None else None)


def sum_(arg):
    return agg("sum", arg)


def count(arg=None):
    return agg("count", arg)


def avg(arg):
    return agg("avg", arg)


def min_(arg):
    return agg("min", arg)


def max_(arg):
    return agg("max", arg)


def isnull(expr, negated=False):
    return n.IsNull(_expr(expr), negated)


def conj(*formulas):
    return n.make_and(list(formulas))


def disj(*formulas):
    return n.make_or(list(formulas))


def neg(formula):
    return n.Not(formula)


def bind(var, source):
    """Bind *var* to a relation name or a nested Collection."""
    if isinstance(source, str):
        source = n.RelationRef(source)
    return n.Binding(var, source)


def grouping(*keys):
    """``grouping()`` is the explicit γ∅; keys are ``"var.attr"`` strings or Attrs."""
    return n.Grouping(tuple(_expr(k) for k in keys))


def jvar(var):
    return n.JoinVar(var)


def jconst(value):
    return n.JoinConst(value)


def inner(*children):
    return n.Join("inner", [_join_leaf(c) for c in children])


def left(first, second):
    return n.Join("left", [_join_leaf(first), _join_leaf(second)])


def full(first, second):
    return n.Join("full", [_join_leaf(first), _join_leaf(second)])


def _join_leaf(value):
    if isinstance(value, n.JoinExpr):
        return value
    if isinstance(value, str):
        return n.JoinVar(value)
    return n.JoinConst(value)


def exists(bindings, body, grouping=None, join=None):
    return n.Quantifier(list(bindings), body, grouping, join)


def collection(name, attrs, body):
    return n.Collection(n.Head(name, tuple(attrs)), body)


def sentence(body):
    return n.Sentence(body)


def program(definitions=None, main=None):
    return n.Program(dict(definitions or {}), main)
