"""Parser for ARC's comprehension-syntax modality.

Grammar (both Unicode and ASCII spellings; see :mod:`repro.core.lexer`)::

    input       := program | collection | sentence
    program     := (IDENT ':=' collection ';')+ (collection | sentence)
    collection  := '{' head '|' body '}'
    head        := IDENT '(' [IDENT (',' IDENT)*] ')'
    body        := or_formula
    or_formula  := and_formula ('∨' and_formula)*
    and_formula := unary ('∧' unary)*
    unary       := '¬' unary
                 | quantifier
                 | '(' body ')'          -- when it contains a formula
                 | predicate
    quantifier  := '∃' qitem (',' qitem)* '[' body ']'
    qitem       := IDENT '∈' source | grouping | join_annotation
    source      := IDENT | collection
    grouping    := 'γ' ('∅' | key (',' key)*)      -- key := IDENT '.' IDENT
    join_ann    := ('inner'|'left'|'full') '(' jitem (',' jitem)* ')'
    jitem       := join_ann | IDENT | literal
    predicate   := expr (CMP expr) | expr 'is' ['not'] 'null'
    expr        := term (('+'|'-') term)*
    term        := factor (('*'|'/'|'%') factor)*
    factor      := literal | agg '(' (expr|'*') ')' | IDENT '.' IDENT
                 | '(' expr ')' | '-' factor
    sentence    := or_formula             -- no braces, boolean query

The parser is deliberately backtracking-free except at one point: a ``(``
inside a formula may open either a parenthesized formula or a parenthesized
arithmetic expression, resolved by tentative parsing.
"""

from __future__ import annotations

from ..errors import ParseError
from . import nodes as n
from .lexer import EOF, IDENT, KEYWORD, NUMBER, STRING, SYMBOL, literal_value, tokenize


def parse(text):
    """Parse a collection, sentence, or program from comprehension syntax.

    Returns a :class:`~repro.core.nodes.Collection`,
    :class:`~repro.core.nodes.Sentence`, or
    :class:`~repro.core.nodes.Program` depending on the input shape.
    """
    return _Parser(tokenize(text)).parse_input()


def parse_collection(text):
    """Parse exactly one collection; raise ParseError on anything else."""
    result = parse(text)
    if not isinstance(result, n.Collection):
        raise ParseError(f"expected a collection, parsed {type(result).__name__}")
    return result


def parse_sentence(text):
    """Parse exactly one boolean sentence."""
    result = parse(text)
    if isinstance(result, n.Sentence):
        return result
    raise ParseError(f"expected a sentence, parsed {type(result).__name__}")


def parse_program(text):
    """Parse input and always wrap it in a Program (possibly with no defs)."""
    result = parse(text)
    if isinstance(result, n.Program):
        return result
    return n.Program({}, result)


class _Parser:
    """Recursive-descent parser over a token list with save/restore."""

    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self, offset=0):
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self):
        token = self._peek()
        if token.type != EOF:
            self._pos += 1
        return token

    def _expect_symbol(self, symbol):
        token = self._next()
        if not token.is_symbol(symbol):
            raise ParseError(
                f"expected {symbol!r}, got {token.value!r}", token.line, token.column
            )
        return token

    def _expect_keyword(self, keyword):
        token = self._next()
        if not token.is_keyword(keyword):
            raise ParseError(
                f"expected {keyword!r}, got {token.value!r}", token.line, token.column
            )
        return token

    def _expect_ident(self):
        token = self._next()
        if token.type != IDENT:
            raise ParseError(
                f"expected identifier, got {token.value!r}", token.line, token.column
            )
        return token.value

    # -- entry points --------------------------------------------------------

    def parse_input(self):
        # A program starts with `Name := {`.
        if self._peek().type == IDENT and self._peek(1).is_symbol(":="):
            return self._parse_program()
        if self._peek().is_symbol("{"):
            collection = self._parse_collection()
            self._expect_end()
            return collection
        sentence = n.Sentence(self._parse_or())
        self._expect_end()
        return sentence

    def _expect_end(self):
        token = self._peek()
        if token.type != EOF:
            raise ParseError(
                f"unexpected trailing input {token.value!r}", token.line, token.column
            )

    def _parse_program(self):
        definitions = {}
        while self._peek().type == IDENT and self._peek(1).is_symbol(":="):
            name = self._expect_ident()
            self._expect_symbol(":=")
            definition = self._parse_collection()
            definitions[name] = definition
            self._expect_symbol(";")
        if self._peek().type == EOF:
            # Program of definitions only: the last definition is the main.
            if not definitions:
                raise ParseError("empty program")
            return n.Program(definitions, next(reversed(definitions)))
        if self._peek().is_keyword("main"):
            self._next()
            name = self._expect_ident()
            self._expect_end()
            return n.Program(definitions, name)
        if self._peek().is_symbol("{"):
            main = self._parse_collection()
        else:
            main = n.Sentence(self._parse_or())
        self._expect_end()
        return n.Program(definitions, main)

    # -- collections -----------------------------------------------------------

    def _parse_collection(self):
        self._expect_symbol("{")
        head = self._parse_head()
        self._expect_symbol("|")
        body = self._parse_or()
        self._expect_symbol("}")
        return n.Collection(head, body)

    def _parse_head(self):
        name = self._expect_ident()
        self._expect_symbol("(")
        attrs = []
        if not self._peek().is_symbol(")"):
            while True:
                token = self._next()
                if token.type not in (IDENT, KEYWORD):
                    raise ParseError(
                        f"expected attribute name, got {token.value!r}",
                        token.line,
                        token.column,
                    )
                attrs.append(token.value)
                if self._peek().is_symbol(","):
                    self._next()
                    continue
                break
        self._expect_symbol(")")
        return n.Head(name, tuple(attrs))

    # -- formulas ---------------------------------------------------------------

    def _parse_or(self):
        parts = [self._parse_and()]
        while self._peek().is_keyword("or"):
            self._next()
            parts.append(self._parse_and())
        return n.make_or(parts)

    def _parse_and(self):
        parts = [self._parse_unary()]
        while self._peek().is_keyword("and"):
            self._next()
            parts.append(self._parse_unary())
        if len(parts) == 1:
            return parts[0]
        return n.And(parts)

    def _parse_unary(self):
        token = self._peek()
        if token.is_keyword("not"):
            self._next()
            return n.Not(self._parse_unary())
        if token.is_keyword("exists"):
            return self._parse_quantifier()
        if token.is_keyword("true") and not self._peek(1).is_symbol(
            "=", "<>", "!=", "<", "<=", ">", ">="
        ):
            self._next()
            return n.BoolConst(True)
        if token.is_keyword("false") and not self._peek(1).is_symbol(
            "=", "<>", "!=", "<", "<=", ">", ">="
        ):
            self._next()
            return n.BoolConst(False)
        if token.is_symbol("("):
            # Tentatively parse as a parenthesized formula; fall back to a
            # predicate whose left expression is parenthesized arithmetic.
            saved = self._pos
            try:
                self._next()
                inner = self._parse_or()
                self._expect_symbol(")")
                if self._peek().is_symbol("=", "<>", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%"):
                    raise ParseError("parenthesized expression, not formula")
                return inner
            except ParseError:
                self._pos = saved
                return self._parse_predicate()
        return self._parse_predicate()

    def _parse_quantifier(self):
        self._expect_keyword("exists")
        bindings = []
        grouping = None
        join = None
        while True:
            token = self._peek()
            if token.is_keyword("gamma"):
                self._next()
                grouping = self._parse_grouping_keys()
            elif token.is_keyword("left", "full", "inner") and self._peek(1).is_symbol("("):
                join = self._parse_join_annotation()
            elif token.type == IDENT:
                var = self._expect_ident()
                self._expect_keyword("in")
                bindings.append(n.Binding(var, self._parse_source()))
            else:
                raise ParseError(
                    f"expected binding, grouping, or join annotation, got {token.value!r}",
                    token.line,
                    token.column,
                )
            if self._peek().is_symbol(","):
                self._next()
                continue
            break
        self._expect_symbol("[")
        body = self._parse_or()
        self._expect_symbol("]")
        return n.Quantifier(bindings, body, grouping, join)

    def _parse_source(self):
        if self._peek().is_symbol("{"):
            return self._parse_collection()
        name = self._next()
        if name.type not in (IDENT, STRING):
            raise ParseError(
                f"expected relation name, got {name.value!r}", name.line, name.column
            )
        return n.RelationRef(name.value)

    def _parse_grouping_keys(self):
        if self._peek().is_keyword("empty"):
            self._next()
            return n.Grouping(())
        if self._peek().is_symbol("("):  # gamma() is also the empty grouping
            self._next()
            self._expect_symbol(")")
            return n.Grouping(())
        keys = [self._parse_attr()]
        # Keys continue while the lookahead is `, ident . ident` and the
        # identifier is not itself a new binding (`ident ∈ ...`).
        while (
            self._peek().is_symbol(",")
            and self._peek(1).type == IDENT
            and self._peek(2).is_symbol(".")
            and not self._peek(1).is_keyword("in")
        ):
            self._next()
            keys.append(self._parse_attr())
        return n.Grouping(tuple(keys))

    def _parse_join_annotation(self):
        kind_token = self._next()
        kind = kind_token.value
        self._expect_symbol("(")
        children = []
        while True:
            token = self._peek()
            if token.is_keyword("left", "full", "inner") and self._peek(1).is_symbol("("):
                children.append(self._parse_join_annotation())
            elif token.type == IDENT:
                children.append(n.JoinVar(self._expect_ident()))
            elif token.type in (NUMBER, STRING) or token.is_keyword("true", "false", "null"):
                children.append(n.JoinConst(literal_value(self._next())))
            else:
                raise ParseError(
                    f"expected join-annotation item, got {token.value!r}",
                    token.line,
                    token.column,
                )
            if self._peek().is_symbol(","):
                self._next()
                continue
            break
        self._expect_symbol(")")
        return n.Join(kind, children)

    # -- predicates and expressions ------------------------------------------

    def _parse_predicate(self):
        left = self._parse_expr()
        token = self._peek()
        if token.is_keyword("is"):
            self._next()
            negated = False
            if self._peek().is_keyword("not"):
                self._next()
                negated = True
            self._expect_keyword("null")
            return n.IsNull(left, negated)
        if token.is_symbol("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self._next().value
            right = self._parse_expr()
            return n.Comparison(left, op, right)
        raise ParseError(
            f"expected comparison operator, got {token.value!r}",
            token.line,
            token.column,
        )

    def _parse_expr(self):
        left = self._parse_term()
        while self._peek().is_symbol("+", "-"):
            op = self._next().value
            right = self._parse_term()
            left = n.Arith(op, left, right)
        return left

    def _parse_term(self):
        left = self._parse_factor()
        while self._peek().is_symbol("*", "/", "%"):
            op = self._next().value
            right = self._parse_factor()
            left = n.Arith(op, left, right)
        return left

    def _parse_factor(self):
        token = self._peek()
        if token.is_symbol("-"):
            self._next()
            inner = self._parse_factor()
            if isinstance(inner, n.Const) and isinstance(inner.value, (int, float)):
                return n.Const(-inner.value)
            return n.Arith("-", n.Const(0), inner)
        if token.is_symbol("("):
            self._next()
            inner = self._parse_expr()
            self._expect_symbol(")")
            return inner
        if token.type in (NUMBER, STRING) or token.is_keyword("true", "false", "null"):
            return n.Const(literal_value(self._next()))
        if token.type == IDENT:
            if token.value.lower() in n.AGGREGATE_FUNCTIONS and self._peek(1).is_symbol("("):
                return self._parse_aggregate()
            return self._parse_attr()
        raise ParseError(
            f"expected expression, got {token.value!r}", token.line, token.column
        )

    def _parse_aggregate(self):
        func = self._next().value.lower()
        self._expect_symbol("(")
        if self._peek().is_symbol("*"):
            self._next()
            self._expect_symbol(")")
            return n.AggCall("count", None)
        arg = self._parse_expr()
        self._expect_symbol(")")
        return n.AggCall(func, arg)

    def _parse_attr(self):
        var = self._expect_ident()
        self._expect_symbol(".")
        token = self._next()
        if token.type not in (IDENT, KEYWORD, NUMBER):
            raise ParseError(
                f"expected attribute name after '.', got {token.value!r}",
                token.line,
                token.column,
            )
        return n.Attr(var, token.value)
