"""ARC abstract syntax: the node vocabulary of the Abstract Relational Calculus.

These nodes are the *language-independent* representation the paper calls for
(Section 2): a small, reusable operator vocabulary in which binding, scoping,
and grouping structure is explicit.  Every frontend (comprehension syntax,
SQL, Datalog, TRC, Rel) parses into these nodes, every modality (ALT text,
higraph, comprehension text, SQL) renders out of them, and the evaluator
interprets them directly under a :class:`~repro.core.conventions.Conventions`.

Design notes
------------
* Nodes are plain dataclasses with **identity-based hashing** (``eq=False``)
  so linker/validator annotations can live in side tables keyed by node.
  Structural equality is a separate, explicit operation
  (:func:`structurally_equal`), used by tests and canonicalization.
* A :class:`Collection` is the paper's central construct: a head plus a body
  formula; head attributes receive values only through *assignment
  predicates* (strict scoping, Section 2.1).
* A :class:`Quantifier` introduces one or more bindings, an optional grouping
  operator (``γ keys`` or ``γ∅``), and an optional join-annotation tree for
  outer joins (Section 2.11).
* :class:`Program` holds defined relations (views / IDBs / recursive
  definitions, Fig. 14) next to a main query.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


AGGREGATE_FUNCTIONS = (
    "sum",
    "count",
    "avg",
    "min",
    "max",
    "sumdistinct",
    "countdistinct",
    "avgdistinct",
)

COMPARISON_OPS = ("=", "<>", "!=", "<", "<=", ">", ">=")
ARITHMETIC_OPS = ("+", "-", "*", "/", "%")
JOIN_KINDS = ("inner", "left", "full")


class Node:
    """Base class for every ARC AST node."""

    def children(self):
        """Yield child nodes (in deterministic order)."""
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self):
        """Pre-order traversal of the subtree rooted at this node."""
        yield self
        for child in self.children():
            yield from child.walk()

    def label(self):
        """Short label for this node (used by ALT rendering and debugging)."""
        return type(self).__name__

    def __repr__(self):
        parts = []
        for f in dataclasses.fields(self):
            parts.append(f"{f.name}={getattr(self, f.name)!r}")
        return f"{type(self).__name__}({', '.join(parts)})"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(eq=False, repr=False)
class Expr(Node):
    """Marker base class for value expressions."""


@dataclass(eq=False, repr=False)
class Attr(Expr):
    """Attribute reference ``var.attr`` (a range variable's named attribute)."""

    var: str
    attr: str

    def label(self):
        return f"{self.var}.{self.attr}"


@dataclass(eq=False, repr=False)
class Const(Expr):
    """A literal constant (int, float, str, bool, or NULL)."""

    value: object

    def label(self):
        return repr(self.value)


@dataclass(eq=False, repr=False)
class Arith(Expr):
    """Binary arithmetic over expressions; NULL propagates per convention."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in ARITHMETIC_OPS:
            raise ValueError(f"unknown arithmetic operator {self.op!r}")

    def label(self):
        return self.op


@dataclass(eq=False, repr=False)
class AggCall(Expr):
    """Aggregate term, e.g. ``sum(r.B)`` or ``count(s.d)``.

    Aggregates appear as *operands in predicates* (Section 2.5).  The
    argument may be any scalar expression over the grouping scope's
    variables (``sum(a.val * b.val)`` in the matrix example); ``arg=None``
    means "count rows" (SQL ``COUNT(*)``).
    """

    func: str
    arg: Expr | None

    def __post_init__(self):
        if self.func not in AGGREGATE_FUNCTIONS:
            raise ValueError(f"unknown aggregate function {self.func!r}")
        if self.arg is None and self.func != "count":
            raise ValueError(f"aggregate {self.func!r} requires an argument")

    @property
    def distinct(self):
        return self.func.endswith("distinct")

    def label(self):
        return f"{self.func}(...)" if self.arg is not None else "count(*)"


# ---------------------------------------------------------------------------
# Formulas (predicates and logical structure)
# ---------------------------------------------------------------------------


@dataclass(eq=False, repr=False)
class Formula(Node):
    """Marker base class for boolean-valued formulas."""


@dataclass(eq=False, repr=False)
class Comparison(Formula):
    """A predicate ``left op right``.

    Three roles (distinguished by the linker, not by the syntax):

    * **comparison predicate** — both sides over bound range variables;
    * **assignment predicate** — ``H.attr = expr`` where ``H`` is the head of
      the enclosing collection (the paper's explicit head assignments);
    * **aggregation predicate** — either side contains an :class:`AggCall`
      (may simultaneously be an assignment, Fig. 4, or a comparison, Fig. 9).
    """

    left: Expr
    op: str
    right: Expr

    def __post_init__(self):
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def has_aggregate(self):
        return any(isinstance(n, AggCall) for n in self.walk())

    def label(self):
        return self.op


@dataclass(eq=False, repr=False)
class IsNull(Formula):
    """``expr IS [NOT] NULL`` — explicit two-valued null test (Fig. 11)."""

    expr: Expr
    negated: bool = False

    def label(self):
        return "is not null" if self.negated else "is null"


@dataclass(eq=False, repr=False)
class BoolConst(Formula):
    """A constant truth value (used for vacuous bodies, e.g. ``ON true``)."""

    value: bool

    def label(self):
        return "true" if self.value else "false"


@dataclass(eq=False, repr=False)
class And(Formula):
    """Conjunction of any number of formulas."""

    children_list: list = field(default_factory=list)

    def label(self):
        return "AND ∧"


@dataclass(eq=False, repr=False)
class Or(Formula):
    """Disjunction; also models union of multiple Datalog rules (Fig. 10)."""

    children_list: list = field(default_factory=list)

    def label(self):
        return "OR ∨"


@dataclass(eq=False, repr=False)
class Not(Formula):
    """Negation; scopes are explicit so the higraph can draw negation regions."""

    child: Formula

    def label(self):
        return "NOT ¬"


# ---------------------------------------------------------------------------
# Bindings, grouping, joins, quantification
# ---------------------------------------------------------------------------


@dataclass(eq=False, repr=False)
class RelationRef(Node):
    """Reference to a relation by name.

    Whether the name denotes a base, intensional (defined), or external
    relation is resolved by the linker against the program and the external
    registry — the syntax is uniform, matching the paper's "everything is a
    relation" stance (Section 2.13).
    """

    name: str

    def label(self):
        return self.name


@dataclass(eq=False, repr=False)
class Binding(Node):
    """A range variable bound to a relation or to a nested collection.

    ``r ∈ R`` or ``x ∈ {X(sm) | ...}`` — the latter gives lateral /
    correlated nesting (Section 2.4): the nested collection may reference
    bindings introduced *earlier* in the same scope and in enclosing scopes.
    """

    var: str
    source: Node  # RelationRef | Collection

    def label(self):
        if isinstance(self.source, RelationRef):
            return f"BINDING: {self.var} ∈ {self.source.name}"
        return f"BINDING: {self.var} ∈ "


@dataclass(eq=False, repr=False)
class Grouping(Node):
    """The grouping operator ``γ`` with its key attributes.

    ``keys=()`` is the explicit ``γ∅`` ("group by true"): a single group over
    the whole scope — crucially, **one group even over empty input**, which
    is exactly what distinguishes the correct and incorrect count-bug
    rewrites (Section 3.2).
    """

    keys: tuple = ()

    def label(self):
        if not self.keys:
            return "GROUPING: ∅"
        return "GROUPING: " + ", ".join(k.label() for k in self.keys)


@dataclass(eq=False, repr=False)
class JoinExpr(Node):
    """Marker base for join-annotation trees (Section 2.11)."""


@dataclass(eq=False, repr=False)
class JoinVar(JoinExpr):
    """Leaf of a join annotation: one of the scope's range variables."""

    var: str

    def label(self):
        return self.var


@dataclass(eq=False, repr=False)
class JoinConst(JoinExpr):
    """Literal leaf: a singleton virtual unary table holding one constant
    (the ``inner(11, s)`` device of Fig. 12)."""

    value: object

    def label(self):
        return repr(self.value)


@dataclass(eq=False, repr=False)
class Join(JoinExpr):
    """Interior node: ``inner`` is k-ary, ``left``/``full`` binary."""

    kind: str
    children_list: list = field(default_factory=list)

    def __post_init__(self):
        if self.kind not in JOIN_KINDS:
            raise ValueError(f"unknown join kind {self.kind!r}")
        if self.kind in ("left", "full") and len(self.children_list) != 2:
            raise ValueError(f"{self.kind} join annotation must be binary")

    def label(self):
        return f"JOIN: {self.kind}"


@dataclass(eq=False, repr=False)
class Quantifier(Formula):
    """Existential quantification introducing bindings (and optional γ / joins).

    The body formula is evaluated once per combination of bindings (the
    conceptual nested-loop strategy, Section 2.3).  The presence of any
    aggregation predicate in the directly-owned predicates turns the scope
    into a *grouping scope* and requires ``grouping`` to be present
    (validator-enforced).
    """

    bindings: list = field(default_factory=list)
    body: Formula = None
    grouping: Grouping | None = None
    join: JoinExpr | None = None

    def label(self):
        return "QUANTIFIER ∃"


# ---------------------------------------------------------------------------
# Collections, sentences, programs
# ---------------------------------------------------------------------------


@dataclass(eq=False, repr=False)
class Head(Node):
    """Output relation declaration ``Q(A, B, ...)`` of a collection."""

    name: str
    attrs: tuple = ()

    def label(self):
        return f"HEAD: {self.name}({','.join(self.attrs)})"


@dataclass(eq=False, repr=False)
class Collection(Formula):
    """``{ Head | body }`` — the declarative specification of a relation.

    Heads are *clean* (Section 2.1): body variables never appear in the head;
    instead assignment predicates ``Head.attr = expr`` populate the output.
    A Collection can appear as a query, as a binding source (nested
    comprehension = lateral join), or as a defined relation in a program.
    """

    head: Head = None
    body: Formula = None

    def label(self):
        return "COLLECTION"


@dataclass(eq=False, repr=False)
class Sentence(Node):
    """A boolean query — a body with no head (Fig. 9, integrity constraints)."""

    body: Formula = None

    def label(self):
        return "SENTENCE"


@dataclass(eq=False, repr=False)
class Program(Node):
    """A set of defined relations plus a main query.

    ``definitions`` maps relation names to their defining Collections;
    definitions may reference each other and themselves (recursion,
    Section 2.9 — least-fixed-point semantics).  ``main`` is a Collection,
    Sentence, or the name of a definition.
    """

    definitions: dict = field(default_factory=dict)
    main: object = None

    def children(self):
        for definition in self.definitions.values():
            yield definition
        if isinstance(self.main, Node):
            yield self.main

    def resolve_main(self):
        """Return the main query node (dereferencing a name if needed)."""
        if isinstance(self.main, str):
            return self.definitions[self.main]
        return self.main

    def label(self):
        return "PROGRAM"


# ---------------------------------------------------------------------------
# Structural operations
# ---------------------------------------------------------------------------


def structurally_equal(a, b):
    """Exact structural equality (same node types, fields, and child order).

    Variable *names* matter here; use
    :func:`repro.analysis.canonical.canonicalize` first for name-insensitive
    pattern equality.
    """
    if type(a) is not type(b):
        return False
    if not isinstance(a, Node):
        return a == b
    for f in dataclasses.fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, Node) or isinstance(vb, Node):
            if not structurally_equal(va, vb):
                return False
        elif isinstance(va, (list, tuple)) and isinstance(vb, (list, tuple)):
            if len(va) != len(vb):
                return False
            for ia, ib in zip(va, vb):
                if isinstance(ia, Node) or isinstance(ib, Node):
                    if not structurally_equal(ia, ib):
                        return False
                elif ia != ib:
                    return False
        elif isinstance(va, dict) and isinstance(vb, dict):
            if set(va) != set(vb):
                return False
            for key in va:
                if not structurally_equal(va[key], vb[key]):
                    return False
        elif va != vb:
            return False
    return True


def clone(node):
    """Deep-copy an AST subtree (new node identities, same structure)."""
    if not isinstance(node, Node):
        return node
    kwargs = {}
    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        if isinstance(value, Node):
            kwargs[f.name] = clone(value)
        elif isinstance(value, list):
            kwargs[f.name] = [clone(v) if isinstance(v, Node) else v for v in value]
        elif isinstance(value, tuple):
            kwargs[f.name] = tuple(clone(v) if isinstance(v, Node) else v for v in value)
        elif isinstance(value, dict):
            kwargs[f.name] = {k: clone(v) if isinstance(v, Node) else v for k, v in value.items()}
        else:
            kwargs[f.name] = value
    return type(node)(**kwargs)


def transform(node, fn):
    """Rebuild the tree bottom-up, applying *fn* to every (rebuilt) node.

    *fn* receives a freshly cloned node whose children have already been
    transformed, and returns a replacement node (or the same node).
    """
    if not isinstance(node, Node):
        return node
    kwargs = {}
    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        if isinstance(value, Node):
            kwargs[f.name] = transform(value, fn)
        elif isinstance(value, list):
            kwargs[f.name] = [transform(v, fn) if isinstance(v, Node) else v for v in value]
        elif isinstance(value, tuple):
            kwargs[f.name] = tuple(
                transform(v, fn) if isinstance(v, Node) else v for v in value
            )
        elif isinstance(value, dict):
            kwargs[f.name] = {
                k: transform(v, fn) if isinstance(v, Node) else v for k, v in value.items()
            }
        else:
            kwargs[f.name] = value
    rebuilt = type(node)(**kwargs)
    return fn(rebuilt)


def attrs_used(node):
    """All Attr references in the subtree, as (var, attr) pairs."""
    return [(n.var, n.attr) for n in node.walk() if isinstance(n, Attr)]


def vars_used(node):
    """All range-variable names referenced by attributes in the subtree."""
    return {n.var for n in node.walk() if isinstance(n, Attr)}


def conjuncts(formula):
    """Flatten a formula into its top-level conjuncts."""
    if isinstance(formula, And):
        result = []
        for child in formula.children_list:
            result.extend(conjuncts(child))
        return result
    if formula is None:
        return []
    return [formula]


def make_and(formulas):
    """Build a conjunction, collapsing trivial cases."""
    flat = []
    for f in formulas:
        flat.extend(conjuncts(f))
    flat = [f for f in flat if not (isinstance(f, BoolConst) and f.value)]
    if not flat:
        return BoolConst(True)
    if len(flat) == 1:
        return flat[0]
    return And(flat)


def make_or(formulas):
    formulas = list(formulas)
    if not formulas:
        return BoolConst(False)
    if len(formulas) == 1:
        return formulas[0]
    flat = []
    for f in formulas:
        if isinstance(f, Or):
            flat.extend(f.children_list)
        else:
            flat.append(f)
    return Or(flat)
