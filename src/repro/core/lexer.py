"""Tokenizer shared by the comprehension-syntax and TRC frontends.

The comprehension modality of ARC uses a small Unicode vocabulary
(``∃ ∈ ∧ ∨ ¬ γ ∅``) with ASCII fallbacks (``exists in and or not gamma``)
so queries can be typed on any keyboard.  The lexer normalizes both spellings
to the same token types.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParseError


# Token types.
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
SYMBOL = "SYMBOL"  # punctuation and operators, value carries the symbol
KEYWORD = "KEYWORD"  # normalized keyword (exists, in, and, or, not, ...)
EOF = "EOF"

#: Unicode symbol -> normalized keyword.
_UNICODE_KEYWORDS = {
    "∃": "exists",
    "∈": "in",
    "∧": "and",
    "∨": "or",
    "¬": "not",
    "γ": "gamma",
    "∅": "empty",
    "×": "cross",
}

#: ASCII words that the lexer promotes to keywords (case-insensitive).
_WORD_KEYWORDS = {
    "exists",
    "in",
    "and",
    "or",
    "not",
    "gamma",
    "empty",
    "null",
    "true",
    "false",
    "is",
    "left",
    "full",
    "inner",
    "cross",
    "main",
}

#: Multi-character operators, longest first.
_MULTI_SYMBOLS = (":=", "<>", "!=", "<=", ">=")

_SINGLE_SYMBOLS = set("{}()[]|,;.=<>+-*/%:")


@dataclass(frozen=True)
class Token:
    """One lexical token with its 1-based source position."""

    type: str
    value: str
    line: int
    column: int

    def is_symbol(self, *symbols):
        return self.type == SYMBOL and self.value in symbols

    def is_keyword(self, *keywords):
        return self.type == KEYWORD and self.value in keywords

    def __repr__(self):
        return f"Token({self.type}, {self.value!r}, {self.line}:{self.column})"


def tokenize(text):
    """Tokenize comprehension-syntax source text into a list of Tokens.

    Raises :class:`~repro.errors.ParseError` on an unrecognized character or
    an unterminated string literal.
    """
    tokens = []
    line = 1
    column = 1
    i = 0
    n = len(text)

    def advance(count):
        nonlocal i, line, column
        for _ in range(count):
            if i < n and text[i] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            i += 1

    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if ch == "#":  # comment to end of line
            while i < n and text[i] != "\n":
                advance(1)
            continue
        start_line, start_column = line, column
        if ch in _UNICODE_KEYWORDS:
            tokens.append(Token(KEYWORD, _UNICODE_KEYWORDS[ch], start_line, start_column))
            advance(1)
            continue
        two = text[i : i + 2]
        if two in _MULTI_SYMBOLS:
            tokens.append(Token(SYMBOL, two, start_line, start_column))
            advance(2)
            continue
        if ch in ("'", '"'):
            quote = ch
            j = i + 1
            buf = []
            while j < n and text[j] != quote:
                buf.append(text[j])
                j += 1
            if j >= n:
                raise ParseError("unterminated string literal", start_line, start_column)
            tokens.append(Token(STRING, "".join(buf), start_line, start_column))
            advance(j + 1 - i)
            continue
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit is attribute access, not
                    # part of the number (e.g. in positional contexts).
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(NUMBER, text[i:j], start_line, start_column))
            advance(j - i)
            continue
        if ch.isalpha() or ch == "_" or ch == "$":
            j = i
            while j < n and (text[j].isalnum() or text[j] in "_$"):
                j += 1
            word = text[i:j]
            lowered = word.lower()
            if lowered in _WORD_KEYWORDS:
                tokens.append(Token(KEYWORD, lowered, start_line, start_column))
            else:
                tokens.append(Token(IDENT, word, start_line, start_column))
            advance(j - i)
            continue
        if ch in _SINGLE_SYMBOLS:
            tokens.append(Token(SYMBOL, ch, start_line, start_column))
            advance(1)
            continue
        raise ParseError(f"unexpected character {ch!r}", start_line, start_column)

    tokens.append(Token(EOF, "", line, column))
    return tokens


def literal_value(token):
    """Convert a NUMBER/STRING/keyword-literal token to its Python value."""
    if token.type == NUMBER:
        if "." in token.value:
            return float(token.value)
        return int(token.value)
    if token.type == STRING:
        return token.value
    if token.type == KEYWORD:
        if token.value == "true":
            return True
        if token.value == "false":
            return False
        if token.value == "null":
            from ..data.values import NULL

            return NULL
    raise ParseError(f"not a literal: {token.value!r}", token.line, token.column)
