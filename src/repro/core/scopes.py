"""Generic scope analyses over ARC quantifier scopes.

These analyses answer structural questions every consumer of a scope needs
— the SQL renderer, the FOI → FIO decorrelation pass, and the executable
backends' capability probes — without committing to any one of them:

* :func:`free_variables` — which outer range variables a subtree references
  (a nested collection with free variables is *correlated*);
* :func:`shadows_binding` — whether a scope rebinds a variable name, which
  blocks substitution-based rewrites (capture);
* :func:`split_scope` — the four-way classification of a scope's conjuncts
  against a head (plain assignments, aggregate assignments, aggregate
  comparisons, row formulas) that both rendering and evaluation share;
* :func:`scalar_subquery_shape` — whether a nested γ∅ collection has the
  one-row-per-outer-environment contract of a scalar subquery (the paper's
  Fig. 5a/13a device).

They lived in :mod:`repro.backends.sql_render` historically; they are in
``core`` because the *engine* needs them too (the decorrelation pass), and
the engine must not depend on a rendering backend.  ``sql_render``
re-exports them for compatibility.
"""

from __future__ import annotations

from . import nodes as n


def free_variables(node):
    """Range variables referenced in *node* but not bound inside it.

    A nested collection with free variables is *correlated*: its SQL
    rendering needs LATERAL, and engines without LATERAL support cannot
    execute it.  The analysis is scope-aware — a variable bound in a nested
    sub-scope does not shadow an outer reference *outside* that sub-scope —
    and collection head names count as bound (head-assignment predicates
    reference them as ``Head.attr``).
    """
    return _free_vars(node, frozenset())


def _free_vars(node, bound):
    if isinstance(node, n.Attr):
        return set() if node.var in bound else {node.var}
    if isinstance(node, n.Collection):
        return _free_vars(node.body, bound | {node.head.name})
    if isinstance(node, n.Quantifier):
        free = set()
        scope = set(bound)
        for binding in node.bindings:
            # A binding's source sees earlier bindings of the same scope
            # (lateral nesting), not itself.
            free |= _free_vars(binding.source, frozenset(scope))
            scope.add(binding.var)
        inner = frozenset(scope)
        free |= _free_vars(node.body, inner)
        if node.grouping is not None:
            for key in node.grouping.keys:
                free |= _free_vars(key, inner)
        return free
    if not isinstance(node, n.Node):
        return set()
    free = set()
    for child in node.children():
        free |= _free_vars(child, bound)
    return free


def assignment_of(predicate, head):
    """``(attr, value-expression)`` when *predicate* assigns *head*, else None.

    The head side must be ``Head.attr`` with ``op == '='``; either operand
    may be the head side.
    """
    if predicate.op != "=":
        return None
    for side, other in (
        (predicate.left, predicate.right),
        (predicate.right, predicate.left),
    ):
        if (
            isinstance(side, n.Attr)
            and side.var == head.name
            and side.attr in head.attrs
        ):
            return (side.attr, other)
    return None


def split_scope(head, quant):
    """Classify a scope's conjuncts against *head* into the four roles.

    Returns ``(assignments, agg_assignments, agg_comparisons, row_formulas)``
    where assignments are ``(attr, expr)`` pairs and the rest are raw
    formulas — the shared vocabulary of SQL's SELECT / GROUP BY aggregate
    items / HAVING / WHERE and the evaluator's scope plan (Section 2.5).
    """
    assignments = []
    agg_assignments = []
    agg_comparisons = []
    row_formulas = []
    for conjunct in n.conjuncts(quant.body):
        if isinstance(conjunct, n.Comparison):
            target = assignment_of(conjunct, head)
            if target is not None:
                if conjunct.has_aggregate():
                    agg_assignments.append(target)
                else:
                    assignments.append(target)
                continue
            if conjunct.has_aggregate():
                agg_comparisons.append(conjunct)
                continue
        row_formulas.append(conjunct)
    return assignments, agg_assignments, agg_comparisons, row_formulas


def scalar_subquery_shape(source):
    """Why *source* cannot render as correlated scalar subqueries (or None).

    The device applies to a γ∅ scope whose head attributes are all assigned
    by aggregate expressions: such a scope emits exactly one row per outer
    environment, so each head attribute is a scalar — rendered as its own
    correlated subquery, which engines without LATERAL (SQLite) execute.
    """
    body = source.body
    if not isinstance(body, n.Quantifier):
        return "inner body is not a single quantifier scope"
    if body.join is not None:
        return "inner scope carries a join annotation"
    if body.grouping is None or body.grouping.keys:
        return "inner scope is not an aggregate-only γ∅ scope"
    head = source.head
    assignments, agg_assignments, agg_comparisons, row_formulas = split_scope(
        head, body
    )
    if assignments:
        return "non-aggregate head assignment in a γ∅ scope"
    if agg_comparisons:
        return "γ∅ aggregate comparison (the group may be filtered away)"
    assigned = dict(agg_assignments)
    if len(assigned) != len(agg_assignments):
        return "duplicate head assignment"
    missing = [attr for attr in head.attrs if attr not in assigned]
    if missing:
        return f"head attributes {missing} have no aggregate assignment"
    for formula in row_formulas:
        if head.name in n.vars_used(formula):
            return "head attribute used outside an assignment"
    return None


def shadows_binding(quant, binding):
    """Whether *quant* rebinds ``binding.var`` outside the binding's source.

    Scalar-subquery inlining substitutes ``var.attr`` references throughout
    the scope's rendering; a nested scope rebinding the same name would be
    captured, so those shapes keep the lateral encoding.
    """
    target = binding.var

    def scan(node):
        if node is binding.source:
            return False
        if isinstance(node, n.Binding) and node is not binding and node.var == target:
            return True
        if isinstance(node, n.Collection) and node.head.name == target:
            return True
        return any(scan(child) for child in node.children())

    return any(scan(child) for child in quant.children())
