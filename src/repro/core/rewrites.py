"""Pattern-level rewrites over ARC queries.

Each rewrite is the ARC-level formulation of a transformation the paper
discusses, together with its applicability conditions:

* :func:`unnest` — merge a nested quantifier into its parent scope.  Valid
  under set semantics; **refused under bag semantics** because unnesting
  multiplies output multiplicities (Section 2.7).
* :func:`nest_existential` — the inverse: push bindings into a nested
  existential scope (semijoin form).
* :func:`not_in_to_not_exists` — replicate SQL's three-valued NOT IN
  behaviour in two-valued logic by adding explicit IS NULL checks
  (Section 2.10, Fig. 11, eq. (17)).
* :func:`distinct_as_grouping` — deduplication via grouping on all
  projected attributes (Section 2.7).
* :func:`decorrelate_scalar` — the **correct** decorrelation of a
  correlated scalar-aggregate test (count-bug version 1) into the lateral
  left-join + grouping form (version 3, eq. (29)).
* :func:`decorrelate_scalar_naive` — the **incorrect** textbook rewrite
  (version 2, eq. (28)); kept as a counterexample generator for the count
  bug (Section 3.2).
* :func:`inline_abstract` — replace bindings to an abstract relation by the
  substituted definition body (Section 2.13.2), the inverse of
  modularization.
"""

from __future__ import annotations

from itertools import count as _counter

from ..errors import RewriteError
from . import nodes as n
from .conventions import SET_CONVENTIONS


# ---------------------------------------------------------------------------
# Unnesting (Section 2.7)
# ---------------------------------------------------------------------------


def unnest(collection, conventions=SET_CONVENTIONS):
    """Merge directly nested existential scopes into their parent scope.

    ``{Q(A) | ∃r∈R[∃s∈S[...]]}`` becomes ``{Q(A) | ∃r∈R, s∈S[...]}``.
    Refused under bag semantics: the nested form emits once per outer
    witness, the flat form once per combination (Section 2.7).
    """
    if conventions.is_bag:
        raise RewriteError(
            "unnesting is not semantics-preserving under bag conventions: "
            "the nested form has semijoin multiplicity, the flat form "
            "multiplies multiplicities per matching pair"
        )
    changed = True
    body = collection.body
    while changed:
        body, changed = _unnest_once(body)
    return n.Collection(n.Head(collection.head.name, collection.head.attrs), body)


def _unnest_once(formula):
    if isinstance(formula, n.Quantifier):
        conjuncts = n.conjuncts(formula.body)
        for index, conjunct in enumerate(conjuncts):
            if (
                isinstance(conjunct, n.Quantifier)
                and conjunct.grouping is None
                and conjunct.join is None
                and formula.grouping is None
                and formula.join is None
            ):
                merged_bindings = formula.bindings + conjunct.bindings
                rest = conjuncts[:index] + conjuncts[index + 1 :]
                merged_body = n.make_and(rest + n.conjuncts(conjunct.body))
                return (
                    n.Quantifier(merged_bindings, merged_body),
                    True,
                )
        new_body, changed = _unnest_once(formula.body)
        if changed:
            return n.Quantifier(formula.bindings, new_body, formula.grouping, formula.join), True
        return formula, False
    if isinstance(formula, (n.And, n.Or)):
        new_children = []
        changed = False
        for child in formula.children_list:
            new_child, child_changed = _unnest_once(child)
            new_children.append(new_child)
            changed = changed or child_changed
        rebuilt = type(formula)(new_children)
        return rebuilt, changed
    if isinstance(formula, n.Not):
        new_child, changed = _unnest_once(formula.child)
        return n.Not(new_child), changed
    return formula, False


def nest_existential(collection, inner_vars):
    """Push the bindings named in *inner_vars* into a nested existential
    scope, along with every conjunct that only references them (and the
    remaining outer variables).  The inverse of :func:`unnest`."""
    body = collection.body
    if not isinstance(body, n.Quantifier) or body.grouping or body.join:
        raise RewriteError("nest_existential expects a plain quantifier body")
    inner_vars = set(inner_vars)
    outer_bindings = [b for b in body.bindings if b.var not in inner_vars]
    inner_bindings = [b for b in body.bindings if b.var in inner_vars]
    if len(inner_bindings) != len(inner_vars):
        missing = inner_vars - {b.var for b in inner_bindings}
        raise RewriteError(f"variables {sorted(missing)} are not bound in this scope")
    inner_conjuncts = []
    outer_conjuncts = []
    for conjunct in n.conjuncts(body.body):
        if n.vars_used(conjunct) & inner_vars:
            inner_conjuncts.append(conjunct)
        else:
            outer_conjuncts.append(conjunct)
    inner = n.Quantifier(inner_bindings, n.make_and(inner_conjuncts))
    outer = n.Quantifier(outer_bindings, n.make_and(outer_conjuncts + [inner]))
    return n.Collection(n.Head(collection.head.name, collection.head.attrs), outer)


# ---------------------------------------------------------------------------
# NOT IN -> NOT EXISTS with explicit null checks (Section 2.10)
# ---------------------------------------------------------------------------


def not_in_to_not_exists(collection):
    """Make SQL's 3VL NOT-IN behaviour explicit in two-valued logic.

    Rewrites every ``¬∃s∈S[s.A = r.A]`` into
    ``¬∃s∈S[s.A = r.A ∨ s.A is null ∨ r.A is null]`` (eq. (17)): the
    rewritten query returns SQL's answer even under the two-valued null
    comparison convention.
    """

    def rewrite(node):
        if not isinstance(node, n.Not) or not isinstance(node.child, n.Quantifier):
            return node
        quant = node.child
        if quant.grouping is not None or quant.join is not None:
            return node
        conjuncts = n.conjuncts(quant.body)
        if len(conjuncts) != 1:
            return node
        predicate = conjuncts[0]
        if not isinstance(predicate, n.Comparison) or predicate.op != "=":
            return node
        if not (isinstance(predicate.left, n.Attr) and isinstance(predicate.right, n.Attr)):
            return node
        disjunction = n.Or(
            [
                predicate,
                n.IsNull(n.clone(predicate.left)),
                n.IsNull(n.clone(predicate.right)),
            ]
        )
        return n.Not(n.Quantifier(quant.bindings, disjunction))

    return n.transform(collection, rewrite)


# ---------------------------------------------------------------------------
# DISTINCT as grouping (Section 2.7)
# ---------------------------------------------------------------------------


def distinct_as_grouping(collection):
    """Add a grouping operator on all head-assigned expressions, expressing
    deduplication without a dedicated DISTINCT construct."""
    body = collection.body
    if not isinstance(body, n.Quantifier):
        raise RewriteError("distinct_as_grouping expects a quantifier body")
    if body.grouping is not None:
        return collection
    head = collection.head
    keys = []
    for conjunct in n.conjuncts(body.body):
        if isinstance(conjunct, n.Comparison) and conjunct.op == "=":
            for side, other in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if (
                    isinstance(side, n.Attr)
                    and side.var == head.name
                    and side.attr in head.attrs
                ):
                    keys.append(n.clone(other))
                    break
    if len(keys) != len(head.attrs):
        raise RewriteError("not every head attribute has a plain assignment")
    return n.Collection(
        n.Head(head.name, head.attrs),
        n.Quantifier(body.bindings, body.body, n.Grouping(tuple(keys)), body.join),
    )


# ---------------------------------------------------------------------------
# Count-bug decorrelations (Section 3.2)
# ---------------------------------------------------------------------------


def _match_correlated_scalar(collection):
    """Match the count-bug version-1 shape:

    ``{Q(...) | ∃r∈R[assignments ∧ ∃s∈S, γ∅[corr ∧ outer_attr op agg(s.x)]]}``

    Returns (outer quantifier, inner quantifier, aggregate predicate) or None.
    """
    body = collection.body
    if not isinstance(body, n.Quantifier) or body.grouping is not None:
        return None
    for conjunct in n.conjuncts(body.body):
        if (
            isinstance(conjunct, n.Quantifier)
            and conjunct.grouping is not None
            and not conjunct.grouping.keys
        ):
            agg_predicates = [
                c
                for c in n.conjuncts(conjunct.body)
                if isinstance(c, n.Comparison) and c.has_aggregate()
            ]
            if len(agg_predicates) == 1:
                return body, conjunct, agg_predicates[0]
    return None


def decorrelate_scalar_naive(collection):
    """The **incorrect** decorrelation (count-bug version 2, eq. (28)).

    Replaces the correlated γ∅ test with a join against an aggregate
    grouped on the correlation attribute.  Loses outer tuples whose group
    is empty — on R(9,0) with S=∅ the result drops from {9} to {}.
    """
    match = _match_correlated_scalar(collection)
    if match is None:
        raise RewriteError("query does not have the correlated-scalar shape")
    outer, inner, agg_predicate = match
    correlation = _correlation_predicate(outer, inner)
    inner_var = inner.bindings[0].var
    corr_attr = _attr_of_var(correlation, inner_var)
    outer_attr = _attr_of_var(correlation, None, exclude=inner_var)

    derived_name = "X"
    agg_expr, outer_side, op = _split_aggregate_predicate(agg_predicate)
    derived = n.Collection(
        n.Head(derived_name, ("key", "ct")),
        n.Quantifier(
            [n.clone(b) for b in inner.bindings],
            n.make_and(
                [
                    n.Comparison(n.Attr(derived_name, "key"), "=", n.clone(corr_attr)),
                    n.Comparison(n.Attr(derived_name, "ct"), "=", n.clone(agg_expr)),
                ]
                + [
                    n.clone(c)
                    for c in n.conjuncts(inner.body)
                    if c is not correlation and not (isinstance(c, n.Comparison) and c.has_aggregate())
                ]
            ),
            n.Grouping((n.clone(corr_attr),)),
        ),
    )
    new_var = "x_"
    rest = [
        n.clone(c)
        for c in n.conjuncts(outer.body)
        if c is not inner
    ]
    new_body = n.Quantifier(
        [n.clone(b) for b in outer.bindings] + [n.Binding(new_var, derived)],
        n.make_and(
            rest
            + [
                n.Comparison(n.clone(outer_attr), "=", n.Attr(new_var, "key")),
                n.Comparison(n.clone(outer_side), op, n.Attr(new_var, "ct")),
            ]
        ),
    )
    return n.Collection(n.Head(collection.head.name, collection.head.attrs), new_body)


def decorrelate_scalar(collection):
    """The **correct** decorrelation (count-bug version 3, eq. (29)):
    a derived table built by a left join of the outer relation against the
    inner one, grouped on the outer key, so empty groups survive."""
    match = _match_correlated_scalar(collection)
    if match is None:
        raise RewriteError("query does not have the correlated-scalar shape")
    outer, inner, agg_predicate = match
    correlation = _correlation_predicate(outer, inner)
    inner_var = inner.bindings[0].var
    corr_attr = _attr_of_var(correlation, inner_var)
    outer_attr = _attr_of_var(correlation, None, exclude=inner_var)

    outer_binding = next(
        b for b in outer.bindings if b.var == outer_attr.var
    )
    fresh_outer = f"{outer_binding.var}2"
    derived_name = "X"
    agg_expr, outer_side, op = _split_aggregate_predicate(agg_predicate)
    rekeyed_corr = n.Comparison(
        n.Attr(fresh_outer, outer_attr.attr), "=", n.clone(corr_attr)
    )
    derived = n.Collection(
        n.Head(derived_name, ("key", "ct")),
        n.Quantifier(
            [n.clone(b) for b in inner.bindings]
            + [n.Binding(fresh_outer, n.clone(outer_binding.source))],
            n.make_and(
                [
                    n.Comparison(
                        n.Attr(derived_name, "key"),
                        "=",
                        n.Attr(fresh_outer, outer_attr.attr),
                    ),
                    n.Comparison(n.Attr(derived_name, "ct"), "=", n.clone(agg_expr)),
                    rekeyed_corr,
                ]
                + [
                    n.clone(c)
                    for c in n.conjuncts(inner.body)
                    if c is not correlation
                    and not (isinstance(c, n.Comparison) and c.has_aggregate())
                ]
            ),
            n.Grouping((n.Attr(fresh_outer, outer_attr.attr),)),
            n.Join(
                "left",
                [n.JoinVar(fresh_outer), n.JoinVar(inner_var)],
            ),
        ),
    )
    new_var = "x_"
    rest = [n.clone(c) for c in n.conjuncts(outer.body) if c is not inner]
    new_body = n.Quantifier(
        [n.clone(b) for b in outer.bindings] + [n.Binding(new_var, derived)],
        n.make_and(
            rest
            + [
                n.Comparison(n.clone(outer_attr), "=", n.Attr(new_var, "key")),
                n.Comparison(n.clone(outer_side), op, n.Attr(new_var, "ct")),
            ]
        ),
    )
    return n.Collection(n.Head(collection.head.name, collection.head.attrs), new_body)


def _correlation_predicate(outer, inner):
    outer_vars = {b.var for b in outer.bindings}
    inner_vars = {b.var for b in inner.bindings}
    for conjunct in n.conjuncts(inner.body):
        if isinstance(conjunct, n.Comparison) and not conjunct.has_aggregate():
            used = n.vars_used(conjunct)
            if used & outer_vars and used & inner_vars and conjunct.op == "=":
                return conjunct
    raise RewriteError("no equality correlation predicate found")


def _attr_of_var(predicate, var, exclude=None):
    for side in (predicate.left, predicate.right):
        if isinstance(side, n.Attr):
            if var is not None and side.var == var:
                return side
            if var is None and side.var != exclude:
                return side
    raise RewriteError("correlation predicate is not attribute-to-attribute")


def _split_aggregate_predicate(predicate):
    """Return (aggregate side, outer side, op oriented as outer-op-agg)."""
    flip = {"=": "=", "<>": "<>", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
    left_has = any(isinstance(x, n.AggCall) for x in predicate.left.walk())
    if left_has:
        return predicate.left, predicate.right, predicate.op
    return predicate.right, predicate.left, flip[predicate.op]


# ---------------------------------------------------------------------------
# Abstract-relation inlining (Section 2.13.2)
# ---------------------------------------------------------------------------


def inline_abstract(program):
    """Inline every abstract definition into its usage sites.

    For each binding ``v ∈ Abstract`` together with the equality conjuncts
    ``v.attr = expr`` of the same scope, the binding is removed and the
    definition body is substituted with head-attribute references replaced
    by the equated expressions (range variables freshened).  The result is a
    program without abstract definitions — e.g. inlining ``Subset`` in
    query (24) reproduces the monolithic unique-set query (22).
    """
    from .validator import validate

    abstract = {}
    concrete = {}
    for name, definition in program.definitions.items():
        if validate(definition, allow_abstract=True).is_abstract:
            abstract[name] = definition
        else:
            concrete[name] = definition
    if not abstract:
        return program
    counter = _counter(1)

    def inline_in(node):
        if not isinstance(node, n.Quantifier):
            return node
        remaining_bindings = []
        extra = []
        conjuncts = n.conjuncts(node.body)
        removed = []
        for binding in node.bindings:
            if (
                isinstance(binding.source, n.RelationRef)
                and binding.source.name in abstract
            ):
                definition = abstract[binding.source.name]
                substitution = {}
                for conjunct in conjuncts:
                    if not isinstance(conjunct, n.Comparison) or conjunct.op != "=":
                        continue
                    for side, other in (
                        (conjunct.left, conjunct.right),
                        (conjunct.right, conjunct.left),
                    ):
                        if isinstance(side, n.Attr) and side.var == binding.var:
                            substitution[side.attr] = other
                            removed.append(conjunct)
                missing = set(definition.head.attrs) - set(substitution)
                if missing:
                    raise RewriteError(
                        f"cannot inline {binding.source.name!r}: attributes "
                        f"{sorted(missing)} are not determined by equality "
                        "predicates"
                    )
                extra.append(
                    _substitute_definition(definition, substitution, counter)
                )
            else:
                remaining_bindings.append(binding)
        if not extra:
            return node
        kept = [c for c in conjuncts if c not in removed]
        if not remaining_bindings:
            raise RewriteError(
                "inlining would leave a quantifier with no bindings"
            )
        return n.Quantifier(
            remaining_bindings,
            n.make_and(kept + extra),
            node.grouping,
            node.join,
        )

    new_definitions = {
        name: n.transform(definition, inline_in)
        for name, definition in concrete.items()
    }
    main = program.main
    if isinstance(main, n.Node):
        main = n.transform(main, inline_in)
    return n.Program(new_definitions, main)


def _substitute_definition(definition, substitution, counter):
    """Instantiate an abstract definition body: head attrs replaced by the
    equated expressions, range variables freshened."""
    body = n.clone(definition.body)
    suffix = f"_i{next(counter)}"
    bound = [
        node.var for node in body.walk() if isinstance(node, n.Binding)
    ]
    renaming = {var: f"{var}{suffix}" for var in bound}

    def rename(node):
        if isinstance(node, n.Binding):
            return n.Binding(renaming[node.var], node.source)
        if isinstance(node, n.Attr):
            if node.var == definition.head.name:
                replacement = substitution.get(node.attr)
                if replacement is None:
                    raise RewriteError(
                        f"no substitution for {node.var}.{node.attr}"
                    )
                return n.clone(replacement)
            if node.var in renaming:
                return n.Attr(renaming[node.var], node.attr)
        return node

    return n.transform(body, rename)
