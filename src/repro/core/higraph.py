"""The diagrammatic higraph modality: Relational Diagrams for humans.

Harel higraphs combine *nesting* (scopes become regions) with *linking*
(predicates become edges).  The paper (Section 2.2, Figs. 2b, 4b, 5c, 12b,
20, 21d-f) renders ARC queries as Relational Diagrams:

* each collection and each quantifier scope is a **region**; negation draws
  a (negated) region; a grouping scope has a **double-lined boundary**;
* relations appear as **table nodes** listing their attributes; grouped
  attributes are highlighted;
* join/selection predicates are **edges** between attribute ports (or a
  port and a literal); assignment predicates are **decorated arrows** into
  head attributes; aggregation edges are labelled with the aggregate;
* the optional side of an outer join carries an **empty-circle marker**.

Two renderers are provided: a deterministic ASCII outline (used by tests
and terminals) and an SVG renderer (nested rectangles) for documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from ..errors import ArcError
from . import nodes as n
from .linker import link


@dataclass
class TableNode:
    """A relation occurrence: range variable over a (possibly nested) source."""

    id: str
    var: str
    relation: str  # relation name, or "" for an anonymous nested collection
    attrs: tuple = ()
    grouped_attrs: tuple = ()  # subset of attrs used as grouping keys
    optional: bool = False  # on the optional side of an outer join


@dataclass
class HeadNode:
    """The output table of a collection region."""

    id: str
    name: str
    attrs: tuple = ()


@dataclass
class LiteralNode:
    """A selection constant (e.g. ``= 0``) attached near a table."""

    id: str
    text: str


@dataclass
class Edge:
    """A reference edge between ports: (node id, attr-or-None) pairs."""

    source: tuple
    target: tuple
    kind: str  # "join" | "selection" | "assignment" | "aggregation"
    label: str = ""  # comparison operator or aggregate name


@dataclass
class Region:
    """A nested scope region."""

    id: str
    kind: str  # "canvas" | "collection" | "quantifier" | "negation"
    double_border: bool = False  # grouping scope
    head: HeadNode | None = None
    tables: list = field(default_factory=list)
    literals: list = field(default_factory=list)
    children: list = field(default_factory=list)


@dataclass
class Higraph:
    """A complete diagram: the region tree plus the edge set."""

    root: Region
    edges: list = field(default_factory=list)

    def all_regions(self):
        stack = [self.root]
        while stack:
            region = stack.pop()
            yield region
            stack.extend(region.children)

    def all_tables(self):
        for region in self.all_regions():
            yield from region.tables


def build_higraph(root, *, database=None):
    """Build the higraph for an ARC Collection or Sentence.

    ``database`` (optional) supplies schemas so table nodes can list all
    attributes; without it, tables list only the attributes the query uses.
    """
    builder = _Builder(database)
    return builder.build(root)


class _Builder:
    def __init__(self, database):
        self._database = database
        self._ids = count(1)
        self._node_of_var = {}  # var -> TableNode or HeadNode id
        self._edges = []

    def _next_id(self, prefix):
        return f"{prefix}{next(self._ids)}"

    def build(self, root):
        if isinstance(root, n.Program):
            # Diagram every definition plus the main query side by side
            # (abstract relations appear as their own collapsed modules,
            # Section 2.13.2).
            canvas = Region(self._next_id("region"), "canvas")
            for definition in root.definitions.values():
                self._collection_region(definition, canvas, link(definition))
            main = root.resolve_main()
            if isinstance(main, n.Collection) and main not in set(
                root.definitions.values()
            ):
                self._collection_region(main, canvas, link(main))
            elif isinstance(main, n.Sentence):
                self._formula_region(main.body, canvas, link(main))
            return Higraph(canvas, self._edges)
        linked = link(root)
        canvas = Region(self._next_id("region"), "canvas")
        if isinstance(root, n.Collection):
            self._collection_region(root, canvas, linked)
        elif isinstance(root, n.Sentence):
            self._formula_region(root.body, canvas, linked)
        else:
            raise ArcError(f"cannot diagram a {type(root).__name__}")
        return Higraph(canvas, self._edges)

    # -- regions ---------------------------------------------------------------

    def _collection_region(self, coll, parent, linked):
        region = Region(self._next_id("region"), "collection")
        region.head = HeadNode(
            self._next_id("head"), coll.head.name, tuple(coll.head.attrs)
        )
        self._node_of_var[coll.head.name] = region.head.id
        parent.children.append(region)
        self._formula_region(coll.body, region, linked)
        return region

    def _formula_region(self, formula, region, linked):
        if formula is None:
            return
        if isinstance(formula, n.Quantifier):
            self._quantifier_region(formula, region, linked)
            return
        if isinstance(formula, n.And):
            for child in formula.children_list:
                self._formula_region(child, region, linked)
            return
        if isinstance(formula, n.Or):
            for child in formula.children_list:
                branch = Region(self._next_id("region"), "disjunct")
                region.children.append(branch)
                self._formula_region(child, branch, linked)
            return
        if isinstance(formula, n.Not):
            negation = Region(self._next_id("region"), "negation")
            region.children.append(negation)
            self._formula_region(formula.child, negation, linked)
            return
        if isinstance(formula, n.Comparison):
            self._predicate_edge(formula, region, linked)
            return
        if isinstance(formula, n.IsNull):
            port = self._port(formula.expr, region)
            literal = LiteralNode(
                self._next_id("lit"),
                "is not null" if formula.negated else "is null",
            )
            region.literals.append(literal)
            if port is not None:
                self._edges.append(Edge(port, (literal.id, None), "selection"))
            return
        if isinstance(formula, n.BoolConst):
            return
        if isinstance(formula, n.Collection):
            self._collection_region(formula, region, linked)
            return
        raise ArcError(f"cannot diagram formula {type(formula).__name__}")

    def _quantifier_region(self, quant, parent, linked):
        region = Region(self._next_id("region"), "quantifier")
        grouping_attrs = {}
        if quant.grouping is not None:
            region.double_border = True
            for key in quant.grouping.keys:
                if isinstance(key, n.Attr):
                    grouping_attrs.setdefault(key.var, set()).add(key.attr)
        parent.children.append(region)
        optional_vars = self._optional_vars(quant.join)
        for binding in quant.bindings:
            if isinstance(binding.source, n.Collection):
                nested = self._collection_region(binding.source, region, linked)
                self._node_of_var[binding.var] = nested.head.id
                continue
            attrs = self._schema_attrs(binding, quant)
            table = TableNode(
                self._next_id("table"),
                binding.var,
                binding.source.name,
                attrs=tuple(attrs),
                grouped_attrs=tuple(sorted(grouping_attrs.get(binding.var, ()))),
                optional=binding.var in optional_vars,
            )
            region.tables.append(table)
            self._node_of_var[binding.var] = table.id
        self._formula_region(quant.body, region, linked)

    def _optional_vars(self, join):
        """Variables on the optional (null-padded) side of an outer join."""
        optional = set()

        def walk(node, is_optional):
            if isinstance(node, n.JoinVar):
                if is_optional:
                    optional.add(node.var)
                return
            if isinstance(node, n.JoinConst):
                return
            if node.kind == "left":
                walk(node.children_list[0], is_optional)
                walk(node.children_list[1], True)
            elif node.kind == "full":
                walk(node.children_list[0], True)
                walk(node.children_list[1], True)
            else:
                for child in node.children_list:
                    walk(child, is_optional)

        if join is not None:
            walk(join, False)
        return optional

    def _schema_attrs(self, binding, quant):
        name = binding.source.name
        if self._database is not None and name in self._database:
            return self._database[name].schema
        # Fall back to the attributes the scope actually references.
        used = sorted(
            {
                node.attr
                for node in quant.walk()
                if isinstance(node, n.Attr) and node.var == binding.var
            }
        )
        return used

    # -- edges ----------------------------------------------------------------------

    def _predicate_edge(self, predicate, region, linked):
        kind = "join"
        label = predicate.op
        if linked.is_assignment(predicate):
            kind = "aggregation" if predicate.has_aggregate() else "assignment"
        elif predicate.has_aggregate():
            kind = "aggregation"
        source = self._port(predicate.left, region)
        target = self._port(predicate.right, region)
        if predicate.has_aggregate():
            agg = next(
                node for node in predicate.walk() if isinstance(node, n.AggCall)
            )
            label = f"{agg.func} {predicate.op}" if kind != "assignment" else agg.func
        if source is None and target is None:
            return
        if source is None or target is None:
            port = source if source is not None else target
            constant = predicate.right if source is not None else predicate.left
            literal = LiteralNode(
                self._next_id("lit"), f"{predicate.op} {_const_text(constant)}"
            )
            region.literals.append(literal)
            self._edges.append(Edge(port, (literal.id, None), "selection", predicate.op))
            return
        self._edges.append(Edge(source, target, kind, label))

    def _port(self, expr, region):
        """The (node id, attr) port for an expression side, or None for
        constants / computed expressions (which become literal boxes)."""
        if isinstance(expr, n.Attr):
            node_id = self._node_of_var.get(expr.var)
            if node_id is None:
                return None
            return (node_id, expr.attr)
        if isinstance(expr, n.AggCall) and isinstance(expr.arg, n.Attr):
            return self._port(expr.arg, region)
        for node in expr.walk() if isinstance(expr, n.Node) else ():
            if isinstance(node, n.Attr):
                return self._port(node, region)
        return None


def _const_text(expr):
    if isinstance(expr, n.Const):
        if isinstance(expr.value, str):
            return f"'{expr.value}'"
        return repr(expr.value)
    from .alt import _expr_text

    return _expr_text(expr)


# ---------------------------------------------------------------------------
# ASCII renderer
# ---------------------------------------------------------------------------


def render_ascii(higraph):
    """Deterministic indented outline of the diagram (regions, tables, edges)."""
    lines = []
    node_names = {}
    for region in higraph.all_regions():
        for table in region.tables:
            node_names[table.id] = table.var
        if region.head is not None:
            node_names[region.head.id] = region.head.name
        for literal in region.literals:
            node_names[literal.id] = literal.text

    def describe(region, indent):
        pad = "  " * indent
        border = "══" if region.double_border else "──"
        lines.append(f"{pad}[{region.kind} {border}]")
        if region.head is not None:
            lines.append(f"{pad}  {region.head.name}({', '.join(region.head.attrs)}) <head>")
        for table in region.tables:
            attrs = []
            for attr in table.attrs:
                attrs.append(f"{attr}*" if attr in table.grouped_attrs else attr)
            marker = " ○" if table.optional else ""
            lines.append(
                f"{pad}  {table.var}: {table.relation}({', '.join(attrs)}){marker}"
            )
        for literal in region.literals:
            lines.append(f"{pad}  «{literal.text}»")
        for child in region.children:
            describe(child, indent + 1)

    describe(higraph.root, 0)
    if higraph.edges:
        lines.append("edges:")
        for edge in higraph.edges:
            source = _port_text(edge.source, node_names)
            target = _port_text(edge.target, node_names)
            arrow = {
                "assignment": "◄──",
                "aggregation": "◄══",
                "join": "───",
                "selection": "···",
            }[edge.kind]
            label = f" [{edge.label}]" if edge.label else ""
            lines.append(f"  {source} {arrow} {target}{label}")
    return "\n".join(lines)


def _port_text(port, names):
    node_id, attr = port
    name = names.get(node_id, node_id)
    return f"{name}.{attr}" if attr else name


# ---------------------------------------------------------------------------
# SVG renderer
# ---------------------------------------------------------------------------

_ROW_HEIGHT = 18
_PAD = 10


def render_svg(higraph):
    """Render the diagram as a standalone SVG document (nested rectangles)."""
    body = []
    positions = {}

    def layout(region, x, y):
        """Place a region; returns (width, height)."""
        cursor_y = y + _PAD + _ROW_HEIGHT
        inner_width = 160
        if region.head is not None:
            positions[region.head.id] = (x + _PAD, cursor_y)
            cursor_y += _ROW_HEIGHT * (1 + len(region.head.attrs))
        for table in region.tables:
            positions[table.id] = (x + _PAD, cursor_y)
            cursor_y += _ROW_HEIGHT * (1 + len(table.attrs)) + _PAD
        for literal in region.literals:
            positions[literal.id] = (x + _PAD, cursor_y)
            cursor_y += _ROW_HEIGHT
        for child in region.children:
            width, height = layout(child, x + _PAD, cursor_y)
            inner_width = max(inner_width, width + 2 * _PAD)
            cursor_y += height + _PAD
        return inner_width + 2 * _PAD, cursor_y - y + _PAD

    width, height = layout(higraph.root, 0, 0)

    def draw(region, x, y):
        nonlocal body
        w, h = layout_cache[region.id]
        style = "fill:none;stroke:#333"
        body.append(f'<rect x="{x}" y="{y}" width="{w}" height="{h}" rx="6" style="{style}"/>')
        if region.double_border:
            body.append(
                f'<rect x="{x+3}" y="{y+3}" width="{w-6}" height="{h-6}" rx="5" style="{style}"/>'
            )
        if region.kind == "negation":
            body.append(
                f'<text x="{x+4}" y="{y+14}" font-size="12" fill="#a00">¬</text>'
            )

    # A second pass computes per-region sizes for drawing.
    layout_cache = {}

    def cache_layout(region, x, y):
        start_y = y
        cursor_y = y + _PAD + _ROW_HEIGHT
        inner_width = 160
        if region.head is not None:
            cursor_y += _ROW_HEIGHT * (1 + len(region.head.attrs))
        for table in region.tables:
            cursor_y += _ROW_HEIGHT * (1 + len(table.attrs)) + _PAD
        for literal in region.literals:
            cursor_y += _ROW_HEIGHT
        for child in region.children:
            w, h = cache_layout(child, x + _PAD, cursor_y)
            inner_width = max(inner_width, w + 2 * _PAD)
            cursor_y += h + _PAD
        size = (inner_width + 2 * _PAD, cursor_y - start_y + _PAD)
        layout_cache[region.id] = size
        return size

    cache_layout(higraph.root, 0, 0)

    def draw_tree(region, x, y):
        draw(region, x, y)
        cursor_y = y + _PAD + _ROW_HEIGHT
        if region.head is not None:
            cursor_y = _draw_table(
                body, x + _PAD, cursor_y, region.head.name, region.head.attrs, (), False, head=True
            )
        for table in region.tables:
            label = f"{table.relation} {table.var}" if table.var != table.relation else table.relation
            cursor_y = _draw_table(
                body, x + _PAD, cursor_y, label, table.attrs, table.grouped_attrs, table.optional
            )
            cursor_y += _PAD
        for literal in region.literals:
            body.append(
                f'<text x="{x+_PAD}" y="{cursor_y+12}" font-size="12">{_escape(literal.text)}</text>'
            )
            cursor_y += _ROW_HEIGHT
        for child in region.children:
            w, h = layout_cache[child.id]
            draw_tree(child, x + _PAD, cursor_y)
            cursor_y += h + _PAD

    draw_tree(higraph.root, 0, 0)
    svg = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width+20}" '
        f'height="{height+20}" font-family="sans-serif">'
        + "".join(body)
        + "</svg>"
    )
    return svg


def _draw_table(body, x, y, label, attrs, grouped, optional, *, head=False):
    width = 110
    height = _ROW_HEIGHT * (1 + len(attrs))
    style = "fill:#fff;stroke:#000" if not head else "fill:#eef;stroke:#000"
    body.append(f'<rect x="{x}" y="{y}" width="{width}" height="{height}" style="{style}"/>')
    body.append(
        f'<text x="{x+4}" y="{y+13}" font-size="12" font-weight="bold">{_escape(label)}</text>'
    )
    row_y = y + _ROW_HEIGHT
    for attr in attrs:
        fill = "#ddd" if attr in grouped else "none"
        body.append(
            f'<rect x="{x}" y="{row_y}" width="{width}" height="{_ROW_HEIGHT}" '
            f'style="fill:{fill};stroke:#888"/>'
        )
        body.append(f'<text x="{x+4}" y="{row_y+13}" font-size="11">{_escape(attr)}</text>')
        row_y += _ROW_HEIGHT
    if optional:
        body.append(
            f'<circle cx="{x+width}" cy="{y}" r="5" style="fill:#fff;stroke:#000"/>'
        )
    return row_y


def _escape(text):
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )
