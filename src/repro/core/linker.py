"""Name resolution: turning an ARC AST into a *linked* Abstract Language Tree.

The paper (Section 1, Fig. 2a) stresses that once identifier occurrences are
connected to their declarations, the structure is a hierarchical graph
(higraph) — a containment tree plus cross-reference edges.  This module
performs that linking step:

* builds the **scope tree** (collections and quantifiers introduce scopes);
* resolves every :class:`~repro.core.nodes.Attr` occurrence to the
  :class:`~repro.core.nodes.Binding` that declares its range variable, or to
  the :class:`~repro.core.nodes.Head` of an enclosing collection (the
  assignment targets of the paper's *clean heads*, or the head-parameter
  references of *abstract relations*, Section 2.13.2);
* classifies every :class:`~repro.core.nodes.Comparison` as an **assignment
  predicate**, a **comparison predicate**, and/or an **aggregation
  predicate** (Sections 2.1 and 2.5);
* records which relation names are referenced so the engine can resolve them
  against the catalog / program definitions / external registry.

The result, a :class:`LinkResult`, is a side table keyed by node identity
(nodes hash by identity precisely to allow this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import LinkError
from . import nodes as n

#: Predicate roles (a predicate can be both AGGREGATION and ASSIGNMENT).
ASSIGNMENT = "assignment"
COMPARISON = "comparison"


@dataclass
class Scope:
    """One lexical scope: a collection body or a quantifier's reach."""

    owner: n.Node  # Collection | Sentence | Quantifier
    parent: "Scope | None" = None
    bindings: dict = field(default_factory=dict)  # var name -> Binding
    head: n.Head | None = None  # set for Collection scopes
    children: list = field(default_factory=list)

    def lookup(self, var):
        """Resolve *var* innermost-out; returns a Binding or a Head or None."""
        scope = self
        while scope is not None:
            if var in scope.bindings:
                return scope.bindings[var]
            if scope.head is not None and scope.head.name == var:
                return scope.head
            scope = scope.parent
        return None

    def depth(self):
        depth = 0
        scope = self.parent
        while scope is not None:
            depth += 1
            scope = scope.parent
        return depth


@dataclass
class LinkResult:
    """All cross-reference information for one linked query.

    Attributes
    ----------
    root:
        The linked node (Collection, Sentence, or Program).
    resolutions:
        Attr node -> Binding or Head that declares it.
    scope_of:
        Node -> the Scope in which the node occurs.
    roles:
        Comparison node -> set of roles ({ASSIGNMENT} and/or {COMPARISON}).
    assign_targets:
        Comparison node -> (Head, attr name) for assignment predicates.
    head_params:
        Attr nodes that *read* a head attribute (abstract-relation
        parameters, e.g. ``S.left`` inside the Subset definition).
    relation_refs:
        All RelationRef nodes encountered.
    binding_scope:
        Binding node -> Scope that owns it (the quantifier's scope).
    """

    root: n.Node
    resolutions: dict = field(default_factory=dict)
    scope_of: dict = field(default_factory=dict)
    roles: dict = field(default_factory=dict)
    assign_targets: dict = field(default_factory=dict)
    head_params: list = field(default_factory=list)
    relation_refs: list = field(default_factory=list)
    binding_scope: dict = field(default_factory=dict)
    root_scope: Scope | None = None

    # -- convenience queries -------------------------------------------------

    def is_assignment(self, predicate):
        return ASSIGNMENT in self.roles.get(predicate, ())

    def is_aggregation(self, predicate):
        return isinstance(predicate, n.Comparison) and predicate.has_aggregate()

    def assignment_target(self, predicate):
        """Return (Head, attr) when *predicate* assigns a head attribute."""
        return self.assign_targets.get(predicate)

    def links(self):
        """Iterate (Attr, declaration) pairs — the higraph's reference edges."""
        return list(self.resolutions.items())

    def relation_names(self):
        return sorted({ref.name for ref in self.relation_refs})


def link(root, *, defined_names=()):
    """Link *root* (Collection | Sentence | Program) and return a LinkResult.

    ``defined_names`` supplies extra relation names that variables may range
    over (used when linking a single definition out of a larger program).

    Raises :class:`~repro.errors.LinkError` when an attribute references an
    unbound range variable.
    """
    linker = _Linker(defined_names=set(defined_names))
    result = LinkResult(root)
    if isinstance(root, n.Program):
        for name, definition in root.definitions.items():
            linker.link_collection(definition, None, result)
        main = root.resolve_main()
        if main is not None and not isinstance(main, str):
            if isinstance(main, n.Collection):
                if main not in set(root.definitions.values()):
                    linker.link_collection(main, None, result)
            else:
                linker.link_sentence(main, None, result)
    elif isinstance(root, n.Collection):
        result.root_scope = linker.link_collection(root, None, result)
    elif isinstance(root, n.Sentence):
        result.root_scope = linker.link_sentence(root, None, result)
    else:
        raise LinkError(f"cannot link a {type(root).__name__}")
    return result


class _Linker:
    def __init__(self, defined_names=()):
        self._defined_names = set(defined_names)

    # -- scope construction ------------------------------------------------

    def link_collection(self, coll, parent_scope, result):
        scope = Scope(owner=coll, parent=parent_scope, head=coll.head)
        if parent_scope is not None:
            parent_scope.children.append(scope)
        result.scope_of[coll] = scope
        self._link_formula(coll.body, scope, result)
        return scope

    def link_sentence(self, sentence, parent_scope, result):
        scope = Scope(owner=sentence, parent=parent_scope)
        result.scope_of[sentence] = scope
        self._link_formula(sentence.body, scope, result)
        return scope

    def _link_formula(self, formula, scope, result, negated=False):
        if formula is None:
            return
        if isinstance(formula, n.Quantifier):
            self._link_quantifier(formula, scope, result, negated)
            return
        if isinstance(formula, (n.And, n.Or)):
            for child in formula.children_list:
                self._link_formula(child, scope, result, negated)
            return
        if isinstance(formula, n.Not):
            # Sticky: anywhere under a negation is a non-emitting context, so
            # head-attribute equalities there are parameter constraints, not
            # assignments (even under double negation).
            self._link_formula(formula.child, scope, result, True)
            return
        if isinstance(formula, n.Comparison):
            self._link_predicate(formula, scope, result, negated)
            return
        if isinstance(formula, n.IsNull):
            result.scope_of[formula] = scope
            self._link_expr(formula.expr, scope, result)
            return
        if isinstance(formula, n.BoolConst):
            result.scope_of[formula] = scope
            return
        if isinstance(formula, n.Collection):
            self.link_collection(formula, scope, result)
            return
        raise LinkError(f"unexpected formula node {type(formula).__name__}")

    def _link_quantifier(self, quant, parent_scope, result, negated=False):
        scope = Scope(owner=quant, parent=parent_scope)
        parent_scope.children.append(scope)
        result.scope_of[quant] = scope
        for binding in quant.bindings:
            # A nested-collection source is linked in the scope as built *so
            # far*: it may reference earlier bindings of this scope and any
            # enclosing scope (lateral semantics, Section 2.4).
            if isinstance(binding.source, n.Collection):
                self.link_collection(binding.source, scope, result)
            else:
                result.relation_refs.append(binding.source)
                result.scope_of[binding.source] = scope
            if binding.var in scope.bindings:
                raise LinkError(
                    f"range variable {binding.var!r} bound twice in one scope"
                )
            shadowed = scope.lookup(binding.var)
            if shadowed is not None and isinstance(shadowed, n.Binding):
                raise LinkError(
                    f"range variable {binding.var!r} shadows an outer binding; "
                    "ARC requires distinct variable names across nested scopes"
                )
            scope.bindings[binding.var] = binding
            result.binding_scope[binding] = scope
            result.scope_of[binding] = scope
        if quant.grouping is not None:
            result.scope_of[quant.grouping] = scope
            for key in quant.grouping.keys:
                self._link_expr(key, scope, result)
        if quant.join is not None:
            self._link_join(quant.join, scope, result)
        self._link_formula(quant.body, scope, result, negated)

    def _link_join(self, join, scope, result):
        result.scope_of[join] = scope
        if isinstance(join, n.JoinVar):
            binding = scope.bindings.get(join.var)
            if binding is None:
                raise LinkError(
                    f"join annotation references {join.var!r}, which is not "
                    "bound in the same scope"
                )
            result.resolutions[join] = binding
            return
        if isinstance(join, n.JoinConst):
            return
        for child in join.children_list:
            self._link_join(child, scope, result)

    # -- predicates -----------------------------------------------------------

    def _link_predicate(self, predicate, scope, result, negated=False):
        result.scope_of[predicate] = scope
        roles = set()
        sides = () if negated else (
            (predicate.left, predicate.right),
            (predicate.right, predicate.left),
        )
        for side, other in sides:
            target = self._head_target(side, scope)
            if target is not None and predicate.op == "=":
                # `Head.attr = expr`: an assignment predicate — unless the
                # expression side *also* resolves to the same head (a pure
                # head-parameter constraint, kept as comparison).
                roles.add(ASSIGNMENT)
                result.assign_targets[predicate] = (target, side.attr)
                result.resolutions[side] = target
                self._link_expr(other, scope, result)
                break
        else:
            roles.add(COMPARISON)
            self._link_expr(predicate.left, scope, result)
            self._link_expr(predicate.right, scope, result)
        result.roles[predicate] = roles

    def _head_target(self, expr, scope):
        """Return the Head when *expr* is ``H.attr`` for an enclosing head
        that declares ``attr`` — the head of the innermost enclosing
        collection wins (nested heads shadow outer ones)."""
        if not isinstance(expr, n.Attr):
            return None
        declaration = scope.lookup(expr.var)
        if isinstance(declaration, n.Head) and expr.attr in declaration.attrs:
            return declaration
        return None

    def _link_expr(self, expr, scope, result):
        for node in expr.walk():
            if isinstance(node, n.Attr):
                declaration = scope.lookup(node.var)
                if declaration is None:
                    raise LinkError(
                        f"unbound range variable {node.var!r} in {node.var}.{node.attr}"
                    )
                result.resolutions[node] = declaration
                if isinstance(declaration, n.Head):
                    if node.attr not in declaration.attrs:
                        raise LinkError(
                            f"head {declaration.name!r} has no attribute {node.attr!r}"
                        )
                    result.head_params.append(node)
