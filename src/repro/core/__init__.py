"""ARC core: abstract syntax, parsing, linking, validation, modalities."""

from . import nodes, builder
from .conventions import (
    Conventions,
    EmptyAggregate,
    NullComparison,
    Semantics,
    SET_CONVENTIONS,
    SOUFFLE_CONVENTIONS,
    SQL_CONVENTIONS,
)
from .parser import parse, parse_collection, parse_program, parse_sentence
from .linker import link, LinkResult
from .validator import validate, Report
from .alt import render_alt
from .alt_parser import parse_alt
from .higraph import build_higraph, render_ascii as render_higraph_ascii, render_svg

__all__ = [
    "nodes",
    "builder",
    "Conventions",
    "EmptyAggregate",
    "NullComparison",
    "Semantics",
    "SET_CONVENTIONS",
    "SOUFFLE_CONVENTIONS",
    "SQL_CONVENTIONS",
    "parse",
    "parse_collection",
    "parse_program",
    "parse_sentence",
    "link",
    "LinkResult",
    "validate",
    "Report",
    "render_alt",
    "parse_alt",
    "build_higraph",
    "render_higraph_ascii",
    "render_svg",
]
