"""Semantic validation of ARC queries.

ARC is stricter than textbook TRC (Section 2.1 of the paper): heads are
*clean* (body variables never appear in the head; output attributes receive
values only through assignment predicates), every range variable is
introduced by an explicit quantifier binding, and the appearance of any
aggregation predicate turns a scope into a grouping scope that **requires**
a grouping operator.

This module enforces those rules, performs a safety (range-restriction)
analysis that distinguishes ordinary *intensional* definitions from
*abstract relations* (Section 2.13.2 — definitions that are only meaningful
inside a surrounding safe query), and checks that recursive programs are
stratified (no recursion through negation or aggregation, Section 2.9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ValidationError
from . import nodes as n
from .linker import link

ERROR = "error"
WARNING = "warning"


@dataclass
class Issue:
    """One validation finding."""

    severity: str
    code: str
    message: str

    def __str__(self):
        return f"[{self.severity}:{self.code}] {self.message}"


@dataclass
class Report:
    """Validation outcome: issues plus derived facts about the query."""

    issues: list = field(default_factory=list)
    #: True when the query references head attributes as inputs (an abstract
    #: relation) or leaves head attributes unassigned — i.e. it has no
    #: standalone well-defined extension.
    is_abstract: bool = False
    #: name -> kind for every relation reference ("base", "defined",
    #: "external", "self", "unknown").
    relation_kinds: dict = field(default_factory=dict)

    def errors(self):
        return [i for i in self.issues if i.severity == ERROR]

    def warnings(self):
        return [i for i in self.issues if i.severity == WARNING]

    @property
    def ok(self):
        return not self.errors()

    def raise_if_errors(self):
        if not self.ok:
            details = "; ".join(str(issue) for issue in self.errors())
            raise ValidationError(details)
        return self

    def add(self, severity, code, message):
        self.issues.append(Issue(severity, code, message))


def validate(root, *, database=None, externals=None, allow_abstract=False):
    """Validate *root* (Collection | Sentence | Program); return a Report.

    ``database`` and ``externals`` (an
    :class:`~repro.engine.externals.ExternalRegistry` or any object with a
    ``__contains__`` of names) let the validator classify relation
    references; unknown references are errors when a database is supplied.
    ``allow_abstract`` suppresses the error for definitions that are only
    meaningful as modules inside a larger query (Section 2.13.2).
    """
    report = Report()
    try:
        linked = link(root)
    except Exception as exc:  # LinkError and friends become issues
        report.add(ERROR, "link", str(exc))
        return report

    if isinstance(root, n.Program):
        for name, definition in root.definitions.items():
            _validate_collection(
                definition, linked, report, allow_abstract=True, context=name
            )
        main = root.resolve_main()
        if isinstance(main, n.Collection) and main not in set(root.definitions.values()):
            _validate_collection(main, linked, report, allow_abstract=allow_abstract)
        elif isinstance(main, n.Sentence):
            _validate_body(main.body, linked, report, context="sentence")
        _check_stratification(root, report)
    elif isinstance(root, n.Collection):
        _validate_collection(root, linked, report, allow_abstract=allow_abstract)
    elif isinstance(root, n.Sentence):
        _validate_body(root.body, linked, report, context="sentence")
    else:
        report.add(ERROR, "root", f"cannot validate a {type(root).__name__}")
        return report

    _classify_relations(root, database, externals, report)
    return report


# ---------------------------------------------------------------------------
# Collection-level rules
# ---------------------------------------------------------------------------


def _validate_collection(coll, linked, report, *, allow_abstract, context=None):
    label = context or coll.head.name

    # Rule: every head attribute must be assigned in every emitting branch.
    unassigned = _unassigned_attrs(coll, linked)
    params = [
        attr
        for attr in linked.head_params
        if linked.resolutions.get(attr) is coll.head
    ]
    if unassigned or params:
        report.is_abstract = True
        if not allow_abstract:
            if params:
                names = sorted({f"{a.var}.{a.attr}" for a in params})
                report.add(
                    ERROR,
                    "abstract",
                    f"{label}: head attributes used as inputs ({', '.join(names)}); "
                    "this is an abstract relation and has no standalone extension",
                )
            for attr in sorted(unassigned):
                report.add(
                    ERROR,
                    "head-unassigned",
                    f"{label}: head attribute {attr!r} is never assigned",
                )
        else:
            report.add(
                WARNING,
                "abstract",
                f"{label}: abstract relation (head attributes "
                f"{sorted(unassigned) or [f'{a.var}.{a.attr}' for a in params]} "
                "are inputs/unassigned)",
            )
    _validate_body(coll.body, linked, report, context=label)
    # Nested collections bound inside the body are validated recursively.
    for node in coll.body.walk() if coll.body is not None else ():
        if isinstance(node, n.Binding) and isinstance(node.source, n.Collection):
            _validate_collection(
                node.source, linked, report, allow_abstract=allow_abstract
            )


def _unassigned_attrs(coll, linked):
    """Head attributes not assigned in some emitting branch of the body."""

    def assigned_in(formula):
        """Set of head attrs assigned (positively) within *formula*."""
        if isinstance(formula, n.Comparison):
            target = linked.assignment_target(formula)
            if target and target[0] is coll.head:
                return {target[1]}
            return set()
        if isinstance(formula, n.And):
            result = set()
            for child in formula.children_list:
                result |= assigned_in(child)
            return result
        if isinstance(formula, n.Or):
            # An attribute is reliably assigned only if every branch does so.
            branch_sets = [assigned_in(c) for c in formula.children_list]
            if not branch_sets:
                return set()
            result = branch_sets[0]
            for branch in branch_sets[1:]:
                result &= branch
            return result
        if isinstance(formula, n.Quantifier):
            return assigned_in(formula.body)
        # Not / IsNull / BoolConst / nested Collection assign nothing here.
        return set()

    if coll.body is None:
        return set(coll.head.attrs)
    return set(coll.head.attrs) - assigned_in(coll.body)


# ---------------------------------------------------------------------------
# Body rules (grouping legality, aggregate placement, join annotations)
# ---------------------------------------------------------------------------


def _validate_body(formula, linked, report, *, context, in_grouping_scope=False):
    if formula is None:
        report.add(ERROR, "empty-body", f"{context}: missing body")
        return
    if isinstance(formula, n.Quantifier):
        _validate_quantifier(formula, linked, report, context=context)
        return
    if isinstance(formula, (n.And, n.Or)):
        for child in formula.children_list:
            _validate_body(
                child, linked, report, context=context, in_grouping_scope=in_grouping_scope
            )
        return
    if isinstance(formula, n.Not):
        _validate_body(
            formula.child, linked, report, context=context, in_grouping_scope=in_grouping_scope
        )
        return
    if isinstance(formula, n.Comparison):
        if formula.has_aggregate() and not in_grouping_scope:
            report.add(
                ERROR,
                "aggregate-scope",
                f"{context}: aggregation predicate "
                f"'{_pred_text(formula)}' occurs outside any grouping scope "
                "(an aggregation predicate requires a grouping operator γ)",
            )
        for node in formula.walk():
            if isinstance(node, n.AggCall) and node.arg is not None:
                if any(isinstance(inner, n.AggCall) for inner in node.arg.walk()):
                    report.add(
                        ERROR,
                        "nested-aggregate",
                        f"{context}: nested aggregate in '{_pred_text(formula)}'",
                    )
        return
    if isinstance(formula, (n.IsNull, n.BoolConst)):
        return
    if isinstance(formula, n.Collection):
        return  # validated by the collection pass
    report.add(ERROR, "body-node", f"{context}: unexpected {type(formula).__name__}")


def _validate_quantifier(quant, linked, report, *, context):
    scope = linked.scope_of.get(quant)
    has_aggregate = _scope_has_aggregate(quant)
    if has_aggregate and quant.grouping is None:
        report.add(
            ERROR,
            "grouping-required",
            f"{context}: scope contains an aggregation predicate but no "
            "grouping operator (the paper's rule: any aggregation predicate "
            "turns an existential scope into a grouping scope)",
        )
    if quant.grouping is not None:
        for key in quant.grouping.keys:
            if isinstance(key, n.Attr):
                declaration = scope.lookup(key.var) if scope else None
                if not isinstance(declaration, n.Binding):
                    report.add(
                        ERROR,
                        "grouping-key",
                        f"{context}: grouping key {key.var}.{key.attr} does not "
                        "reference a range variable",
                    )
    if quant.join is not None:
        _validate_join(quant, linked, report, context=context)
    if not quant.bindings:
        report.add(ERROR, "no-bindings", f"{context}: quantifier with no bindings")
    _validate_body(
        quant.body,
        linked,
        report,
        context=context,
        in_grouping_scope=quant.grouping is not None,
    )


def _scope_has_aggregate(quant):
    """True when a predicate *directly owned* by this scope has an AggCall.

    Predicates inside nested quantifiers or nested collections belong to
    those scopes, not this one.
    """

    def walk_own(formula):
        if isinstance(formula, (n.Quantifier, n.Collection)):
            return False
        if isinstance(formula, n.Comparison):
            return formula.has_aggregate()
        if isinstance(formula, (n.And, n.Or)):
            return any(walk_own(c) for c in formula.children_list)
        if isinstance(formula, n.Not):
            return walk_own(formula.child)
        return False

    return walk_own(quant.body)


def _validate_join(quant, linked, report, *, context):
    join = quant.join
    seen = set()
    bound = {binding.var for binding in quant.bindings}
    for node in join.walk():
        if isinstance(node, n.JoinVar):
            if node.var in seen:
                report.add(
                    ERROR,
                    "join-duplicate",
                    f"{context}: variable {node.var!r} appears twice in the "
                    "join annotation",
                )
            seen.add(node.var)
            if node.var not in bound:
                report.add(
                    ERROR,
                    "join-unbound",
                    f"{context}: join annotation references {node.var!r} "
                    "which is not bound in this scope",
                )
    missing = bound - seen
    if seen and missing:
        report.add(
            WARNING,
            "join-partial",
            f"{context}: bindings {sorted(missing)} not covered by the join "
            "annotation (treated as inner-joined)",
        )


def _pred_text(predicate):
    from .alt import _expr_text

    return f"{_expr_text(predicate.left)} {predicate.op} {_expr_text(predicate.right)}"


# ---------------------------------------------------------------------------
# Program rules (stratification) and relation classification
# ---------------------------------------------------------------------------


def dependency_graph(program):
    """Edges def-name -> (referenced-name, is_monotone) for a Program."""
    edges = {}
    for name, definition in program.definitions.items():
        edges[name] = []
        _collect_deps(definition.body, edges[name], negated=False, grouped=False)
    return edges


def _collect_deps(formula, out, *, negated, grouped):
    if formula is None:
        return
    if isinstance(formula, n.Quantifier):
        scope_grouped = grouped or formula.grouping is not None and _scope_has_aggregate(formula)
        for binding in formula.bindings:
            if isinstance(binding.source, n.RelationRef):
                out.append((binding.source.name, not (negated or scope_grouped)))
            else:
                _collect_deps(binding.source.body, out, negated=negated, grouped=scope_grouped)
        _collect_deps(formula.body, out, negated=negated, grouped=scope_grouped)
        return
    if isinstance(formula, (n.And, n.Or)):
        for child in formula.children_list:
            _collect_deps(child, out, negated=negated, grouped=grouped)
        return
    if isinstance(formula, n.Not):
        _collect_deps(formula.child, out, negated=True, grouped=grouped)
        return
    if isinstance(formula, n.Collection):
        _collect_deps(formula.body, out, negated=negated, grouped=grouped)


def _check_stratification(program, report):
    edges = dependency_graph(program)
    defined = set(program.definitions)
    # Find strongly connected components (iterative Tarjan).
    sccs = _tarjan({name: [t for t, _ in edges[name] if t in defined] for name in defined})
    component_of = {}
    for index, component in enumerate(sccs):
        for name in component:
            component_of[name] = index
    for name in defined:
        for target, monotone in edges[name]:
            if target in defined and component_of[target] == component_of[name]:
                recursive = len(sccs[component_of[name]]) > 1 or target == name or _self_loop(edges, name)
                if recursive and not monotone:
                    report.add(
                        ERROR,
                        "stratification",
                        f"recursion through negation/aggregation between "
                        f"{name!r} and {target!r} has no least fixed point",
                    )


def _self_loop(edges, name):
    return any(target == name for target, _ in edges[name])


def _tarjan(graph):
    """Strongly connected components of *graph* (dict name -> successor list)."""
    index_counter = [0]
    stack = []
    lowlink = {}
    index = {}
    on_stack = set()
    result = []

    def strongconnect(node):
        work = [(node, 0)]
        while work:
            v, child_index = work[-1]
            if child_index == 0:
                index[v] = index_counter[0]
                lowlink[v] = index_counter[0]
                index_counter[0] += 1
                stack.append(v)
                on_stack.add(v)
            advanced = False
            successors = graph.get(v, [])
            while child_index < len(successors):
                w = successors[child_index]
                child_index += 1
                if w not in index:
                    work[-1] = (v, child_index)
                    work.append((w, 0))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[v] = min(lowlink[v], index[w])
            if advanced:
                continue
            work.pop()
            if lowlink[v] == index[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == v:
                        break
                result.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])

    for node in graph:
        if node not in index:
            strongconnect(node)
    return result


def _classify_relations(root, database, externals, report):
    if externals is None:
        # The engine defaults to the standard registry of reified built-ins;
        # classification mirrors that default.
        from ..engine.externals import standard_registry

        externals = standard_registry()
    definitions = root.definitions if isinstance(root, n.Program) else {}
    for node in _walk_root(root):
        if isinstance(node, n.RelationRef):
            name = node.name
            if name in definitions:
                kind = "defined"
            elif database is not None and name in database:
                kind = "base"
            elif externals is not None and name in externals:
                kind = "external"
            elif _is_enclosing_head(root, name):
                kind = "self"
            else:
                kind = "unknown"
                if database is not None:
                    report.add(
                        ERROR,
                        "unknown-relation",
                        f"relation {name!r} is not a base, defined, or external relation",
                    )
            report.relation_kinds[name] = kind


def _walk_root(root):
    if isinstance(root, n.Program):
        for definition in root.definitions.values():
            yield from definition.walk()
        main = root.resolve_main()
        if main is not None and main not in set(root.definitions.values()):
            yield from main.walk()
    else:
        yield from root.walk()


def _is_enclosing_head(root, name):
    """True when *name* is the head of some collection in the tree — a
    self-reference (direct recursion written without a Program wrapper)."""
    for node in _walk_root(root):
        if isinstance(node, n.Collection) and node.head.name == name:
            return True
    return False
