"""Parsing the ALT text modality back into an ARC AST.

The paper's modalities are "mechanically inter-translatable representations
of the same language" (Section 1).  :mod:`repro.core.alt` renders an AST as
the box-drawing ALT; this module is the inverse, so the machine-facing
modality is genuinely lossless::

    parse_alt(render_alt(query))  ≡  query      (structurally)

The higraph modality remains render-only by design: it is the human-facing
*view* of the same linked structure.
"""

from __future__ import annotations

from ..errors import ParseError
from . import nodes as n
from .lexer import tokenize
from .parser import _Parser

_BRANCH_MARKS = ("├─ ", "└─ ")
_LEVEL_WIDTH = 3  # every nesting level adds "│  " or "   "


class _AltNode:
    __slots__ = ("label", "children")

    def __init__(self, label):
        self.label = label
        self.children = []


def parse_alt(text):
    """Parse ALT box-drawing text into a Collection, Sentence, or Program."""
    tree = _parse_tree(text)
    return _convert_root(tree)


def _parse_tree(text):
    lines = [line.rstrip() for line in text.splitlines() if line.strip()]
    if not lines:
        raise ParseError("empty ALT text")
    # The LINKS overlay section (if present) is informational only.
    if "LINKS:" in lines:
        lines = lines[: lines.index("LINKS:")]
    root = _AltNode(lines[0].strip())
    stack = [(0, root)]  # (depth, node)
    for line in lines[1:]:
        depth, label = _split_line(line)
        node = _AltNode(label)
        while stack and stack[-1][0] >= depth:
            stack.pop()
        if not stack:
            raise ParseError(f"ALT line has no parent: {line!r}")
        stack[-1][1].children.append(node)
        stack.append((depth, node))
    return root


def _split_line(line):
    for mark in _BRANCH_MARKS:
        index = line.find(mark)
        if index >= 0:
            depth = index // _LEVEL_WIDTH + 1
            return depth, line[index + len(mark) :].strip()
    raise ParseError(f"not an ALT branch line: {line!r}")


# ---------------------------------------------------------------------------
# Conversion to AST nodes
# ---------------------------------------------------------------------------


def _convert_root(node):
    if node.label == "PROGRAM":
        definitions = {}
        main = None
        for child in node.children:
            if child.label.startswith("DEFINE: "):
                name = child.label[len("DEFINE: ") :]
                definitions[name] = _convert_collection(child.children[0])
            elif child.label.startswith("MAIN: "):
                main = child.label[len("MAIN: ") :]
            elif child.label == "MAIN:":
                main = _convert_root(child.children[0])
        return n.Program(definitions, main)
    if node.label == "COLLECTION":
        return _convert_collection(node)
    if node.label == "SENTENCE":
        return n.Sentence(_convert_formula(node.children[0]))
    raise ParseError(f"unexpected ALT root {node.label!r}")


def _convert_collection(node):
    if node.label != "COLLECTION":
        raise ParseError(f"expected COLLECTION, got {node.label!r}")
    head_node = node.children[0]
    if not head_node.label.startswith("HEAD: "):
        raise ParseError(f"expected HEAD line, got {head_node.label!r}")
    head = _parse_head(head_node.label[len("HEAD: ") :])
    body_children = node.children[1:]
    if len(body_children) != 1:
        raise ParseError("COLLECTION must have exactly one body subtree")
    return n.Collection(head, _convert_formula(body_children[0]))


def _parse_head(text):
    name, _, attrs_text = text.partition("(")
    if not attrs_text.endswith(")"):
        raise ParseError(f"malformed head {text!r}")
    attrs_text = attrs_text[:-1]
    attrs = tuple(a.strip() for a in attrs_text.split(",") if a.strip())
    return n.Head(name.strip(), attrs)


def _convert_formula(node):
    label = node.label
    if label.startswith("QUANTIFIER"):
        return _convert_quantifier(node)
    if label.startswith("AND"):
        return n.And([_convert_formula(c) for c in node.children])
    if label.startswith("OR"):
        return n.Or([_convert_formula(c) for c in node.children])
    if label.startswith("NOT"):
        return n.Not(_convert_formula(node.children[0]))
    if label.startswith("PREDICATE: "):
        return _parse_predicate(label[len("PREDICATE: ") :])
    if label == "COLLECTION":
        return _convert_collection(node)
    raise ParseError(f"unexpected ALT formula node {label!r}")


def _convert_quantifier(node):
    bindings = []
    grouping = None
    join = None
    body = None
    for child in node.children:
        label = child.label
        if label.startswith("BINDING: "):
            bindings.append(_convert_binding(child, label[len("BINDING: ") :]))
        elif label.startswith("GROUPING: "):
            grouping = _parse_grouping(label[len("GROUPING: ") :])
        elif label.startswith("JOIN: "):
            join = _parse_join(label[len("JOIN: ") :])
        else:
            if body is not None:
                raise ParseError("quantifier has more than one body subtree")
            body = _convert_formula(child)
    if body is None:
        raise ParseError("quantifier has no body")
    return n.Quantifier(bindings, body, grouping, join)


def _convert_binding(node, text):
    var, separator, source = text.partition("∈")
    if not separator:
        raise ParseError(f"malformed binding {text!r}")
    var = var.strip()
    source = source.strip()
    if source:
        return n.Binding(var, n.RelationRef(source))
    # Nested collection: the source is the child subtree.
    if not node.children or node.children[0].label != "COLLECTION":
        raise ParseError(f"binding {var!r} has no source")
    return n.Binding(var, _convert_collection(node.children[0]))


def _parse_grouping(text):
    if text.strip() in ("∅", "empty"):
        return n.Grouping(())
    keys = []
    for part in text.split(","):
        keys.append(_parse_expr(part.strip()))
    return n.Grouping(tuple(keys))


def _parse_join(text):
    parser = _Parser(tokenize(text))
    return parser._parse_join_annotation()


def _parse_predicate(text):
    if text == "true":
        return n.BoolConst(True)
    if text == "false":
        return n.BoolConst(False)
    parser = _Parser(tokenize(text))
    predicate = parser._parse_predicate()
    parser._expect_end()
    return predicate


def _parse_expr(text):
    parser = _Parser(tokenize(text))
    expr = parser._parse_expr()
    parser._expect_end()
    return expr
