"""The Abstract Language Tree (ALT) modality: machine-facing rendering.

Produces exactly the paper's box-drawing presentation (Figs. 2a, 4b, 5c,
21g-i)::

    COLLECTION
    ├─ HEAD: Q(A)
    └─ QUANTIFIER ∃
       ├─ BINDING: r ∈ R
       ├─ BINDING: s ∈ S
       └─ AND ∧
          ├─ PREDICATE: Q.A = r.A
          ├─ PREDICATE: r.B = s.B
          └─ PREDICATE: s.C = 0

The *linked* ALT additionally lists the cross-reference edges produced by
the linker (attribute occurrence -> declaring binding/head) — the overlay
arrows of Fig. 2a.  Structurally the linked ALT is a higraph (containment
tree + reference edges); :mod:`repro.core.higraph` renders the same data
diagrammatically.
"""

from __future__ import annotations

from ..errors import LinkError
from . import nodes as n
from .linker import link


def render_alt(root, *, include_links=False):
    """Render *root* as an ALT text tree.

    When ``include_links`` is true, appends a ``LINKS:`` section listing the
    reference edges (attr occurrence -> declaration) that turn the tree into
    a higraph.
    """
    lines = _alt_lines(root)
    text = "\n".join(_draw(lines))
    if include_links:
        try:
            result = link(root)
        except LinkError as exc:
            text += f"\nLINKS: <unlinkable: {exc}>"
            return text
        edge_lines = []
        for attr, declaration in result.links():
            if isinstance(declaration, n.Binding):
                target = f"binding {declaration.var}"
            else:
                target = f"head {declaration.name}"
            edge_lines.append(f"  {attr.var}.{attr.attr} -> {target}")
        text += "\nLINKS:\n" + "\n".join(sorted(set(edge_lines)))
    return text


class _Line:
    """One ALT node: a label plus its children, rendered depth-first."""

    __slots__ = ("label", "children")

    def __init__(self, label, children=()):
        self.label = label
        self.children = list(children)


def _draw(root_line):
    """Convert a _Line tree into box-drawing text lines."""
    out = [root_line.label]

    def recurse(line, prefix):
        count = len(line.children)
        for index, child in enumerate(line.children):
            last = index == count - 1
            connector = "└─ " if last else "├─ "
            out.append(prefix + connector + child.label)
            recurse(child, prefix + ("   " if last else "│  "))

    recurse(root_line, "")
    return out


def _alt_lines(node):
    if isinstance(node, n.Program):
        children = []
        for name, definition in node.definitions.items():
            wrapper = _Line(f"DEFINE: {name}", [_alt_lines(definition)])
            children.append(wrapper)
        main = node.resolve_main()
        if main is not None:
            if isinstance(node.main, str):
                children.append(_Line(f"MAIN: {node.main}"))
            else:
                children.append(_Line("MAIN:", [_alt_lines(main)]))
        return _Line("PROGRAM", children)
    if isinstance(node, n.Collection):
        head = _Line(f"HEAD: {node.head.name}({','.join(node.head.attrs)})")
        return _Line("COLLECTION", [head, _formula_lines(node.body)])
    if isinstance(node, n.Sentence):
        return _Line("SENTENCE", [_formula_lines(node.body)])
    if isinstance(node, n.Formula):
        return _formula_lines(node)
    raise TypeError(f"cannot render {type(node).__name__} as ALT")


def _formula_lines(formula):
    if isinstance(formula, n.Quantifier):
        children = []
        for binding in formula.bindings:
            if isinstance(binding.source, n.RelationRef):
                children.append(
                    _Line(f"BINDING: {binding.var} ∈ {binding.source.name}")
                )
            else:
                children.append(
                    _Line(f"BINDING: {binding.var} ∈ ", [_alt_lines(binding.source)])
                )
        if formula.grouping is not None:
            children.append(_Line(_grouping_label(formula.grouping)))
        if formula.join is not None:
            children.append(_Line(f"JOIN: {_join_text(formula.join)}"))
        children.append(_formula_lines(formula.body))
        return _Line("QUANTIFIER ∃", children)
    if isinstance(formula, n.And):
        return _Line("AND ∧", [_formula_lines(c) for c in formula.children_list])
    if isinstance(formula, n.Or):
        return _Line("OR ∨", [_formula_lines(c) for c in formula.children_list])
    if isinstance(formula, n.Not):
        return _Line("NOT ¬", [_formula_lines(formula.child)])
    if isinstance(formula, n.Comparison):
        return _Line(f"PREDICATE: {_expr_text(formula.left)} {formula.op} {_expr_text(formula.right)}")
    if isinstance(formula, n.IsNull):
        suffix = "is not null" if formula.negated else "is null"
        return _Line(f"PREDICATE: {_expr_text(formula.expr)} {suffix}")
    if isinstance(formula, n.BoolConst):
        return _Line(f"PREDICATE: {'true' if formula.value else 'false'}")
    if isinstance(formula, n.Collection):
        return _alt_lines(formula)
    raise TypeError(f"cannot render formula {type(formula).__name__}")


def _grouping_label(grouping):
    if not grouping.keys:
        return "GROUPING: ∅"
    return "GROUPING: " + ", ".join(_expr_text(k) for k in grouping.keys)


def _join_text(join):
    if isinstance(join, n.JoinVar):
        return join.var
    if isinstance(join, n.JoinConst):
        return repr(join.value)
    inner = ", ".join(_join_text(c) for c in join.children_list)
    return f"{join.kind}({inner})"


def _expr_text(expr):
    if isinstance(expr, n.Attr):
        return f"{expr.var}.{expr.attr}"
    if isinstance(expr, n.Const):
        value = expr.value
        if isinstance(value, str):
            return f"'{value}'"
        return repr(value)
    if isinstance(expr, n.AggCall):
        if expr.arg is None:
            return f"{expr.func}(*)"
        return f"{expr.func}({_expr_text(expr.arg)})"
    if isinstance(expr, n.Arith):
        left = _expr_text(expr.left)
        right = _expr_text(expr.right)
        if isinstance(expr.left, n.Arith):
            left = f"({left})"
        if isinstance(expr.right, n.Arith):
            right = f"({right})"
        return f"{left} {expr.op} {right}"
    return str(expr)
