"""Frontends: surface languages embedded into ARC.

Each frontend parses a user-facing relational language and translates it
into ARC's core nodes, preserving the query's *relational pattern* — the
paper's Rosetta-Stone role (Sections 2.5, 3).  Submodules are imported
directly (``from repro.frontends import sql``) to keep import costs low.
"""

__all__ = ["sql", "datalog", "trc", "rel"]
