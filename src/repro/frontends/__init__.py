"""Frontends: surface languages embedded into ARC.

Each frontend parses a user-facing relational language and translates it
into ARC's core nodes, preserving the query's *relational pattern* — the
paper's Rosetta-Stone role (Sections 2.5, 3).  Submodules are imported
directly (``from repro.frontends import sql``) to keep import costs low.
"""

from ..errors import ArcError

#: Languages :func:`load_query` accepts (the CLI's ``--from`` choices).
FRONTENDS = ("arc", "alt", "sql", "datalog", "trc", "rel")


def load_query(text, language="arc", database=None):
    """Parse *text* in the named surface *language* into an ARC node.

    The single entry point the CLI, the Session API, and ``repro serve``
    share.  ``arc`` and ``alt`` are ARC's own modalities (parsed by
    :mod:`repro.core`); the rest are embedded frontends.  *database* lets
    schema-dependent frontends (SQL ``*`` expansion, Datalog, Rel) resolve
    relation schemas.
    """
    if language == "arc":
        from ..core import parse

        return parse(text)
    if language == "alt":
        from ..core.alt_parser import parse_alt

        return parse_alt(text)
    if language == "sql":
        from .sql import to_arc

        return to_arc(text, database=database)
    if language == "datalog":
        from . import datalog

        return datalog.to_arc(text, database=database)
    if language == "trc":
        from . import trc

        return trc.to_arc(text)
    if language == "rel":
        from . import rel

        return rel.to_arc(text, database=database)
    raise ArcError(f"unknown input language {language!r}; choose from {FRONTENDS}")


__all__ = ["sql", "datalog", "trc", "rel", "load_query", "FRONTENDS"]
