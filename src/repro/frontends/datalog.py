"""Datalog / Soufflé frontend: positional rules embedded into ARC.

Supports the constructs the paper discusses (Sections 2.5, 2.6, 2.9):

* plain rules with shared variables, constants, and ``_`` wildcards::

      A(x, y) :- P(x, y).
      A(x, y) :- P(x, z), A(z, y).

* negated atoms ``!R(x)`` (stratification is checked downstream);
* comparisons ``x < y``, ``x = 3``;
* Soufflé aggregates, both in rule bodies and in heads::

      Q(ak, sm) :- R(ak, _), sm = sum b : {S(a, b), a < ak}.     -- (15)
      Q(a, sum b : {R(a, b)}) :- R(a, _).                        -- (6)

The translation realizes the paper's observation that Soufflé aggregation is
a **from-the-outside-in (FOI)** pattern: each aggregate becomes a correlated
lateral collection with ``γ∅``; grouping keys are the outer variables the
aggregate body mentions ("you cannot export information from within the body
of an aggregate").

Multiple rules with the same head predicate become a single ARC collection
whose body is their disjunction (Section 2.9), and recursion is evaluated by
least fixed point.
"""

from __future__ import annotations

from itertools import count as _counter

from ..core import nodes as n
from ..core.lexer import EOF, IDENT, KEYWORD, NUMBER, STRING, SYMBOL, Token, tokenize
from ..errors import ParseError

AGGREGATE_WORDS = {"sum", "count", "min", "max", "avg", "mean"}


# ---------------------------------------------------------------------------
# Rule AST
# ---------------------------------------------------------------------------


class Atom:
    """``R(t1, ..., tk)`` — args are _Var, _Const, or _Wildcard."""

    def __init__(self, predicate, args, negated=False):
        self.predicate = predicate
        self.args = args
        self.negated = negated


class CompareLit:
    def __init__(self, left, op, right):
        self.left = left
        self.op = op
        self.right = right


class AggLit:
    """``target = func v : { atoms / comparisons }`` (target None in heads)."""

    def __init__(self, target, func, value_var, body):
        self.target = target
        self.func = func
        self.value_var = value_var
        self.body = body  # list of Atom | CompareLit


class _Var:
    def __init__(self, name):
        self.name = name


class _Const:
    def __init__(self, value):
        self.value = value


class _Wildcard:
    pass


class Rule:
    def __init__(self, head_predicate, head_args, body):
        self.head_predicate = head_predicate
        self.head_args = head_args  # list of _Var | _Const | AggLit
        self.body = body  # list of Atom | CompareLit | AggLit


# ---------------------------------------------------------------------------
# Parser (reuses the core lexer; Datalog's "!" is tokenized manually)
# ---------------------------------------------------------------------------


def parse_rules(text):
    """Parse a Datalog program into a list of Rules."""
    # The shared lexer has no "!" token; normalize Soufflé negation first.
    text = text.replace("!", " not ")
    tokens = tokenize(text)
    return _RuleParser(tokens).parse_program()


class _RuleParser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0

    def _peek(self, offset=0):
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _next(self):
        token = self._peek()
        if token.type != EOF:
            self._pos += 1
        return token

    def _expect(self, symbol):
        token = self._next()
        if not token.is_symbol(symbol):
            raise ParseError(
                f"expected {symbol!r}, got {token.value!r}", token.line, token.column
            )
        return token

    def parse_program(self):
        rules = []
        while self._peek().type != EOF:
            rules.append(self._parse_rule())
        return rules

    def _parse_rule(self):
        predicate, args = self._parse_head()
        body = []
        token = self._peek()
        if token.is_symbol(":") and self._peek(1).is_symbol("-"):
            self._next()
            self._next()
            body = self._parse_body()
        self._expect(".")
        return Rule(predicate, args, body)

    def _parse_head(self):
        token = self._next()
        if token.type != IDENT:
            raise ParseError(
                f"expected predicate name, got {token.value!r}", token.line, token.column
            )
        predicate = token.value
        self._expect("(")
        args = []
        if not self._peek().is_symbol(")"):
            while True:
                args.append(self._parse_head_arg())
                if self._peek().is_symbol(","):
                    self._next()
                    continue
                break
        self._expect(")")
        return predicate, args

    def _parse_head_arg(self):
        token = self._peek()
        if token.type == IDENT and token.value in AGGREGATE_WORDS:
            return self._parse_aggregate(target=None)
        return self._parse_term()

    def _parse_term(self):
        token = self._next()
        if token.type == IDENT:
            if token.value == "_":
                return _Wildcard()
            return _Var(token.value)
        if token.type == NUMBER:
            value = float(token.value) if "." in token.value else int(token.value)
            return _Const(value)
        if token.type == STRING:
            return _Const(token.value)
        if token.is_symbol("-") and self._peek().type == NUMBER:
            number = self._next()
            value = float(number.value) if "." in number.value else int(number.value)
            return _Const(-value)
        raise ParseError(
            f"expected term, got {token.value!r}", token.line, token.column
        )

    def _parse_body(self):
        literals = [self._parse_literal()]
        while self._peek().is_symbol(","):
            self._next()
            literals.append(self._parse_literal())
        return literals

    def _parse_atom(self):
        token = self._next()
        if token.type != IDENT:
            raise ParseError(
                f"expected predicate name, got {token.value!r}",
                token.line,
                token.column,
            )
        predicate = token.value
        self._expect("(")
        args = []
        if not self._peek().is_symbol(")"):
            while True:
                args.append(self._parse_term())
                if self._peek().is_symbol(","):
                    self._next()
                    continue
                break
        self._expect(")")
        return Atom(predicate, args)

    def _parse_literal(self):
        token = self._peek()
        if token.is_keyword("not"):
            self._next()
            atom = self._parse_atom()
            atom.negated = True
            return atom
        if token.type == IDENT and self._peek(1).is_symbol("(") and token.value not in AGGREGATE_WORDS:
            return self._parse_atom()
        # Comparison or aggregate assignment: term op term | var = agg ...
        left = self._parse_term()
        op_token = self._next()
        op = op_token.value
        if op_token.is_symbol("<", ">") and self._peek().is_symbol("="):
            self._next()
            op += "="
        if op not in ("=", "<", "<=", ">", ">=", "<>", "!="):
            raise ParseError(
                f"expected comparison operator, got {op!r}",
                op_token.line,
                op_token.column,
            )
        next_token = self._peek()
        if (
            op == "="
            and next_token.type == IDENT
            and next_token.value in AGGREGATE_WORDS
        ):
            if not isinstance(left, _Var):
                raise ParseError("aggregate target must be a variable")
            return self._parse_aggregate(target=left.name)
        right = self._parse_term()
        return CompareLit(left, op, right)

    def _parse_aggregate(self, target):
        func_token = self._next()
        func = {"mean": "avg"}.get(func_token.value, func_token.value)
        value_var = None
        if not self._peek().is_symbol(":"):
            term = self._parse_term()
            if not isinstance(term, _Var):
                raise ParseError("aggregate value must be a variable")
            value_var = term.name
        self._expect(":")
        self._expect("{")
        body = self._parse_body()
        self._expect("}")
        return AggLit(target, func, value_var, body)


# ---------------------------------------------------------------------------
# Translation to ARC
# ---------------------------------------------------------------------------


def to_arc(text, *, database=None):
    """Parse Datalog rules and translate them into an ARC Program.

    ``database`` supplies attribute names for base predicates (positional
    arguments are matched against the stored schema); without it, base
    predicates get positional attribute names ``a1..ak``.
    """
    rules = parse_rules(text)
    return translate_rules(rules, database=database)


def translate_rules(rules, *, database=None):
    translator = _DatalogTranslator(rules, database)
    return translator.translate()


class _DatalogTranslator:
    def __init__(self, rules, database):
        self._rules = rules
        self._database = database
        self._ids = _counter(1)
        self._head_schemas = self._infer_head_schemas()

    def _fresh(self, prefix):
        return f"{prefix}{next(self._ids)}"

    def _infer_head_schemas(self):
        """Defined predicate -> attribute names (from first rule's head vars)."""
        schemas = {}
        for rule in self._rules:
            if rule.head_predicate in schemas:
                if len(schemas[rule.head_predicate]) != len(rule.head_args):
                    raise ParseError(
                        f"predicate {rule.head_predicate!r} used with "
                        "inconsistent arities"
                    )
                continue
            attrs = []
            for index, arg in enumerate(rule.head_args, start=1):
                if isinstance(arg, _Var):
                    attrs.append(arg.name)
                else:
                    attrs.append(f"c{index}")
            if len(set(attrs)) != len(attrs):
                attrs = [f"c{i}" for i in range(1, len(attrs) + 1)]
            schemas[rule.head_predicate] = tuple(attrs)
        return schemas

    def _relation_schema(self, predicate, arity):
        if predicate in self._head_schemas:
            schema = self._head_schemas[predicate]
        elif self._database is not None and predicate in self._database:
            schema = tuple(self._database[predicate].schema)
        else:
            schema = tuple(f"a{i}" for i in range(1, arity + 1))
        if len(schema) != arity:
            raise ParseError(
                f"predicate {predicate!r} used with arity {arity}, but its "
                f"schema is {schema}"
            )
        return schema

    def translate(self):
        by_head = {}
        for rule in self._rules:
            by_head.setdefault(rule.head_predicate, []).append(rule)
        definitions = {}
        last = None
        for predicate, rules in by_head.items():
            bodies = [self._translate_rule(rule) for rule in rules]
            collection = n.Collection(
                n.Head(predicate, self._head_schemas[predicate]), n.make_or(bodies)
            )
            definitions[predicate] = collection
            last = predicate
        return n.Program(definitions, last)

    def _translate_rule(self, rule):
        head = rule.head_predicate
        head_attrs = self._head_schemas[head]
        bindings = []
        conjuncts = []
        var_map = {}  # datalog var -> Attr

        positives = [l for l in rule.body if isinstance(l, Atom) and not l.negated]
        negatives = [l for l in rule.body if isinstance(l, Atom) and l.negated]
        comparisons = [l for l in rule.body if isinstance(l, CompareLit)]
        aggregates = [l for l in rule.body if isinstance(l, AggLit)]

        for atom in positives:
            bindings.append(self._bind_atom(atom, var_map, conjuncts))
        # Aggregates before comparisons: an aggregate literal *binds* its
        # target variable, and Soufflé-style bodies filter on that target
        # (``ct = count v : {...}, ct >= 2``) regardless of literal order.
        for aggregate in aggregates:
            binding, value_attr = self._translate_aggregate(aggregate, var_map)
            bindings.append(binding)
            var_map[aggregate.target] = n.Attr(binding.var, value_attr)
        for comparison in comparisons:
            conjuncts.append(self._translate_comparison(comparison, var_map))
        for atom in negatives:
            conjuncts.append(self._translate_negated(atom, var_map))

        assignments = []
        for attr, arg in zip(head_attrs, rule.head_args):
            if isinstance(arg, _Var):
                if arg.name not in var_map:
                    raise ParseError(
                        f"head variable {arg.name!r} is not bound in the body "
                        f"of a rule for {head!r}"
                    )
                assignments.append(
                    n.Comparison(n.Attr(head, attr), "=", var_map[arg.name])
                )
            elif isinstance(arg, _Const):
                assignments.append(n.Comparison(n.Attr(head, attr), "=", n.Const(arg.value)))
            elif isinstance(arg, AggLit):
                binding, value_attr = self._translate_aggregate(arg, var_map)
                bindings.append(binding)
                assignments.append(
                    n.Comparison(n.Attr(head, attr), "=", n.Attr(binding.var, value_attr))
                )
            else:
                raise ParseError("wildcard not allowed in rule head")

        return n.Quantifier(bindings, n.make_and(conjuncts + assignments))

    def _bind_atom(self, atom, var_map, conjuncts):
        schema = self._relation_schema(atom.predicate, len(atom.args))
        var = self._fresh(atom.predicate.lower()[:1] or "r")
        for attr, arg in zip(schema, atom.args):
            if isinstance(arg, _Wildcard):
                continue
            if isinstance(arg, _Const):
                conjuncts.append(
                    n.Comparison(n.Attr(var, attr), "=", n.Const(arg.value))
                )
            elif isinstance(arg, _Var):
                if arg.name in var_map:
                    conjuncts.append(
                        n.Comparison(n.Attr(var, attr), "=", var_map[arg.name])
                    )
                else:
                    var_map[arg.name] = n.Attr(var, attr)
        return n.Binding(var, n.RelationRef(atom.predicate))

    def _translate_negated(self, atom, var_map):
        schema = self._relation_schema(atom.predicate, len(atom.args))
        var = self._fresh(atom.predicate.lower()[:1] or "r")
        equalities = []
        for attr, arg in zip(schema, atom.args):
            if isinstance(arg, _Wildcard):
                continue
            if isinstance(arg, _Const):
                equalities.append(n.Comparison(n.Attr(var, attr), "=", n.Const(arg.value)))
            elif isinstance(arg, _Var):
                if arg.name not in var_map:
                    raise ParseError(
                        f"variable {arg.name!r} in a negated atom must be "
                        "bound by a positive atom (range restriction)"
                    )
                equalities.append(n.Comparison(n.Attr(var, attr), "=", var_map[arg.name]))
        quant = n.Quantifier(
            [n.Binding(var, n.RelationRef(atom.predicate))], n.make_and(equalities)
        )
        return n.Not(quant)

    def _translate_comparison(self, comparison, var_map):
        return n.Comparison(
            self._term_expr(comparison.left, var_map),
            comparison.op,
            self._term_expr(comparison.right, var_map),
        )

    def _term_expr(self, term, var_map):
        if isinstance(term, _Const):
            return n.Const(term.value)
        if isinstance(term, _Var):
            if term.name not in var_map:
                raise ParseError(f"unbound variable {term.name!r} in comparison")
            return var_map[term.name]
        raise ParseError("wildcard not allowed in comparison")

    def _translate_aggregate(self, aggregate, outer_var_map):
        """Soufflé aggregate -> correlated lateral collection with γ∅ (FOI).

        Variables already bound outside are correlated into the aggregate
        body; variables bound only inside stay local (Soufflé's rule that
        groundings do not escape the aggregate scope).
        """
        inner_name = self._fresh("X")
        value_attr = "val"
        inner_map = {}
        inner_bindings = []
        inner_conjuncts = []
        for literal in aggregate.body:
            if isinstance(literal, Atom):
                if literal.negated:
                    inner_conjuncts.append(
                        self._translate_negated_inner(literal, inner_map, outer_var_map)
                    )
                else:
                    inner_bindings.append(
                        self._bind_atom_inner(
                            literal, inner_map, outer_var_map, inner_conjuncts
                        )
                    )
            elif isinstance(literal, CompareLit):
                merged = {**outer_var_map, **inner_map}
                inner_conjuncts.append(self._translate_comparison(literal, merged))
            else:
                raise ParseError("nested aggregates are not supported")
        if aggregate.value_var is None:
            agg_expr = n.AggCall("count", None)
        else:
            if aggregate.value_var not in inner_map:
                raise ParseError(
                    f"aggregate value variable {aggregate.value_var!r} is not "
                    "bound inside the aggregate body"
                )
            agg_expr = n.AggCall(aggregate.func, inner_map[aggregate.value_var])
        inner_conjuncts.append(
            n.Comparison(n.Attr(inner_name, value_attr), "=", agg_expr)
        )
        quant = n.Quantifier(inner_bindings, n.make_and(inner_conjuncts), n.Grouping(()))
        collection = n.Collection(n.Head(inner_name, (value_attr,)), quant)
        var = self._fresh("x")
        return n.Binding(var, collection), value_attr

    def _bind_atom_inner(self, atom, inner_map, outer_var_map, conjuncts):
        schema = self._relation_schema(atom.predicate, len(atom.args))
        var = self._fresh(atom.predicate.lower()[:1] or "r")
        for attr, arg in zip(schema, atom.args):
            if isinstance(arg, _Wildcard):
                continue
            if isinstance(arg, _Const):
                conjuncts.append(n.Comparison(n.Attr(var, attr), "=", n.Const(arg.value)))
            elif isinstance(arg, _Var):
                if arg.name in inner_map:
                    conjuncts.append(
                        n.Comparison(n.Attr(var, attr), "=", inner_map[arg.name])
                    )
                elif arg.name in outer_var_map:
                    # Correlation with the outer rule: the FOI pattern.
                    conjuncts.append(
                        n.Comparison(n.Attr(var, attr), "=", outer_var_map[arg.name])
                    )
                else:
                    inner_map[arg.name] = n.Attr(var, attr)
        return n.Binding(var, n.RelationRef(atom.predicate))

    def _translate_negated_inner(self, atom, inner_map, outer_var_map):
        merged = {**outer_var_map, **inner_map}
        return self._translate_negated(atom, merged)
