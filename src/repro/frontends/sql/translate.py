"""Translation of the SQL subset into ARC, preserving relational patterns.

The embeddings implemented here are exactly the ones the paper describes:

* FROM aliases become quantifier bindings; explicit joins become join
  annotations (Section 2.11), with the literal-leaf device
  (``inner(11, s)``) applied automatically to preserved-side-constant ON
  conjuncts (Fig. 12);
* derived tables and ``JOIN LATERAL`` become nested collections bound in
  the body (Section 2.4);
* correlated scalar subqueries with aggregates become boolean grouping
  scopes with ``γ∅`` when compared in WHERE (the count-bug pattern,
  eq. (27)) and lateral FOI collections when selected (Fig. 5a -> eq. (7),
  Section 2.12);
* GROUP BY becomes a grouping operator; aggregates become aggregation
  assignment predicates evaluated *in the same scope* (the FIO pattern,
  Fig. 4); HAVING becomes a selection on a wrapping collection (eq. (8));
* DISTINCT becomes grouping on all projected expressions (Section 2.7);
* IN / NOT IN become (negated) existential quantifiers, reproducing SQL's
  three-valued NULL behaviour under the 3VL convention (Section 2.10);
* UNION becomes disjunction (Section 2.8); UNION without ALL adds a
  deduplicating wrapper;
* ``SELECT EXISTS(...)`` with no FROM clause becomes a boolean Sentence
  (Fig. 9).
"""

from __future__ import annotations

from itertools import count as _counter

from ...core import nodes as n
from ...errors import ParseError
from . import ast
from .parser import parse_sql


def to_arc(sql, *, database=None, head_name="Q"):
    """Parse *sql* and translate it to ARC.

    Returns a :class:`~repro.core.nodes.Collection`, a
    :class:`~repro.core.nodes.Sentence` (for ``SELECT EXISTS`` with no
    FROM), or a :class:`~repro.core.nodes.Program` (for ``SELECT INTO``).
    """
    stmt = parse_sql(sql)
    return translate(stmt, database=database, head_name=head_name)


def translate(stmt, *, database=None, head_name="Q"):
    translator = SqlTranslator(database)
    return translator.translate_statement(stmt, head_name)


class _SqlScope:
    """Column-resolution scope: ordered (var, schema) pairs plus a parent."""

    def __init__(self, parent=None):
        self.parent = parent
        self.entries = []  # (var, qualifier, schema-or-None)

    def add(self, var, qualifier, schema):
        self.entries.append((var, qualifier, schema))

    def resolve_qualified(self, qualifier):
        lowered = qualifier.lower()
        for var, qual, _ in reversed(self.entries):
            if qual is not None and qual.lower() == lowered:
                return var
        if self.parent is not None:
            return self.parent.resolve_qualified(qualifier)
        return None

    def resolve_unqualified(self, column):
        matches = []
        unknown = []
        for var, _, schema in self.entries:
            if schema is None:
                unknown.append(var)
            elif column in schema:
                matches.append(var)
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise ParseError(f"ambiguous column reference {column!r}")
        if not matches and len(unknown) == 1 and not self.entries_known():
            return unknown[0]
        if self.parent is not None:
            return self.parent.resolve_unqualified(column)
        return None

    def entries_known(self):
        return all(schema is not None for _, _, schema in self.entries)


class SqlTranslator:
    def __init__(self, database=None):
        self._database = database
        self._ids = _counter(1)

    def _fresh(self, prefix):
        return f"{prefix}{next(self._ids)}"

    # -- statements -------------------------------------------------------------

    def translate_statement(self, stmt, head_name="Q"):
        if isinstance(stmt, ast.UnionStmt):
            return self._translate_union(stmt, head_name)
        if self._is_boolean_select(stmt):
            item = stmt.items[0].expr
            body = self._translate_exists(item, _SqlScope())
            return n.Sentence(body)
        collection = self._translate_select(stmt, head_name, _SqlScope())
        if stmt.into:
            renamed = n.Collection(
                n.Head(stmt.into, collection.head.attrs),
                _rename_head_var(collection.body, collection.head.name, stmt.into),
            )
            return n.Program({stmt.into: renamed}, stmt.into)
        return collection

    @staticmethod
    def _is_boolean_select(stmt):
        return (
            not stmt.from_items
            and len(stmt.items) == 1
            and isinstance(stmt.items[0].expr, ast.ExistsPred)
        )

    def _translate_union(self, stmt, head_name):
        branches = [
            self._translate_select(branch, head_name, _SqlScope())
            for branch in stmt.branches
        ]
        attrs = branches[0].head.attrs
        bodies = []
        for branch in branches:
            if len(branch.head.attrs) != len(attrs):
                raise ParseError("UNION branches have different arities")
            body = branch.body
            if branch.head.attrs != attrs:
                mapping = dict(zip(branch.head.attrs, attrs))
                body = _rename_head_attrs(body, branch.head.name, mapping)
            bodies.append(body)
        union = n.Collection(n.Head(head_name, attrs), n.make_or(bodies))
        if stmt.all:
            return union
        return self._dedup_wrapper(union, head_name)

    def _dedup_wrapper(self, collection, head_name):
        """Deduplication via grouping on all projected attributes (§2.7)."""
        inner_name = self._fresh("U")
        inner = n.Collection(
            n.Head(inner_name, collection.head.attrs),
            _rename_head_var(collection.body, collection.head.name, inner_name),
        )
        var = self._fresh("u")
        attrs = collection.head.attrs
        assigns = [
            n.Comparison(n.Attr(head_name, attr), "=", n.Attr(var, attr))
            for attr in attrs
        ]
        quant = n.Quantifier(
            [n.Binding(var, inner)],
            n.make_and(assigns),
            n.Grouping(tuple(n.Attr(var, attr) for attr in attrs)),
        )
        return n.Collection(n.Head(head_name, attrs), quant)

    # -- SELECT ----------------------------------------------------------------------

    def _translate_select(self, stmt, head_name, outer_scope):
        scope = _SqlScope(outer_scope)
        bindings, join_ann, from_conjuncts = self._translate_from(stmt, scope)

        conjuncts = list(from_conjuncts)
        extra_bindings = []  # lateral bindings for scalar subqueries in SELECT
        if stmt.where is not None:
            conjuncts.append(self._translate_condition(stmt.where, scope))

        has_aggregates = any(
            _contains_aggregate(item.expr) for item in stmt.items
        ) or (stmt.having is not None)

        if stmt.having is not None or (has_aggregates and self._needs_wrapper(stmt)):
            return self._translate_grouped_with_wrapper(
                stmt, head_name, scope, bindings, join_ann, conjuncts
            )

        names = self._item_names(stmt.items)
        assignments = []
        item_exprs = []
        group_keys = []
        if has_aggregates:
            group_keys = [self._translate_expr(g, scope) for g in stmt.group_by]
        for item, name in zip(stmt.items, names):
            expr, lateral = self._translate_select_expr(item.expr, scope)
            extra_bindings.extend(lateral)
            item_exprs.append(expr)
            assignments.append(n.Comparison(n.Attr(head_name, name), "=", expr))

        grouping = None
        if has_aggregates:
            grouping = n.Grouping(tuple(group_keys))
        elif stmt.distinct:
            grouping = n.Grouping(tuple(n.clone(e) for e in item_exprs))

        all_bindings = bindings + extra_bindings
        if not all_bindings:
            raise ParseError("SELECT without FROM is only supported for EXISTS")
        quant = n.Quantifier(
            all_bindings,
            n.make_and(conjuncts + assignments),
            grouping,
            join_ann,
        )
        return n.Collection(n.Head(head_name, tuple(names)), quant)

    def _needs_wrapper(self, stmt):
        """HAVING always wraps; pure grouped aggregates do not (FIO)."""
        return stmt.having is not None

    def _translate_grouped_with_wrapper(
        self, stmt, head_name, scope, bindings, join_ann, conjuncts
    ):
        """GROUP BY ... HAVING: inner grouped collection + outer selection,
        the paper's eq. (8) pattern."""
        inner_name = self._fresh("X")
        names = self._item_names(stmt.items)
        inner_assigns = []
        inner_attrs = []
        group_keys = [self._translate_expr(g, scope) for g in stmt.group_by]

        for item, name in zip(stmt.items, names):
            expr, lateral = self._translate_select_expr(item.expr, scope)
            if lateral:
                raise ParseError(
                    "scalar subqueries combined with HAVING are not supported"
                )
            inner_attrs.append(name)
            inner_assigns.append(n.Comparison(n.Attr(inner_name, name), "=", expr))

        # HAVING may reference aggregates and group keys not in the select
        # list; export them from the inner collection under fresh names.
        having_exports = []

        def export(expr_node):
            attr = f"h{len(having_exports) + 1}"
            inner_attrs.append(attr)
            inner_assigns.append(n.Comparison(n.Attr(inner_name, attr), "=", expr_node))
            having_exports.append(attr)
            return attr

        outer_var = self._fresh("x")
        having_formula = self._translate_having(
            stmt.having, scope, outer_var, export
        )

        inner_quant = n.Quantifier(
            bindings,
            n.make_and(conjuncts + inner_assigns),
            n.Grouping(tuple(group_keys)),
            join_ann,
        )
        inner = n.Collection(n.Head(inner_name, tuple(inner_attrs)), inner_quant)

        outer_assigns = [
            n.Comparison(n.Attr(head_name, name), "=", n.Attr(outer_var, name))
            for name in names
        ]
        outer_quant = n.Quantifier(
            [n.Binding(outer_var, inner)],
            n.make_and(outer_assigns + [having_formula]),
        )
        return n.Collection(n.Head(head_name, tuple(names)), outer_quant)

    def _translate_having(self, cond, scope, outer_var, export):
        """Translate a HAVING condition against the wrapping collection:
        aggregates and bare columns become attributes of the inner result."""
        if cond is None:
            return n.BoolConst(True)
        if isinstance(cond, ast.AndCond):
            return n.make_and(
                [self._translate_having(p, scope, outer_var, export) for p in cond.parts]
            )
        if isinstance(cond, ast.OrCond):
            return n.make_or(
                [self._translate_having(p, scope, outer_var, export) for p in cond.parts]
            )
        if isinstance(cond, ast.NotCond):
            return n.Not(self._translate_having(cond.part, scope, outer_var, export))
        if isinstance(cond, ast.Comparison):
            left = self._translate_having_expr(cond.left, scope, outer_var, export)
            right = self._translate_having_expr(cond.right, scope, outer_var, export)
            return n.Comparison(left, cond.op, right)
        if isinstance(cond, ast.IsNullPred):
            return n.IsNull(
                self._translate_having_expr(cond.expr, scope, outer_var, export),
                cond.negated,
            )
        raise ParseError(f"unsupported HAVING condition {type(cond).__name__}")

    def _translate_having_expr(self, expr, scope, outer_var, export):
        if isinstance(expr, ast.FuncCall):
            agg = self._translate_aggregate(expr, scope)
            return n.Attr(outer_var, export(agg))
        if isinstance(expr, ast.ColumnRef):
            inner_expr = self._translate_expr(expr, scope)
            return n.Attr(outer_var, export(inner_expr))
        if isinstance(expr, ast.Literal):
            return n.Const(expr.value)
        if isinstance(expr, ast.BinaryOp):
            return n.Arith(
                expr.op,
                self._translate_having_expr(expr.left, scope, outer_var, export),
                self._translate_having_expr(expr.right, scope, outer_var, export),
            )
        raise ParseError(f"unsupported HAVING expression {type(expr).__name__}")

    @staticmethod
    def _item_names(items):
        names = []
        for index, item in enumerate(items, start=1):
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, ast.ColumnRef) and item.expr.column != "*":
                names.append(item.expr.column)
            else:
                names.append(f"col{index}")
        if len(set(names)) != len(names):
            names = [
                name if names.count(name) == 1 else f"{name}_{index}"
                for index, name in enumerate(names, start=1)
            ]
        return names

    # -- FROM ------------------------------------------------------------------------

    def _translate_from(self, stmt, scope):
        """Returns (bindings, join-annotation-or-None, extra conjuncts)."""
        bindings = []
        conjuncts = []
        annotations = []
        any_outer = False
        for item in stmt.from_items:
            ann, has_outer = self._translate_from_item(item, scope, bindings, conjuncts)
            annotations.append(ann)
            any_outer = any_outer or has_outer
        if not any_outer:
            return bindings, None, conjuncts
        if len(annotations) == 1:
            join_ann = annotations[0]
        else:
            join_ann = n.Join("inner", annotations)
        return bindings, join_ann, conjuncts

    def _translate_from_item(self, item, scope, bindings, conjuncts):
        """Returns (annotation subtree, contains-outer-join)."""
        if isinstance(item, ast.TableRef):
            var = self._table_var(item, scope)
            bindings.append(n.Binding(var, n.RelationRef(item.name)))
            return n.JoinVar(var), False
        if isinstance(item, ast.DerivedTable):
            var = self._derived_var(item.alias, scope)
            sub_scope = scope if item.lateral else scope.parent or _SqlScope()
            if isinstance(item.query, ast.UnionStmt):
                collection = self._translate_union(item.query, item.alias)
            else:
                collection = self._translate_select(item.query, item.alias, sub_scope)
            scope.add(var, item.alias, collection.head.attrs)
            # The alias doubles as head name; rename the range variable so
            # the ARC query reads naturally (x ∈ {X(...) | ...}).
            bindings.append(n.Binding(var, collection))
            return n.JoinVar(var), False
        if isinstance(item, ast.JoinedTable):
            left_ann, left_outer = self._translate_from_item(
                item.left, scope, bindings, conjuncts
            )
            right_ann, right_outer = self._translate_from_item(
                item.right, scope, bindings, conjuncts
            )
            condition_conjuncts = []
            if item.condition is not None:
                condition_conjuncts = n.conjuncts(
                    self._translate_condition(item.condition, scope)
                )
            if item.kind in ("inner", "cross"):
                conjuncts.extend(condition_conjuncts)
                ann = n.Join("inner", [left_ann, right_ann])
                return ann, left_outer or right_outer
            # Outer join: apply the literal-leaf device to preserved-side
            # constant conjuncts so they become part of the join condition.
            right_ann = self._wrap_preserved_constants(
                condition_conjuncts, left_ann, right_ann
            )
            conjuncts.extend(condition_conjuncts)
            ann = n.Join(item.kind, [left_ann, right_ann])
            return ann, True
        raise ParseError(f"unsupported FROM item {type(item).__name__}")

    def _wrap_preserved_constants(self, condition_conjuncts, left_ann, right_ann):
        """Fig. 12: an ON conjunct like ``R.h = 11`` that references only the
        preserved side must still behave as a join condition; the paper
        encodes this by adding the constant as a literal leaf on the
        optional side (``inner(11, s)``)."""
        from ...engine.joins import annotation_vars

        left_vars = annotation_vars(left_ann)
        consts = []
        for conjunct in condition_conjuncts:
            used = n.vars_used(conjunct)
            if used and used <= left_vars:
                consts.extend(
                    node.value
                    for node in conjunct.walk()
                    if isinstance(node, n.Const)
                )
        if not consts:
            return right_ann
        leaves = [n.JoinConst(value) for value in dict.fromkeys(consts)]
        return n.Join("inner", leaves + [right_ann])

    def _table_var(self, item, scope):
        base = item.alias or item.name
        if not base[0].isalpha() and base[0] != "_":
            var = self._fresh("f")  # reified operators like "-", ">"
        else:
            var = base.lower()
        existing = {entry[0] for entry in scope.entries}
        while var in existing:
            var = self._fresh(var)
        schema = None
        if self._database is not None and item.name in self._database:
            schema = tuple(self._database[item.name].schema)
        elif self._is_external(item.name):
            schema = self._external_schema(item.name)
        scope.add(var, item.alias or item.name, schema)
        return var

    def _is_external(self, name):
        from ...engine.externals import standard_registry

        return name in standard_registry()

    def _external_schema(self, name):
        from ...engine.externals import standard_registry

        return standard_registry().get(name).attrs

    def _derived_var(self, alias, scope):
        var = alias.lower()
        if var == alias:  # avoid colliding with the nested head name
            var = f"{var}_"
        existing = {entry[0] for entry in scope.entries}
        while var in existing:
            var = self._fresh(var)
        return var

    # -- conditions -----------------------------------------------------------------

    def _translate_condition(self, cond, scope):
        if isinstance(cond, ast.AndCond):
            return n.make_and([self._translate_condition(p, scope) for p in cond.parts])
        if isinstance(cond, ast.OrCond):
            return n.make_or([self._translate_condition(p, scope) for p in cond.parts])
        if isinstance(cond, ast.NotCond):
            return n.Not(self._translate_condition(cond.part, scope))
        if isinstance(cond, ast.BoolLiteral):
            return n.BoolConst(cond.value)
        if isinstance(cond, ast.ExistsPred):
            body = self._translate_exists(cond, scope)
            return body
        if isinstance(cond, ast.InPredicate):
            return self._translate_in(cond, scope)
        if isinstance(cond, ast.IsNullPred):
            return n.IsNull(self._translate_expr(cond.expr, scope), cond.negated)
        if isinstance(cond, ast.Comparison):
            return self._translate_comparison(cond, scope)
        raise ParseError(f"unsupported condition {type(cond).__name__}")

    def _translate_exists(self, pred, scope):
        quant = self._subquery_as_quantifier(pred.query, scope)
        return n.Not(quant) if pred.negated else quant

    def _translate_in(self, pred, scope):
        sub = pred.query
        if len(sub.items) != 1:
            raise ParseError("IN subquery must select exactly one column")
        outer_expr = self._translate_expr(pred.expr, scope)
        quant = self._subquery_as_quantifier(
            sub,
            scope,
            extra=lambda sub_scope: [
                n.Comparison(
                    self._translate_expr(sub.items[0].expr, sub_scope), "=", outer_expr
                )
            ],
        )
        return n.Not(quant) if pred.negated else quant

    def _translate_comparison(self, cond, scope):
        left_scalar = isinstance(cond.left, ast.ScalarSubquery)
        right_scalar = isinstance(cond.right, ast.ScalarSubquery)
        if left_scalar and right_scalar:
            raise ParseError("comparing two scalar subqueries is not supported")
        if left_scalar or right_scalar:
            sub = (cond.left if left_scalar else cond.right).query
            other = cond.right if left_scalar else cond.left
            op = cond.op if not left_scalar else _flip_comparison(cond.op)
            return self._translate_scalar_comparison(other, op, sub, scope)
        return n.Comparison(
            self._translate_expr(cond.left, scope),
            cond.op,
            self._translate_expr(cond.right, scope),
        )

    def _translate_scalar_comparison(self, outer_expr_ast, op, sub, scope):
        """``expr op (SELECT agg(...) FROM ...)`` — the count-bug pattern:
        a boolean grouping scope with γ∅ and an aggregation comparison
        predicate (eq. (27))."""
        if len(sub.items) != 1:
            raise ParseError("scalar subquery must select exactly one column")
        outer_expr = self._translate_expr(outer_expr_ast, scope)
        item = sub.items[0].expr
        if _contains_aggregate(item) and not sub.group_by:
            def extra(sub_scope):
                agg_expr = self._translate_expr(item, sub_scope)
                return [n.Comparison(outer_expr, op, agg_expr)]

            return self._subquery_as_quantifier(
                sub, scope, extra=extra, grouping=n.Grouping(())
            )
        # Non-aggregate (or grouped) scalar subquery: existential comparison.
        def extra(sub_scope):
            value = self._translate_expr(item, sub_scope)
            return [n.Comparison(outer_expr, op, value)]

        return self._subquery_as_quantifier(sub, scope, extra=extra)

    def _subquery_as_quantifier(self, sub, scope, *, extra=None, grouping=None):
        """Translate a subquery used as a boolean test (EXISTS / IN /
        scalar-comparison): its FROM becomes bindings, its WHERE becomes
        conjuncts; the select list is ignored except through *extra*."""
        if sub.group_by or sub.having or sub.distinct and extra is None:
            raise ParseError("subquery shape not supported in boolean position")
        sub_scope = _SqlScope(scope)
        bindings = []
        conjuncts = []
        annotations = []
        any_outer = False
        for item in sub.from_items:
            ann, has_outer = self._translate_from_item(
                item, sub_scope, bindings, conjuncts
            )
            annotations.append(ann)
            any_outer = any_outer or has_outer
        join_ann = None
        if any_outer:
            join_ann = annotations[0] if len(annotations) == 1 else n.Join("inner", annotations)
        if sub.where is not None:
            conjuncts.append(self._translate_condition(sub.where, sub_scope))
        if extra is not None:
            conjuncts.extend(extra(sub_scope))
        if not bindings:
            raise ParseError("subquery without FROM is not supported")
        return n.Quantifier(bindings, n.make_and(conjuncts), grouping, join_ann)

    # -- expressions ------------------------------------------------------------------

    def _translate_select_expr(self, expr, scope):
        """Translate a select-item expression; scalar subqueries become
        lateral bindings (Section 2.12).  Returns (arc-expr, [bindings])."""
        if isinstance(expr, ast.ScalarSubquery):
            binding, attr = self._scalar_as_lateral(expr.query, scope)
            return n.Attr(binding.var, attr), [binding]
        if isinstance(expr, ast.FuncCall):
            return self._translate_aggregate(expr, scope), []
        if isinstance(expr, ast.BinaryOp):
            left, lb = self._translate_select_expr(expr.left, scope)
            right, rb = self._translate_select_expr(expr.right, scope)
            return n.Arith(expr.op, left, right), lb + rb
        return self._translate_expr(expr, scope), []

    def _scalar_as_lateral(self, sub, scope):
        """A scalar subquery in the select list becomes a lateral FOI
        collection with γ∅ (Fig. 5a -> eq. (7), Fig. 13a -> Fig. 13d)."""
        if len(sub.items) != 1:
            raise ParseError("scalar subquery must select exactly one column")
        inner_name = self._fresh("X")
        attr = sub.items[0].alias or "val"
        item = sub.items[0].expr
        sub_scope = _SqlScope(scope)
        bindings = []
        conjuncts = []
        for from_item in sub.from_items:
            self._translate_from_item(from_item, sub_scope, bindings, conjuncts)
        if sub.where is not None:
            conjuncts.append(self._translate_condition(sub.where, sub_scope))
        value_expr = self._translate_expr(item, sub_scope)
        conjuncts.append(n.Comparison(n.Attr(inner_name, attr), "=", value_expr))
        grouping = n.Grouping(()) if _contains_aggregate(item) else None
        quant = n.Quantifier(bindings, n.make_and(conjuncts), grouping)
        collection = n.Collection(n.Head(inner_name, (attr,)), quant)
        var = self._fresh("x")
        scope.add(var, None, (attr,))
        return n.Binding(var, collection), attr

    def _translate_aggregate(self, call, scope):
        func = call.name
        if call.distinct:
            func = f"{func}distinct"
        if call.arg is None:
            return n.AggCall("count", None)
        return n.AggCall(func, self._translate_expr(call.arg, scope))

    def _translate_expr(self, expr, scope):
        if isinstance(expr, ast.Literal):
            return n.Const(expr.value)
        if isinstance(expr, ast.ColumnRef):
            return self._translate_column(expr, scope)
        if isinstance(expr, ast.BinaryOp):
            return n.Arith(
                expr.op,
                self._translate_expr(expr.left, scope),
                self._translate_expr(expr.right, scope),
            )
        if isinstance(expr, ast.FuncCall):
            return self._translate_aggregate(expr, scope)
        if isinstance(expr, ast.ScalarSubquery):
            raise ParseError(
                "scalar subquery is only supported in select items and "
                "comparisons"
            )
        raise ParseError(f"unsupported expression {type(expr).__name__}")

    def _translate_column(self, ref, scope):
        if ref.column == "*":
            raise ParseError("bare * is only supported as the sole select item")
        if ref.table is not None:
            var = scope.resolve_qualified(ref.table)
            if var is None:
                raise ParseError(f"unknown table qualifier {ref.table!r}")
            return n.Attr(var, ref.column)
        var = scope.resolve_unqualified(ref.column)
        if var is None:
            raise ParseError(
                f"cannot resolve unqualified column {ref.column!r} "
                "(supply a database for schema-based resolution)"
            )
        return n.Attr(var, ref.column)


# -- helpers --------------------------------------------------------------------


def _contains_aggregate(expr):
    if isinstance(expr, ast.FuncCall):
        return True
    if isinstance(expr, ast.BinaryOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    return False


def _flip_comparison(op):
    return {"=": "=", "<>": "<>", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]


def _rename_head_var(formula, old, new):
    """Rename head-attribute references ``old.x`` to ``new.x`` in a body."""

    def rename(node):
        if isinstance(node, n.Attr) and node.var == old:
            return n.Attr(new, node.attr)
        return node

    return n.transform(formula, rename)


def _rename_head_attrs(formula, head_name, mapping):
    def rename(node):
        if isinstance(node, n.Attr) and node.var == head_name and node.attr in mapping:
            return n.Attr(head_name, mapping[node.attr])
        return node

    return n.transform(formula, rename)
