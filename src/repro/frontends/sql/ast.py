"""SQL abstract syntax for the paper's SQL subset.

This is deliberately a *concrete-syntax-shaped* AST (joins under FROM,
select lists with aliases, scalar subqueries in expressions): the point of
the paper is that such ASTs are not abstract enough, and
:mod:`repro.frontends.sql.translate` maps them onto ARC's semantics-first
representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# -- expressions ------------------------------------------------------------


@dataclass
class ColumnRef:
    table: str | None  # qualifier, None for unqualified references
    column: str


@dataclass
class Literal:
    value: object


@dataclass
class BinaryOp:
    op: str  # + - * / %
    left: object
    right: object


@dataclass
class FuncCall:
    name: str  # aggregate name, lowercased
    arg: object | None  # None for count(*)
    distinct: bool = False


@dataclass
class ScalarSubquery:
    query: "SelectStmt"


# -- conditions ------------------------------------------------------------------


@dataclass
class Comparison:
    op: str
    left: object
    right: object


@dataclass
class IsNullPred:
    expr: object
    negated: bool = False


@dataclass
class InPredicate:
    expr: object
    query: "SelectStmt"
    negated: bool = False


@dataclass
class ExistsPred:
    query: "SelectStmt"
    negated: bool = False


@dataclass
class AndCond:
    parts: list


@dataclass
class OrCond:
    parts: list


@dataclass
class NotCond:
    part: object


@dataclass
class BoolLiteral:
    value: bool


# -- FROM items --------------------------------------------------------------------


@dataclass
class TableRef:
    name: str
    alias: str | None = None

    @property
    def var(self):
        return self.alias or self.name


@dataclass
class DerivedTable:
    query: "SelectStmt"
    alias: str
    lateral: bool = False

    @property
    def var(self):
        return self.alias


@dataclass
class JoinedTable:
    kind: str  # "inner" | "left" | "full" | "cross"
    left: object
    right: object
    condition: object | None = None  # None for CROSS JOIN / ON true


# -- statements -----------------------------------------------------------------------


@dataclass
class SelectItem:
    expr: object
    alias: str | None = None


@dataclass
class SelectStmt:
    items: list = field(default_factory=list)
    distinct: bool = False
    from_items: list = field(default_factory=list)  # TableRef | DerivedTable | JoinedTable
    where: object | None = None
    group_by: list = field(default_factory=list)
    having: object | None = None
    into: str | None = None


@dataclass
class UnionStmt:
    branches: list  # of SelectStmt
    all: bool = False
