"""Recursive-descent parser for the paper's SQL subset.

Supported: SELECT [DISTINCT] with expression/aggregate/scalar-subquery
items, INTO, FROM with comma cross products and INNER/LEFT/FULL/CROSS
joins (including ``JOIN LATERAL``), WHERE with AND/OR/NOT, comparisons,
[NOT] IN (subquery), [NOT] EXISTS (subquery), IS [NOT] NULL, GROUP BY,
HAVING, and UNION [ALL].  This covers every SQL text in the paper
(Figs. 3, 4a, 5, 6a, 9, 11, 12a, 13, 15, 17, 18, 19, 21).
"""

from __future__ import annotations

from ...errors import ParseError
from . import ast
from .lexer import EOF, IDENT, KEYWORD, NUMBER, STRING, SYMBOL, tokenize

AGGREGATES = {"sum", "count", "avg", "min", "max"}


def parse_sql(text):
    """Parse SQL text into a :class:`~repro.frontends.sql.ast.SelectStmt`
    or :class:`~repro.frontends.sql.ast.UnionStmt`."""
    parser = _Parser(tokenize(text))
    stmt = parser.parse_statement()
    parser.expect_end()
    return stmt


class _Parser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0

    def _peek(self, offset=0):
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _next(self):
        token = self._peek()
        if token.type != EOF:
            self._pos += 1
        return token

    def _accept_keyword(self, *keywords):
        if self._peek().is_keyword(*keywords):
            return self._next()
        return None

    def _expect_keyword(self, keyword):
        token = self._next()
        if not token.is_keyword(keyword):
            raise ParseError(
                f"expected {keyword.upper()}, got {token.value!r}",
                token.line,
                token.column,
            )
        return token

    def _expect_symbol(self, symbol):
        token = self._next()
        if not token.is_symbol(symbol):
            raise ParseError(
                f"expected {symbol!r}, got {token.value!r}", token.line, token.column
            )
        return token

    def _expect_ident(self):
        token = self._next()
        if token.type != IDENT:
            raise ParseError(
                f"expected identifier, got {token.value!r}", token.line, token.column
            )
        return token.value

    def expect_end(self):
        if self._peek().is_symbol(";"):
            self._next()
        token = self._peek()
        if token.type != EOF:
            raise ParseError(
                f"unexpected trailing SQL {token.value!r}", token.line, token.column
            )

    # -- statements ------------------------------------------------------------

    def parse_statement(self):
        first = self.parse_select()
        branches = [first]
        union_all = None
        while self._accept_keyword("union"):
            is_all = bool(self._accept_keyword("all"))
            if union_all is None:
                union_all = is_all
            elif union_all != is_all:
                raise ParseError("mixing UNION and UNION ALL is not supported")
            branches.append(self.parse_select())
        if len(branches) == 1:
            return first
        return ast.UnionStmt(branches, all=bool(union_all))

    def parse_select(self):
        self._expect_keyword("select")
        stmt = ast.SelectStmt()
        stmt.distinct = bool(self._accept_keyword("distinct"))
        stmt.items = self._parse_select_list()
        if self._accept_keyword("into"):
            stmt.into = self._expect_ident()
        if self._accept_keyword("from"):
            stmt.from_items = self._parse_from()
        if self._accept_keyword("where"):
            stmt.where = self._parse_condition()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            stmt.group_by = [self._parse_expr()]
            while self._peek().is_symbol(","):
                self._next()
                stmt.group_by.append(self._parse_expr())
        if self._accept_keyword("having"):
            stmt.having = self._parse_condition()
        return stmt

    def _parse_select_list(self):
        items = [self._parse_select_item()]
        while self._peek().is_symbol(","):
            self._next()
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self):
        if self._peek().is_symbol("*"):
            self._next()
            return ast.SelectItem(ast.ColumnRef(None, "*"))
        if self._peek().is_keyword("exists"):
            self._next()
            self._expect_symbol("(")
            query = self.parse_select()
            self._expect_symbol(")")
            expr = ast.ExistsPred(query)
        elif self._peek().is_keyword("not") and self._peek(1).is_keyword("exists"):
            self._next()
            self._next()
            self._expect_symbol("(")
            query = self.parse_select()
            self._expect_symbol(")")
            expr = ast.ExistsPred(query, negated=True)
        else:
            expr = self._parse_expr()
        alias = self._parse_alias()
        return ast.SelectItem(expr, alias)

    def _parse_alias(self):
        if self._accept_keyword("as"):
            return self._expect_ident()
        if self._peek().type == IDENT:
            return self._next().value
        return None

    # -- FROM -----------------------------------------------------------------------

    def _parse_from(self):
        items = [self._parse_join_chain()]
        while self._peek().is_symbol(","):
            self._next()
            items.append(self._parse_join_chain())
        return items

    def _parse_join_chain(self):
        left = self._parse_table_primary()
        while True:
            token = self._peek()
            if token.is_keyword("join"):
                self._next()
                left = self._finish_join(left, "inner")
            elif token.is_keyword("inner") and self._peek(1).is_keyword("join"):
                self._next()
                self._next()
                left = self._finish_join(left, "inner")
            elif token.is_keyword("left", "full"):
                kind = self._next().value
                self._accept_keyword("outer")
                self._expect_keyword("join")
                left = self._finish_join(left, kind)
            elif token.is_keyword("cross"):
                self._next()
                self._expect_keyword("join")
                right = self._parse_table_primary()
                left = ast.JoinedTable("cross", left, right, None)
            else:
                return left

    def _finish_join(self, left, kind):
        lateral = bool(self._accept_keyword("lateral"))
        right = self._parse_table_primary(lateral=lateral)
        condition = None
        if self._accept_keyword("on"):
            condition = self._parse_condition()
        if isinstance(condition, ast.BoolLiteral) and condition.value:
            condition = None
        return ast.JoinedTable(kind, left, right, condition)

    def _parse_table_primary(self, *, lateral=False):
        if self._peek().is_symbol("("):
            self._next()
            query = self.parse_statement()
            self._expect_symbol(")")
            alias = self._parse_alias()
            if alias is None:
                raise ParseError("derived table requires an alias")
            return ast.DerivedTable(query, alias, lateral=lateral)
        if self._peek().is_keyword("lateral"):
            self._next()
            self._expect_symbol("(")
            query = self.parse_statement()
            self._expect_symbol(")")
            alias = self._parse_alias()
            if alias is None:
                raise ParseError("lateral derived table requires an alias")
            return ast.DerivedTable(query, alias, lateral=True)
        name = self._expect_ident()
        alias = self._parse_alias()
        return ast.TableRef(name, alias)

    # -- conditions -----------------------------------------------------------------

    def _parse_condition(self):
        return self._parse_or_cond()

    def _parse_or_cond(self):
        parts = [self._parse_and_cond()]
        while self._accept_keyword("or"):
            parts.append(self._parse_and_cond())
        if len(parts) == 1:
            return parts[0]
        return ast.OrCond(parts)

    def _parse_and_cond(self):
        parts = [self._parse_not_cond()]
        while self._accept_keyword("and"):
            parts.append(self._parse_not_cond())
        if len(parts) == 1:
            return parts[0]
        return ast.AndCond(parts)

    def _parse_not_cond(self):
        if self._accept_keyword("not"):
            inner = self._parse_not_cond()
            if isinstance(inner, ast.ExistsPred) and not inner.negated:
                return ast.ExistsPred(inner.query, negated=True)
            return ast.NotCond(inner)
        return self._parse_primary_cond()

    def _parse_primary_cond(self):
        token = self._peek()
        if token.is_keyword("exists"):
            self._next()
            self._expect_symbol("(")
            query = self.parse_statement()
            self._expect_symbol(")")
            return ast.ExistsPred(query)
        if token.is_keyword("true"):
            self._next()
            return ast.BoolLiteral(True)
        if token.is_keyword("false"):
            self._next()
            return ast.BoolLiteral(False)
        if token.is_symbol("("):
            # Either a parenthesized condition or a parenthesized expression;
            # resolve by tentative parsing.
            saved = self._pos
            try:
                self._next()
                inner = self._parse_condition()
                self._expect_symbol(")")
                if self._peek().is_symbol("=", "<>", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%"):
                    raise ParseError("expression, not condition")
                if self._peek().is_keyword("is", "in", "not"):
                    raise ParseError("expression, not condition")
                return inner
            except ParseError:
                self._pos = saved
        left = self._parse_expr()
        return self._parse_cond_rest(left)

    def _parse_cond_rest(self, left):
        token = self._peek()
        if token.is_keyword("is"):
            self._next()
            negated = bool(self._accept_keyword("not"))
            self._expect_keyword("null")
            return ast.IsNullPred(left, negated)
        if token.is_keyword("not") and self._peek(1).is_keyword("in"):
            self._next()
            self._next()
            self._expect_symbol("(")
            query = self.parse_statement()
            self._expect_symbol(")")
            return ast.InPredicate(left, query, negated=True)
        if token.is_keyword("in"):
            self._next()
            self._expect_symbol("(")
            query = self.parse_statement()
            self._expect_symbol(")")
            return ast.InPredicate(left, query)
        if token.is_symbol("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self._next().value
            right = self._parse_expr()
            return ast.Comparison(op, left, right)
        raise ParseError(
            f"expected condition operator, got {token.value!r}",
            token.line,
            token.column,
        )

    # -- expressions -------------------------------------------------------------------

    def _parse_expr(self):
        left = self._parse_term()
        while self._peek().is_symbol("+", "-"):
            op = self._next().value
            left = ast.BinaryOp(op, left, self._parse_term())
        return left

    def _parse_term(self):
        left = self._parse_factor()
        while self._peek().is_symbol("*", "/", "%"):
            op = self._next().value
            left = ast.BinaryOp(op, left, self._parse_factor())
        return left

    def _parse_factor(self):
        token = self._peek()
        if token.is_symbol("-"):
            self._next()
            inner = self._parse_factor()
            if isinstance(inner, ast.Literal) and isinstance(inner.value, (int, float)):
                return ast.Literal(-inner.value)
            return ast.BinaryOp("-", ast.Literal(0), inner)
        if token.is_symbol("("):
            # Scalar subquery or parenthesized expression.
            if self._peek(1).is_keyword("select"):
                self._next()
                query = self.parse_statement()
                self._expect_symbol(")")
                return ast.ScalarSubquery(query)
            self._next()
            inner = self._parse_expr()
            self._expect_symbol(")")
            return inner
        if token.type == NUMBER:
            self._next()
            return ast.Literal(float(token.value) if "." in token.value else int(token.value))
        if token.type == STRING:
            self._next()
            return ast.Literal(token.value)
        if token.is_keyword("null"):
            self._next()
            from ...data.values import NULL

            return ast.Literal(NULL)
        if token.is_keyword("true"):
            self._next()
            return ast.Literal(True)
        if token.is_keyword("false"):
            self._next()
            return ast.Literal(False)
        if token.type == IDENT:
            name = self._next().value
            if name.lower() in AGGREGATES and self._peek().is_symbol("("):
                return self._parse_aggregate(name.lower())
            if self._peek().is_symbol("."):
                self._next()
                column = self._next()
                if column.type not in (IDENT, KEYWORD) and not column.is_symbol("*"):
                    raise ParseError(
                        f"expected column after '.', got {column.value!r}",
                        column.line,
                        column.column,
                    )
                return ast.ColumnRef(name, column.value)
            return ast.ColumnRef(None, name)
        raise ParseError(
            f"expected expression, got {token.value!r}", token.line, token.column
        )

    def _parse_aggregate(self, name):
        self._expect_symbol("(")
        if self._peek().is_symbol("*"):
            self._next()
            self._expect_symbol(")")
            return ast.FuncCall("count", None)
        distinct = bool(self._accept_keyword("distinct"))
        arg = self._parse_expr()
        self._expect_symbol(")")
        return ast.FuncCall(name, arg, distinct=distinct)
