"""SQL tokenizer for the subset used throughout the paper's figures."""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ParseError

IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
SYMBOL = "SYMBOL"
KEYWORD = "KEYWORD"
EOF = "EOF"

KEYWORDS = {
    "select",
    "distinct",
    "from",
    "where",
    "group",
    "by",
    "having",
    "order",
    "as",
    "on",
    "join",
    "inner",
    "left",
    "right",
    "full",
    "outer",
    "cross",
    "lateral",
    "union",
    "all",
    "and",
    "or",
    "not",
    "exists",
    "in",
    "is",
    "null",
    "true",
    "false",
    "into",
    "like",
    "between",
    "case",
    "when",
    "then",
    "else",
    "end",
    "asc",
    "desc",
    "limit",
    "with",
    "recursive",
}

_MULTI = ("<>", "!=", "<=", ">=", "||")
_SINGLE = set("(),.*=<>+-/%;")


@dataclass(frozen=True)
class Token:
    type: str
    value: str
    line: int
    column: int

    def is_symbol(self, *symbols):
        return self.type == SYMBOL and self.value in symbols

    def is_keyword(self, *keywords):
        return self.type == KEYWORD and self.value in keywords


def tokenize(text):
    """Tokenize SQL text; keywords are case-insensitive, identifiers keep case.

    Double-quoted identifiers are supported (needed for the paper's reified
    operator relations like ``"-"`` and ``">"``, Fig. 15b).
    """
    tokens = []
    line, column, i, size = 1, 1, 0, len(text)

    def advance(count):
        nonlocal i, line, column
        for _ in range(count):
            if i < size and text[i] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            i += 1

    while i < size:
        ch = text[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if text[i : i + 2] == "--":
            while i < size and text[i] != "\n":
                advance(1)
            continue
        start_line, start_column = line, column
        two = text[i : i + 2]
        if two in _MULTI:
            tokens.append(Token(SYMBOL, two, start_line, start_column))
            advance(2)
            continue
        if ch == "'":
            j = i + 1
            buf = []
            while j < size and text[j] != "'":
                buf.append(text[j])
                j += 1
            if j >= size:
                raise ParseError("unterminated string literal", start_line, start_column)
            tokens.append(Token(STRING, "".join(buf), start_line, start_column))
            advance(j + 1 - i)
            continue
        if ch == '"':
            j = i + 1
            buf = []
            while j < size and text[j] != '"':
                buf.append(text[j])
                j += 1
            if j >= size:
                raise ParseError("unterminated quoted identifier", start_line, start_column)
            tokens.append(Token(IDENT, "".join(buf), start_line, start_column))
            advance(j + 1 - i)
            continue
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < size and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    if j + 1 >= size or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(NUMBER, text[i:j], start_line, start_column))
            advance(j - i)
            continue
        if ch.isalpha() or ch == "_" or ch == "$":
            j = i
            while j < size and (text[j].isalnum() or text[j] in "_$"):
                j += 1
            word = text[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(KEYWORD, lowered, start_line, start_column))
            else:
                tokens.append(Token(IDENT, word, start_line, start_column))
            advance(j - i)
            continue
        if ch in _SINGLE:
            tokens.append(Token(SYMBOL, ch, start_line, start_column))
            advance(1)
            continue
        raise ParseError(f"unexpected character {ch!r} in SQL", start_line, start_column)

    tokens.append(Token(EOF, "", line, column))
    return tokens
