"""SQL frontend: parse the paper's SQL subset and embed it into ARC."""

from .parser import parse_sql
from .translate import to_arc, translate, SqlTranslator
from . import ast

__all__ = ["parse_sql", "to_arc", "translate", "SqlTranslator", "ast"]
