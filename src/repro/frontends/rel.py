"""Rel mini-frontend: ``def`` aggregate definitions embedded into ARC.

Rel (Section 2.5, eq. (11)) writes the paper's multiple-aggregate query as::

    def Q(d, av) :
        av = average[(e, s) : R(e, d) and S(e, s)] and
        sum[(e, s) : R(e, d) and S(e, s)] > 100

The paper shows (eq. (12), Fig. 8) that Rel follows the **FIO** pattern for
aggregation (aggregates return their grouping keys), but inherits the
one-scope-per-aggregate legacy: each aggregate term becomes its own
collection, grouped on the head variables it mentions, and the main query
joins these collections on their shared keys.

This frontend parses the ``def`` syntax and produces exactly that
pattern-preserving translation.
"""

from __future__ import annotations

from itertools import count as _counter

from ..core import nodes as n
from ..core.lexer import EOF, IDENT, KEYWORD, NUMBER, STRING, literal_value, tokenize
from ..errors import ParseError

AGGREGATE_WORDS = {
    "sum": "sum",
    "count": "count",
    "min": "min",
    "max": "max",
    "avg": "avg",
    "average": "avg",
    "mean": "avg",
}


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


class RelDef:
    def __init__(self, name, params, literals):
        self.name = name
        self.params = params  # head variable names
        self.literals = literals  # list of RelAgg | RelCompare | RelAtom


class RelAtom:
    def __init__(self, predicate, args):
        self.predicate = predicate
        self.args = args  # variable names or constants


class RelAgg:
    """``target = func[(v1, ..., vk) : body]`` or a bare aggregate term used
    in a comparison (target None, op/value set)."""

    def __init__(self, func, tuple_vars, body, target=None, op=None, value=None):
        self.func = func
        self.tuple_vars = tuple_vars
        self.body = body  # list of RelAtom
        self.target = target
        self.op = op
        self.value = value


def parse_rel(text):
    return _RelParser(tokenize(text)).parse_defs()


class _RelParser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0

    def _peek(self, offset=0):
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _next(self):
        token = self._peek()
        if token.type != EOF:
            self._pos += 1
        return token

    def _expect_symbol(self, symbol):
        token = self._next()
        if not token.is_symbol(symbol):
            raise ParseError(
                f"expected {symbol!r}, got {token.value!r}", token.line, token.column
            )

    def _expect_ident(self):
        token = self._next()
        if token.type != IDENT:
            raise ParseError(
                f"expected identifier, got {token.value!r}", token.line, token.column
            )
        return token.value

    def parse_defs(self):
        defs = []
        while self._peek().type != EOF:
            defs.append(self._parse_def())
        return defs

    def _parse_def(self):
        keyword = self._next()
        if not (keyword.type == IDENT and keyword.value == "def"):
            raise ParseError(
                f"expected 'def', got {keyword.value!r}", keyword.line, keyword.column
            )
        name = self._expect_ident()
        self._expect_symbol("(")
        params = [self._expect_ident()]
        while self._peek().is_symbol(","):
            self._next()
            params.append(self._expect_ident())
        self._expect_symbol(")")
        self._expect_symbol(":")
        literals = [self._parse_literal()]
        while self._peek().is_keyword("and"):
            self._next()
            literals.append(self._parse_literal())
        return RelDef(name, params, literals)

    def _parse_literal(self):
        token = self._peek()
        if token.type == IDENT and token.value in AGGREGATE_WORDS and self._peek(1).is_symbol("["):
            agg = self._parse_agg_term()
            op_token = self._next()
            if not op_token.is_symbol("=", "<>", "!=", "<", "<=", ">", ">="):
                raise ParseError(
                    f"expected comparison after aggregate, got {op_token.value!r}",
                    op_token.line,
                    op_token.column,
                )
            value = self._parse_value()
            agg.op = op_token.value
            agg.value = value
            return agg
        if token.type == IDENT and self._peek(1).is_symbol("="):
            target = self._expect_ident()
            self._expect_symbol("=")
            agg = self._parse_agg_term()
            agg.target = target
            return agg
        if token.type == IDENT and self._peek(1).is_symbol("("):
            return self._parse_atom()
        raise ParseError(
            f"expected Rel literal, got {token.value!r}", token.line, token.column
        )

    def _parse_agg_term(self):
        func_token = self._next()
        func = AGGREGATE_WORDS[func_token.value]
        self._expect_symbol("[")
        self._expect_symbol("(")
        tuple_vars = [self._expect_ident()]
        while self._peek().is_symbol(","):
            self._next()
            tuple_vars.append(self._expect_ident())
        self._expect_symbol(")")
        self._expect_symbol(":")
        body = [self._parse_atom()]
        while self._peek().is_keyword("and"):
            self._next()
            body.append(self._parse_atom())
        self._expect_symbol("]")
        return RelAgg(func, tuple_vars, body)

    def _parse_atom(self):
        predicate = self._expect_ident()
        self._expect_symbol("(")
        args = [self._parse_arg()]
        while self._peek().is_symbol(","):
            self._next()
            args.append(self._parse_arg())
        self._expect_symbol(")")
        return RelAtom(predicate, args)

    def _parse_arg(self):
        token = self._next()
        if token.type == IDENT:
            return token.value
        if token.type in (NUMBER, STRING):
            return ("const", literal_value(token))
        raise ParseError(
            f"expected atom argument, got {token.value!r}", token.line, token.column
        )

    def _parse_value(self):
        token = self._next()
        if token.type in (NUMBER, STRING):
            return n.Const(literal_value(token))
        if token.type == IDENT:
            return ("var", token.value)
        raise ParseError(
            f"expected comparison value, got {token.value!r}", token.line, token.column
        )


# ---------------------------------------------------------------------------
# Translation
# ---------------------------------------------------------------------------


def to_arc(text, *, database=None, head_name=None):
    """Translate Rel ``def`` definitions into an ARC collection.

    The pattern produced is the paper's eq. (12): one grouped collection per
    aggregate term (keys = the head variables its body mentions, value = the
    aggregate over the last tuple component), joined on shared keys in the
    main scope.
    """
    defs = parse_rel(text)
    if len(defs) != 1:
        raise ParseError("exactly one Rel def is supported per translation")
    return _translate_def(defs[0], database, head_name)


def _translate_def(definition, database, head_name):
    head = head_name or definition.name
    ids = _counter(1)
    bindings = []
    conjuncts = []
    key_sources = {}  # head param -> Attr producing it

    plain_atoms = [l for l in definition.literals if isinstance(l, RelAtom)]
    aggregates = [l for l in definition.literals if isinstance(l, RelAgg)]

    var_map = {}
    for atom in plain_atoms:
        schema = _schema(atom.predicate, len(atom.args), database)
        var = f"{atom.predicate.lower()[:1]}{next(ids)}"
        bindings.append(n.Binding(var, n.RelationRef(atom.predicate)))
        for attr, arg in zip(schema, atom.args):
            if isinstance(arg, tuple):  # constant
                conjuncts.append(n.Comparison(n.Attr(var, attr), "=", n.Const(arg[1])))
            elif arg in var_map:
                conjuncts.append(n.Comparison(n.Attr(var, attr), "=", var_map[arg]))
            else:
                var_map[arg] = n.Attr(var, attr)
                if arg in definition.params:
                    key_sources[arg] = n.Attr(var, attr)

    for aggregate in aggregates:
        collection, keys, value_attr = _translate_aggregate(
            aggregate, definition, database, ids
        )
        var = f"x{next(ids)}"
        bindings.append(n.Binding(var, collection))
        for key in keys:
            if key in key_sources:
                conjuncts.append(
                    n.Comparison(n.Attr(var, key), "=", key_sources[key])
                )
            else:
                key_sources[key] = n.Attr(var, key)
        if aggregate.target is not None:
            if aggregate.target in definition.params:
                key_sources[aggregate.target] = n.Attr(var, value_attr)
            else:
                var_map[aggregate.target] = n.Attr(var, value_attr)
        else:
            value = aggregate.value
            if isinstance(value, tuple):
                value = key_sources.get(value[1]) or var_map.get(value[1])
                if value is None:
                    raise ParseError(
                        f"comparison variable {aggregate.value[1]!r} is unbound"
                    )
            conjuncts.append(
                n.Comparison(n.Attr(var, value_attr), aggregate.op, value)
            )

    assignments = []
    for param in definition.params:
        source = key_sources.get(param) or var_map.get(param)
        if source is None:
            raise ParseError(f"head variable {param!r} is never bound")
        assignments.append(n.Comparison(n.Attr(head, param), "=", source))

    quant = n.Quantifier(bindings, n.make_and(conjuncts + assignments))
    return n.Collection(n.Head(head, tuple(definition.params)), quant)


def _translate_aggregate(aggregate, definition, database, ids):
    """One Rel aggregate term -> a grouped collection (FIO with keys)."""
    inner_name = f"X{next(ids)}"
    value_attr = "val"
    inner_map = {}
    inner_bindings = []
    inner_conjuncts = []
    keys = []  # head params mentioned in the aggregate body (grouping keys)
    for atom in aggregate.body:
        schema = _schema(atom.predicate, len(atom.args), database)
        var = f"{atom.predicate.lower()[:1]}{next(ids)}"
        inner_bindings.append(n.Binding(var, n.RelationRef(atom.predicate)))
        for attr, arg in zip(schema, atom.args):
            if isinstance(arg, tuple):
                inner_conjuncts.append(
                    n.Comparison(n.Attr(var, attr), "=", n.Const(arg[1]))
                )
            elif arg in inner_map:
                inner_conjuncts.append(
                    n.Comparison(n.Attr(var, attr), "=", inner_map[arg])
                )
            else:
                inner_map[arg] = n.Attr(var, attr)
                if arg in definition.params and arg not in keys:
                    keys.append(arg)

    value_var = aggregate.tuple_vars[-1]
    if value_var not in inner_map:
        raise ParseError(
            f"aggregate tuple variable {value_var!r} is not bound in the body"
        )
    group_keys = tuple(inner_map[key] for key in keys)
    head_attrs = tuple(keys) + (value_attr,)
    assignments = [
        n.Comparison(n.Attr(inner_name, key), "=", inner_map[key]) for key in keys
    ]
    if aggregate.func == "count":
        agg_expr = n.AggCall("count", inner_map[value_var])
    else:
        agg_expr = n.AggCall(aggregate.func, inner_map[value_var])
    assignments.append(n.Comparison(n.Attr(inner_name, value_attr), "=", agg_expr))
    quant = n.Quantifier(
        inner_bindings,
        n.make_and(inner_conjuncts + assignments),
        n.Grouping(group_keys),
    )
    return n.Collection(n.Head(inner_name, head_attrs), quant), keys, value_attr


def _schema(predicate, arity, database):
    if database is not None and predicate in database:
        schema = tuple(database[predicate].schema)
        if len(schema) != arity:
            raise ParseError(
                f"predicate {predicate!r} used with arity {arity}, schema is {schema}"
            )
        return schema
    return tuple(f"a{i}" for i in range(1, arity + 1))
