"""Textbook TRC frontend: the two normalization steps of Section 2.1.

A widely used textbook [Elmasri/Navathe] accepts TRC queries like::

    {r.A | r ∈ R ∧ ∃s[r.B = s.B ∧ s.C = 0 ∧ s ∈ S]}

ARC makes two changes (the paper's Section 2.1):

1. **Clarified scopes** — whenever a variable is quantified, it is also
   bound to a relation: membership conjuncts (``s ∈ S``) move into the
   quantifier's binding list, and free top-level range variables
   (``r ∈ R``) are bound by an implicit outermost quantifier.
2. **Strict heads** — body variables never appear in the head; head
   expressions become explicit *assignment predicates*
   (``{r.A | ...}`` becomes ``{Q(A) | ∃...[Q.A = r.A ∧ ...]}``).

This module parses the loose textbook syntax and performs both steps,
producing a strict ARC collection.
"""

from __future__ import annotations

from ..core import nodes as n
from ..core.lexer import EOF, IDENT, KEYWORD, NUMBER, STRING, literal_value, tokenize
from ..errors import ParseError


def to_arc(text, *, head_name="Q"):
    """Parse textbook TRC and normalize it into a strict ARC collection."""
    loose = parse_trc(text)
    return normalize(loose, head_name=head_name)


# ---------------------------------------------------------------------------
# Loose AST (membership predicates and unbound quantifiers are allowed)
# ---------------------------------------------------------------------------


class LooseQuery:
    def __init__(self, head_exprs, body):
        self.head_exprs = head_exprs  # list of n.Expr (typically Attr)
        self.body = body  # loose formula


class Membership:
    """``r ∈ R`` appearing as an ordinary predicate."""

    def __init__(self, var, relation):
        self.var = var
        self.relation = relation


class LooseExists:
    """``∃s[...]`` or ``∃s ∈ S[...]`` (bindings may lack sources)."""

    def __init__(self, items, body):
        self.items = items  # list of (var, relation-or-None)
        self.body = body


def parse_trc(text):
    return _TrcParser(tokenize(text)).parse_query()


class _TrcParser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0

    def _peek(self, offset=0):
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _next(self):
        token = self._peek()
        if token.type != EOF:
            self._pos += 1
        return token

    def _expect_symbol(self, symbol):
        token = self._next()
        if not token.is_symbol(symbol):
            raise ParseError(
                f"expected {symbol!r}, got {token.value!r}", token.line, token.column
            )

    def parse_query(self):
        self._expect_symbol("{")
        head_exprs = [self._parse_expr()]
        # Tuple heads: {(r.A, s.B) | ...} are parenthesized by _parse_expr
        # only for single expressions; accept comma lists directly.
        while self._peek().is_symbol(","):
            self._next()
            head_exprs.append(self._parse_expr())
        self._expect_symbol("|")
        body = self._parse_or()
        self._expect_symbol("}")
        token = self._peek()
        if token.type != EOF:
            raise ParseError(
                f"unexpected trailing input {token.value!r}", token.line, token.column
            )
        return LooseQuery(head_exprs, body)

    def _parse_or(self):
        parts = [self._parse_and()]
        while self._peek().is_keyword("or"):
            self._next()
            parts.append(self._parse_and())
        if len(parts) == 1:
            return parts[0]
        return n.Or(parts)

    def _parse_and(self):
        parts = [self._parse_unary()]
        while self._peek().is_keyword("and"):
            self._next()
            parts.append(self._parse_unary())
        if len(parts) == 1:
            return parts[0]
        return n.And(parts)

    def _parse_unary(self):
        token = self._peek()
        if token.is_keyword("not"):
            self._next()
            return n.Not(self._parse_unary())
        if token.is_keyword("exists"):
            return self._parse_exists()
        if token.is_symbol("("):
            saved = self._pos
            try:
                self._next()
                inner = self._parse_or()
                self._expect_symbol(")")
                return inner
            except ParseError:
                self._pos = saved
        # Membership or comparison.
        if (
            token.type == IDENT
            and self._peek(1).is_keyword("in")
        ):
            var = self._next().value
            self._next()
            relation_token = self._next()
            if relation_token.type != IDENT:
                raise ParseError(
                    f"expected relation name, got {relation_token.value!r}",
                    relation_token.line,
                    relation_token.column,
                )
            return Membership(var, relation_token.value)
        return self._parse_comparison()

    def _parse_exists(self):
        self._next()  # exists
        items = []
        while True:
            token = self._next()
            if token.type != IDENT:
                raise ParseError(
                    f"expected variable, got {token.value!r}", token.line, token.column
                )
            var = token.value
            relation = None
            if self._peek().is_keyword("in"):
                self._next()
                rel_token = self._next()
                if rel_token.type != IDENT:
                    raise ParseError(
                        f"expected relation name, got {rel_token.value!r}",
                        rel_token.line,
                        rel_token.column,
                    )
                relation = rel_token.value
            items.append((var, relation))
            if self._peek().is_symbol(","):
                self._next()
                continue
            break
        self._expect_symbol("[")
        body = self._parse_or()
        self._expect_symbol("]")
        return LooseExists(items, body)

    def _parse_comparison(self):
        left = self._parse_expr()
        token = self._next()
        if token.is_keyword("is"):
            negated = False
            if self._peek().is_keyword("not"):
                self._next()
                negated = True
            null_token = self._next()
            if not null_token.is_keyword("null"):
                raise ParseError("expected NULL after IS")
            return n.IsNull(left, negated)
        if not token.is_symbol("=", "<>", "!=", "<", "<=", ">", ">="):
            raise ParseError(
                f"expected comparison operator, got {token.value!r}",
                token.line,
                token.column,
            )
        right = self._parse_expr()
        return n.Comparison(left, token.value, right)

    def _parse_expr(self):
        left = self._parse_term()
        while self._peek().is_symbol("+", "-"):
            op = self._next().value
            left = n.Arith(op, left, self._parse_term())
        return left

    def _parse_term(self):
        left = self._parse_factor()
        while self._peek().is_symbol("*", "/", "%"):
            op = self._next().value
            left = n.Arith(op, left, self._parse_factor())
        return left

    def _parse_factor(self):
        token = self._peek()
        if token.is_symbol("("):
            self._next()
            inner = self._parse_expr()
            self._expect_symbol(")")
            return inner
        if token.type in (NUMBER, STRING) or token.is_keyword("true", "false", "null"):
            return n.Const(literal_value(self._next()))
        if token.is_symbol("-"):
            self._next()
            inner = self._parse_factor()
            if isinstance(inner, n.Const) and isinstance(inner.value, (int, float)):
                return n.Const(-inner.value)
            return n.Arith("-", n.Const(0), inner)
        if token.type == IDENT:
            var = self._next().value
            self._expect_symbol(".")
            attr_token = self._next()
            if attr_token.type not in (IDENT, KEYWORD, NUMBER):
                raise ParseError(
                    f"expected attribute, got {attr_token.value!r}",
                    attr_token.line,
                    attr_token.column,
                )
            return n.Attr(var, attr_token.value)
        raise ParseError(
            f"expected expression, got {token.value!r}", token.line, token.column
        )


# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------


def normalize(loose, *, head_name="Q"):
    """Apply the paper's two Section-2.1 steps to a loose TRC query."""
    # Step 1a: collect top-level membership conjuncts — they become the
    # outermost bindings.
    conjuncts = _loose_conjuncts(loose.body)
    top_memberships = [c for c in conjuncts if isinstance(c, Membership)]
    rest = [c for c in conjuncts if not isinstance(c, Membership)]
    bindings = [n.Binding(m.var, n.RelationRef(m.relation)) for m in top_memberships]

    # Step 1b: recursively clean quantifiers in the remaining formula.
    cleaned = [_clean_formula(c) for c in rest]

    # Step 2: strict heads — name the output attributes and add assignment
    # predicates.
    attrs = []
    assignments = []
    for index, expr in enumerate(loose.head_exprs, start=1):
        if isinstance(expr, n.Attr):
            attr = expr.attr
        else:
            attr = f"col{index}"
        if attr in attrs:
            attr = f"{attr}_{index}"
        attrs.append(attr)
        assignments.append(n.Comparison(n.Attr(head_name, attr), "=", expr))

    body = n.make_and(assignments + cleaned)
    if bindings:
        body = n.Quantifier(bindings, body)
    return n.Collection(n.Head(head_name, tuple(attrs)), body)


def _loose_conjuncts(formula):
    if isinstance(formula, n.And):
        result = []
        for child in formula.children_list:
            result.extend(_loose_conjuncts(child))
        return result
    return [formula]


def _clean_formula(formula):
    """Move membership predicates into their quantifier's binding list."""
    if isinstance(formula, LooseExists):
        conjuncts = _loose_conjuncts(formula.body)
        memberships = {
            c.var: c.relation for c in conjuncts if isinstance(c, Membership)
        }
        rest = [
            _clean_formula(c) for c in conjuncts if not isinstance(c, Membership)
        ]
        bindings = []
        for var, relation in formula.items:
            if relation is None:
                relation = memberships.pop(var, None)
                if relation is None:
                    raise ParseError(
                        f"quantified variable {var!r} has no membership "
                        "predicate binding it to a relation (unsafe TRC)"
                    )
            bindings.append(n.Binding(var, n.RelationRef(relation)))
        for var, relation in memberships.items():
            # Memberships for variables quantified here were consumed above;
            # leftovers bind variables not listed in the quantifier - treat
            # them as additional bindings of the same quantifier.
            bindings.append(n.Binding(var, n.RelationRef(relation)))
        return n.Quantifier(bindings, n.make_and(rest))
    if isinstance(formula, n.And):
        return n.make_and([_clean_formula(c) for c in formula.children_list])
    if isinstance(formula, n.Or):
        return n.make_or([_clean_formula(c) for c in formula.children_list])
    if isinstance(formula, n.Not):
        return n.Not(_clean_formula(formula.child))
    if isinstance(formula, Membership):
        raise ParseError(
            f"membership {formula.var} ∈ {formula.relation} appears under a "
            "connective where it cannot be attached to a quantifier"
        )
    return formula
