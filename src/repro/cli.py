"""Command-line interface: the SQL ↔ ARC translator of the paper's Section 5.

Usage (see ``python -m repro --help``)::

    python -m repro translate --from sql --to alt "select R.A from R ..."
    python -m repro translate --from arc --to sql "{Q(A) | ∃r ∈ R[Q.A = r.A]}"
    python -m repro validate "{Q(A, sm) | ∃r ∈ R[Q.sm = sum(r.B)]}"
    python -m repro eval --db data.csv:R "select R.A from R"
    python -m repro eval --db data.csv:R --backend sqlite --conventions sql ...
    python -m repro eval --db data.csv:R --db-file catalog.db ...  # warm restarts
    python -m repro eval --db data.csv:R --repeat 3 ...  # warm-path timing
    python -m repro serve --db data.csv:R --port 8421    # HTTP service mode
    python -m repro patterns "select R.A from R where not exists (...)"

Input languages: ``arc`` (comprehension syntax), ``alt`` (the box-drawing
ALT text — modalities are losslessly inter-translatable), ``sql``,
``datalog``, ``trc``, ``rel``.  Output modalities: ``arc`` (Unicode),
``ascii``, ``alt``, ``higraph``, ``svg``, ``sql``.

``eval`` and ``serve`` are built on the Session API (:mod:`repro.api`):
``eval`` constructs one Session and a prepared query — ``--repeat N`` runs
it N times, showing the cold-vs-warm split — and ``serve`` keeps the
Session alive across HTTP requests.
"""

from __future__ import annotations

import argparse
import sys
import time

from .api import EvalOptions, Session
from .backends.comprehension import render, render_ascii
from .backends.sql_render import to_sql
from .core import build_higraph, render_alt, render_higraph_ascii, render_svg
from .core.conventions import (
    SET_CONVENTIONS,
    SOUFFLE_CONVENTIONS,
    SQL_CONVENTIONS,
)
from .core.validator import validate
from .data import Database, csvio
from .errors import ArcError, OptionsError
from .frontends import load_query as _load_query

CONVENTIONS = {
    "set": SET_CONVENTIONS,
    "sql": SQL_CONVENTIONS,
    "souffle": SOUFFLE_CONVENTIONS,
}


def _render_output(query, modality, database=None):
    if modality == "arc":
        return render(query)
    if modality == "ascii":
        return render_ascii(query)
    if modality == "alt":
        return render_alt(query, include_links=True)
    if modality == "higraph":
        return render_higraph_ascii(build_higraph(query, database=database))
    if modality == "svg":
        return render_svg(build_higraph(query, database=database))
    if modality == "sql":
        return to_sql(query)
    raise ArcError(f"unknown output modality {modality!r}")


def _load_database(specs):
    """Each spec is ``path.csv:Name``; loads CSVs into a catalog."""
    database = Database()
    for spec in specs or ():
        path, _, name = spec.rpartition(":")
        if not path:
            raise ArcError(f"database spec must be path.csv:Name, got {spec!r}")
        database.add(csvio.read_csv(path, name))
    return database


def _read_text(args):
    if args.query == "-":
        return sys.stdin.read()
    return args.query


def cmd_translate(args):
    database = _load_database(args.db)
    query = _load_query(_read_text(args), args.source, database)
    print(_render_output(query, args.target, database))
    return 0


def cmd_validate(args):
    database = _load_database(args.db) if args.db else None
    query = _load_query(_read_text(args), args.source, database)
    report = validate(query, database=database, allow_abstract=args.allow_abstract)
    for issue in report.issues:
        print(issue)
    if report.ok:
        print("OK")
        return 0
    return 1


def _session_options(args):
    """Build :class:`EvalOptions` from eval/serve flags.

    Validation lives in ``EvalOptions`` itself; only the planner/backend
    contradiction is pre-checked to re-word it in terms of the CLI flags.
    """
    if getattr(args, "no_planner", False) and args.backend is not None:
        raise ArcError(
            "--no-planner and --backend both select an engine; use "
            "--backend reference instead of combining them"
        )
    try:
        return EvalOptions(
            planner=not getattr(args, "no_planner", False),
            decorrelate=not getattr(args, "no_decorrelate", False),
            backend=args.backend,
            db_file=args.db_file,  # implies backend="sqlite" when set
            timeout_ms=args.timeout_ms,
            max_rows=args.max_rows,
        )
    except OptionsError as exc:
        message = str(exc).replace("db_file", "--db-file")
        message = message.replace("timeout_ms", "--timeout-ms")
        message = message.replace("max_rows", "--max-rows")
        raise ArcError(message) from None


def cmd_eval(args):
    database = _load_database(args.db)
    session = Session(
        database, CONVENTIONS[args.conventions], options=_session_options(args)
    )
    tracing = args.explain or args.trace_out
    if tracing:
        # Attach the recording tracer before prepare() so frontend.parse
        # is part of the profile.
        from .obs import Tracer

        session.tracer = Tracer(stats=session.stats)
    prepared = session.prepare(_read_text(args), frontend=args.source)
    repeat = max(1, args.repeat)
    timings = []
    for _ in range(repeat):
        start = time.perf_counter()
        result = prepared.run()
        timings.append(time.perf_counter() - start)
    if hasattr(result, "to_table"):
        print(result.to_table(max_rows=args.display_rows))
    else:
        print(result.name)  # a Truth value
    if repeat > 1:
        # The first run pays parse/plan/probe/load; later runs ride the
        # session's warm state.  Shown so the split is visible from the CLI.
        for i, elapsed in enumerate(timings):
            label = " (cold)" if i == 0 else ""
            print(f"run {i + 1}: {elapsed * 1e3:.2f} ms{label}")
        stats = session.stats
        print(
            "decorrelation: "
            f"laterals_decorrelated={stats.laterals_decorrelated} "
            f"lateral_reevals={stats.lateral_reevals} "
            f"decorr_index_builds={stats.decorr_index_builds} "
            f"band_index_builds={stats.band_index_builds} "
            f"domain_join_compensations={stats.domain_join_compensations} "
            f"tribucket_probes={stats.tribucket_probes}"
        )
    if tracing:
        from .obs import render_span_tree, write_chrome_trace

        spans, events = session.tracer.take()
        if args.explain:
            print("explain:")
            print(render_span_tree(spans, events))
        if args.trace_out:
            write_chrome_trace(args.trace_out, spans, events)
            print(
                f"trace: {len(spans)} spans, {len(events)} events "
                f"written to {args.trace_out} (load in chrome://tracing "
                "or https://ui.perfetto.dev)"
            )
    return 0


def _load_catalogs(specs):
    """Each spec is ``name=path.csv:Rel[,path.csv:Rel...]``; named catalogs."""
    catalogs = {}
    for spec in specs or ():
        name, sep, rest = spec.partition("=")
        if not sep or not name or not rest:
            raise ArcError(
                f"catalog spec must be name=path.csv:Rel[,...], got {spec!r}"
            )
        catalogs[name] = _load_database(rest.split(","))
    return catalogs


def cmd_serve(args):
    from .serve import DEFAULT_QUEUE_DEPTH, DEFAULT_WORKERS

    database = _load_database(args.db)
    session = Session(
        database, CONVENTIONS[args.conventions], options=_session_options(args)
    )
    from .api import serve

    workers = args.workers if args.workers is not None else DEFAULT_WORKERS
    queue_depth = (
        args.queue_depth if args.queue_depth is not None else DEFAULT_QUEUE_DEPTH
    )
    server = serve.make_server(
        session,
        args.host,
        args.port,
        workers=workers,
        queue_depth=queue_depth,
        catalogs=_load_catalogs(args.catalog),
        quiet=args.quiet,
        max_body_bytes=(
            args.max_body_bytes
            if args.max_body_bytes is not None
            else serve.DEFAULT_MAX_BODY_BYTES
        ),
        log_requests=args.log_requests,
        log_json=args.log_json,
        hard_timeout_ms=args.hard_timeout_ms,
        shed_threshold_ms=args.shed_threshold_ms,
        poison_threshold=args.poison_threshold,
        quarantine_ttl_s=args.quarantine_ttl_s,
    )
    # SIGTERM/SIGINT drain queued + in-flight requests, then stop
    # accepting — an orchestrator's stop signal never kills a response
    # mid-write and never abandons an admitted request.
    serve.install_sigterm_handler(server)
    print(f"serving on {server.url} (relations: "
          f"{', '.join(sorted(database.names())) or 'none'}; "
          f"backend: {session.options.backend or 'planner'}; "
          f"workers: {workers}; queue: {queue_depth})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
    print("shutdown: drained in-flight requests, socket closed", flush=True)
    return 0


def cmd_eval_corpus(args):
    from .eval.harness import (
        DEFAULT_BACKENDS,
        report_failures,
        run_corpus,
        write_report,
    )
    from .workloads.scenarios import SCENARIOS, SIZES, get_scenario

    if args.list:
        for name, scenario in SCENARIOS.items():
            print(f"{name}: {scenario.description}")
            for query in scenario.queries():
                features = ",".join(sorted(query.features))
                frontends = "/".join(query.frontends)
                print(f"  {query.name:28s} [{features}] ({frontends})")
        return 0
    names = args.scenario or list(SCENARIOS)
    try:
        for name in names:
            get_scenario(name)  # fail fast on typos, before any evaluation
    except LookupError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    backends = tuple(args.backend) if args.backend else DEFAULT_BACKENDS
    report = run_corpus(
        names, size=args.size, seed=args.seed, backends=backends
    )
    summary = report["summary"]
    print(
        f"corpus: {summary['scenarios']} scenarios, "
        f"{summary['queries']} queries, {summary['cells']} cells "
        f"(size={args.size}, seed={args.seed})"
    )
    for name, scenario_report in report["scenarios"].items():
        cells = scenario_report["cells"]
        ok = sum(c["status"] == "ok" for c in cells)
        typed = sum(c["status"] == "typed_error" for c in cells)
        bad = len(cells) - ok - typed
        nl = scenario_report["nl"]
        nl_text = (
            f", nl accuracy {nl['accuracy']} "
            f"({nl['gold_matched']}/{nl['gold_cases']} gold, "
            f"{nl['refused_as_expected']}/{nl['expected_refusals']} refusals)"
            if nl
            else ""
        )
        print(
            f"  {name}: {ok} ok, {typed} typed refusals, {bad} failing"
            f"{nl_text}"
        )
    for backend, entry in summary["coverage"].items():
        print(
            f"  backend {backend}: {entry['native']} native, "
            f"{entry['fallback']} fallback, {entry['errors']} refused"
        )
    if args.json:
        write_report(report, args.json)
        print(f"report written to {args.json}")
    failures = report_failures(report)
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


def cmd_patterns(args):
    from .analysis import detect_patterns, fingerprint, pattern_summary

    database = _load_database(args.db) if args.db else None
    query = _load_query(_read_text(args), args.source, database)
    print("patterns:   ", ", ".join(sorted(detect_patterns(query))) or "(none)")
    print("fingerprint:", fingerprint(query))
    print("shape:      ", fingerprint(query, anonymize_relations=True))
    for key, value in pattern_summary(query).items():
        print(f"  {key}: {value}")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ARC: Abstract Relational Calculus — translator and evaluator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, *, needs_target=False):
        p.add_argument("query", help="query text, or '-' to read stdin")
        p.add_argument(
            "--from",
            dest="source",
            default="arc",
            choices=["arc", "alt", "sql", "datalog", "trc", "rel"],
            help="input language (default: arc)",
        )
        p.add_argument(
            "--db",
            action="append",
            metavar="CSV:NAME",
            help="load a base relation from a CSV file (repeatable)",
        )
        if needs_target:
            p.add_argument(
                "--to",
                dest="target",
                default="arc",
                choices=["arc", "ascii", "alt", "higraph", "svg", "sql"],
                help="output modality (default: arc)",
            )

    def _budget_flags(p):
        p.add_argument(
            "--timeout-ms",
            dest="timeout_ms",
            type=float,
            default=None,
            metavar="MS",
            help="wall-clock deadline per run in milliseconds; exceeding it "
            "raises QueryTimeout instead of hanging (serve: per-request "
            "timeout_ms overrides this default)",
        )
        p.add_argument(
            "--max-rows",
            dest="max_rows",
            type=int,
            default=None,
            metavar="N",
            help="row budget per run (rows produced across all execution "
            "tiers); exceeding it raises BudgetExceeded",
        )

    p_translate = sub.add_parser("translate", help="translate between languages/modalities")
    common(p_translate, needs_target=True)
    p_translate.set_defaults(func=cmd_translate)

    p_validate = sub.add_parser("validate", help="check scoping/grouping/safety rules")
    common(p_validate)
    p_validate.add_argument("--allow-abstract", action="store_true")
    p_validate.set_defaults(func=cmd_validate)

    p_eval = sub.add_parser("eval", help="evaluate against CSV-loaded relations")
    common(p_eval)
    p_eval.add_argument(
        "--conventions",
        default="set",
        choices=sorted(CONVENTIONS),
        help="semantic conventions (default: set)",
    )
    p_eval.add_argument(
        "--display-rows",
        type=int,
        default=50,
        metavar="N",
        help="table rows to print before truncating the display (default: 50)",
    )
    p_eval.add_argument(
        "--no-planner",
        action="store_true",
        help="disable the hash-indexed execution layer (reference strategy)",
    )
    p_eval.add_argument(
        "--no-decorrelate",
        action="store_true",
        help="disable the FOI→FIO lateral decorrelation pass (correlated "
        "scopes re-evaluate per outer row; on the sqlite backend, "
        "decorrelatable laterals fall back to the planner)",
    )
    p_eval.add_argument(
        "--backend",
        default=None,
        choices=["reference", "planner", "sqlite"],
        help="executable backend (default: planner; sqlite offloads the "
        "rendered SQL to a loaded SQLite catalog, falling back to the "
        "planner for constructs it cannot honor)",
    )
    p_eval.add_argument(
        "--db-file",
        default=None,
        metavar="PATH",
        help="persist the SQLite catalog at PATH (implies --backend sqlite); "
        "later runs against the unchanged catalog start warm",
    )
    p_eval.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="run the prepared query N times through one Session and print "
        "per-run timings (run 1 is cold; later runs ride the warm state)",
    )
    p_eval.add_argument(
        "--explain",
        action="store_true",
        help="print the span tree after the run(s): per-phase timings, "
        "plan/strategy decisions, fallback reasons, and the stats "
        "counters each phase moved",
    )
    p_eval.add_argument(
        "--trace-out",
        dest="trace_out",
        default=None,
        metavar="FILE",
        help="write the run's spans as Chrome-trace-viewer JSON to FILE "
        "(open in chrome://tracing or https://ui.perfetto.dev)",
    )
    _budget_flags(p_eval)
    p_eval.set_defaults(func=cmd_eval)

    p_serve = sub.add_parser(
        "serve",
        help="serve queries over HTTP from one warm Session "
        "(POST /query, GET /healthz)",
    )
    p_serve.add_argument(
        "--db",
        action="append",
        metavar="CSV:NAME",
        help="load a base relation from a CSV file (repeatable)",
    )
    p_serve.add_argument(
        "--conventions",
        default="set",
        choices=sorted(CONVENTIONS),
        help="semantic conventions (default: set)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=8421,
        help="TCP port (0 picks an ephemeral port, printed on startup)",
    )
    p_serve.add_argument(
        "--backend",
        default=None,
        choices=["reference", "planner", "sqlite"],
        help="default executable backend for requests that do not name one",
    )
    p_serve.add_argument(
        "--db-file",
        default=None,
        metavar="PATH",
        help="persist the SQLite catalog at PATH (implies --backend sqlite)",
    )
    p_serve.add_argument(
        "--no-decorrelate",
        action="store_true",
        help="disable the FOI→FIO lateral decorrelation pass",
    )
    p_serve.add_argument(
        "--max-body-bytes",
        dest="max_body_bytes",
        type=int,
        default=None,
        metavar="N",
        help="refuse request bodies larger than N bytes with 413 before "
        "reading them (default: 1 MiB)",
    )
    p_serve.add_argument(
        "--quiet",
        action="store_true",
        default=True,
        help=argparse.SUPPRESS,
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker threads, each holding its own warm Session "
        "(default: 4; 1 = strictly serialized execution)",
    )
    p_serve.add_argument(
        "--queue-depth",
        dest="queue_depth",
        type=int,
        default=None,
        metavar="N",
        help="queued requests admitted before answering 429 + Retry-After "
        "(default: 64)",
    )
    p_serve.add_argument(
        "--catalog",
        action="append",
        metavar="NAME=CSV:REL[,CSV:REL...]",
        help="an extra named catalog selectable via the request 'catalog' "
        "field (repeatable)",
    )
    p_serve.add_argument(
        "--log-requests",
        dest="log_requests",
        action="store_true",
        help="log one line per request (method, path, status code, elapsed "
        "time, query id) through the stdlib 'repro.serve' logger",
    )
    p_serve.add_argument(
        "--hard-timeout-ms",
        dest="hard_timeout_ms",
        type=int,
        default=None,
        metavar="MS",
        help="hard wall cap per execution: the watchdog interrupts any "
        "query past this, even deadline-less ones (default: 10x the "
        "request's soft deadline, else 10000)",
    )
    p_serve.add_argument(
        "--shed-threshold-ms",
        dest="shed_threshold_ms",
        type=int,
        default=None,
        metavar="MS",
        help="shed deadline-less requests (429) when the estimated queue "
        "wait exceeds this (default: off; requests with timeout_ms are "
        "always shed when the wait exceeds their budget)",
    )
    p_serve.add_argument(
        "--poison-threshold",
        dest="poison_threshold",
        type=int,
        default=2,
        metavar="N",
        help="worker crashes by one request fingerprint before it is "
        "quarantined and answers 422 (default: 2)",
    )
    p_serve.add_argument(
        "--quarantine-ttl-s",
        dest="quarantine_ttl_s",
        type=float,
        default=300.0,
        metavar="S",
        help="seconds a poisoned fingerprint stays quarantined "
        "(default: 300)",
    )
    p_serve.add_argument(
        "--log-json",
        dest="log_json",
        action="store_true",
        help="structured JSON request logs on the same logger "
        "(implies --log-requests)",
    )
    _budget_flags(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_patterns = sub.add_parser("patterns", help="report the relational pattern")
    common(p_patterns)
    p_patterns.set_defaults(func=cmd_patterns)

    p_corpus = sub.add_parser(
        "eval-corpus",
        help="run the scenario corpus through the differential harness",
        description=(
            "Evaluate every (scenario, query, frontend, backend) cell "
            "through the Session API, compare each answer against the "
            "reference oracle, and report native-vs-fallback coverage plus "
            "nl execution-match accuracy. Exits 1 on any mismatch or "
            "untyped error (typed refusals pass)."
        ),
    )
    p_corpus.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="scenario to run (repeatable; default: all scenarios)",
    )
    p_corpus.add_argument(
        "--size",
        default="small",
        choices=["small", "medium", "large"],
        help="catalog scale factor (default: small)",
    )
    p_corpus.add_argument(
        "--seed", type=int, default=0, help="generator seed (default: 0)"
    )
    p_corpus.add_argument(
        "--backend",
        action="append",
        metavar="NAME",
        help="backend to evaluate (repeatable; default: "
        "reference, planner, sqlite)",
    )
    p_corpus.add_argument(
        "--json",
        metavar="PATH",
        help="write the machine-readable report (SCENARIO_REPORT.json)",
    )
    p_corpus.add_argument(
        "--list",
        action="store_true",
        help="list scenarios, queries, and feature tags, then exit",
    )
    p_corpus.set_defaults(func=cmd_eval_corpus)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ArcError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
