"""Parameter sweeps for the scalability benchmarks (experiment E21).

A vision paper has no performance tables, but a reference implementation
needs a documented performance envelope: how evaluation cost grows with
relation size, join width, nesting depth, and query size, and how the
naive fixpoint scales with graph size.  These generators produce the
swept workloads; ``benchmarks/bench_e21_scalability.py`` runs them.
"""

from __future__ import annotations

from ..core import builder as b
from ..core import nodes as n
from ..data import generators
from ..data.database import Database


def join_chain_query(width, head_name="Q"):
    """An equi-join of *width* relations R0 ⋈ R1 ⋈ ... projected to one column."""
    bindings = [b.bind(f"r{i}", f"R{i}") for i in range(width)]
    conjuncts = [b.eq(b.attr2(head_name, "A"), b.attr2("r0", "A" if width else "A"))]
    db_attrs = []
    for i in range(width):
        left_attr = chr(ord("A") + (i % 26))
        db_attrs.append(left_attr)
    conjuncts = [b.eq(b.attr2(head_name, "out"), n.Attr("r0", db_attrs[0]))]
    for i in range(width - 1):
        shared = chr(ord("A") + ((i + 1) % 26))
        conjuncts.append(b.eq(n.Attr(f"r{i}", shared), n.Attr(f"r{i + 1}", shared)))
    return b.collection(head_name, ["out"], b.exists(bindings, b.conj(*conjuncts)))


def nested_negation_query(depth, head_name="Q"):
    """Alternating ¬∃ nesting of *depth* scopes over a single binary relation.

    Depth 4 with the Likes schema is exactly the unique-set query family
    (Fig. 17); higher depths stress scope handling.
    """
    innermost = b.eq(b.attr2(f"l{depth}", "b"), b.attr2(f"l{depth - 1}", "b"))
    formula = innermost
    for level in range(depth, 1, -1):
        formula = b.neg(
            b.exists(
                [b.bind(f"l{level}", "L")],
                b.conj(
                    b.eq(b.attr2(f"l{level}", "d"), b.attr2(f"l{level - 1}", "d")),
                    formula,
                ),
            )
        )
        innermost = formula
    return b.collection(
        head_name,
        ["d"],
        b.exists(
            [b.bind("l1", "L")],
            b.conj(b.eq(b.attr2(head_name, "d"), b.attr2("l1", "d")), formula),
        ),
    )


def grouped_aggregate_query(head_name="Q"):
    """The FIO grouped sum over R(A, B) used for size sweeps."""
    return b.collection(
        head_name,
        ["A", "sm"],
        b.exists(
            [b.bind("r", "R")],
            b.conj(
                b.eq(b.attr2(head_name, "A"), b.attr2("r", "A")),
                n.Comparison(n.Attr(head_name, "sm"), "=", b.sum_(b.attr2("r", "B"))),
            ),
            grouping=b.grouping(b.attr2("r", "A")),
        ),
    )


def lateral_query(head_name="Q"):
    """The correlated FOI sum (Fig. 13b shape) used for size sweeps."""
    inner = b.collection(
        "X",
        ["sm"],
        b.exists(
            [b.bind("s", "S")],
            b.conj(
                b.lt(b.attr2("s", "A"), b.attr2("r", "A")),
                n.Comparison(n.Attr("X", "sm"), "=", b.sum_(b.attr2("s", "B"))),
            ),
            grouping=b.grouping(),
        ),
    )
    return b.collection(
        head_name,
        ["A", "sm"],
        b.exists(
            [b.bind("r", "R"), n.Binding("x", inner)],
            b.conj(
                b.eq(b.attr2(head_name, "A"), b.attr2("r", "A")),
                b.eq(b.attr2(head_name, "sm"), b.attr2("x", "sm")),
            ),
        ),
    )


def size_sweep_database(n_rows, *, domain=None, seed=0):
    """R(A, B) and S(A, B) with *n_rows* each over a proportional domain."""
    domain = domain or max(4, n_rows // 4)
    db = Database()
    db.add(generators.binary_relation("R", n_rows, domain=domain, seed=seed))
    db.add(generators.binary_relation("S", n_rows, domain=domain, seed=seed + 1))
    return db


def deep_query_text(depth):
    """Comprehension text with *depth* nested lateral collections (parser sweep)."""
    inner = "{X0(v) | ∃s0 ∈ S[X0.v = s0.B]}"
    for level in range(1, depth):
        inner = (
            f"{{X{level}(v) | ∃s{level} ∈ S, w{level} ∈ {inner}"
            f"[X{level}.v = s{level}.B ∧ w{level}.v <= s{level}.B]}}"
        )
    return f"{{Q(v) | ∃r ∈ R, w ∈ {inner}[Q.v = w.v]}}"


def wide_query_text(n_predicates):
    """Comprehension text with *n_predicates* conjuncts (parser sweep)."""
    predicates = " ∧ ".join(
        [f"Q.A = r.A"] + [f"r.B <> {i}" for i in range(n_predicates)]
    )
    return f"{{Q(A) | ∃r ∈ R[{predicates}]}}"
