"""Parameter sweeps for the scalability benchmarks (experiment E21).

A vision paper has no performance tables, but a reference implementation
needs a documented performance envelope: how evaluation cost grows with
relation size, join width, nesting depth, and query size, and how the
naive fixpoint scales with graph size.  These generators produce the
swept workloads; ``benchmarks/bench_e21_scalability.py`` runs them.
"""

from __future__ import annotations

import random

from ..core import builder as b
from ..core import nodes as n
from ..data import generators
from ..data.database import Database
from ..data.values import NULL


def join_chain_query(width, head_name="Q"):
    """An equi-join of *width* relations R0 ⋈ R1 ⋈ ... projected to one column."""
    bindings = [b.bind(f"r{i}", f"R{i}") for i in range(width)]
    conjuncts = [b.eq(b.attr2(head_name, "A"), b.attr2("r0", "A" if width else "A"))]
    db_attrs = []
    for i in range(width):
        left_attr = chr(ord("A") + (i % 26))
        db_attrs.append(left_attr)
    conjuncts = [b.eq(b.attr2(head_name, "out"), n.Attr("r0", db_attrs[0]))]
    for i in range(width - 1):
        shared = chr(ord("A") + ((i + 1) % 26))
        conjuncts.append(b.eq(n.Attr(f"r{i}", shared), n.Attr(f"r{i + 1}", shared)))
    return b.collection(head_name, ["out"], b.exists(bindings, b.conj(*conjuncts)))


def nested_negation_query(depth, head_name="Q"):
    """Alternating ¬∃ nesting of *depth* scopes over a single binary relation.

    Depth 4 with the Likes schema is exactly the unique-set query family
    (Fig. 17); higher depths stress scope handling.
    """
    innermost = b.eq(b.attr2(f"l{depth}", "b"), b.attr2(f"l{depth - 1}", "b"))
    formula = innermost
    for level in range(depth, 1, -1):
        formula = b.neg(
            b.exists(
                [b.bind(f"l{level}", "L")],
                b.conj(
                    b.eq(b.attr2(f"l{level}", "d"), b.attr2(f"l{level - 1}", "d")),
                    formula,
                ),
            )
        )
        innermost = formula
    return b.collection(
        head_name,
        ["d"],
        b.exists(
            [b.bind("l1", "L")],
            b.conj(b.eq(b.attr2(head_name, "d"), b.attr2("l1", "d")), formula),
        ),
    )


def grouped_aggregate_query(head_name="Q"):
    """The FIO grouped sum over R(A, B) used for size sweeps."""
    return b.collection(
        head_name,
        ["A", "sm"],
        b.exists(
            [b.bind("r", "R")],
            b.conj(
                b.eq(b.attr2(head_name, "A"), b.attr2("r", "A")),
                n.Comparison(n.Attr(head_name, "sm"), "=", b.sum_(b.attr2("r", "B"))),
            ),
            grouping=b.grouping(b.attr2("r", "A")),
        ),
    )


def lateral_query(head_name="Q"):
    """The correlated FOI sum (Fig. 13b shape) used for size sweeps."""
    inner = b.collection(
        "X",
        ["sm"],
        b.exists(
            [b.bind("s", "S")],
            b.conj(
                b.lt(b.attr2("s", "A"), b.attr2("r", "A")),
                n.Comparison(n.Attr("X", "sm"), "=", b.sum_(b.attr2("s", "B"))),
            ),
            grouping=b.grouping(),
        ),
    )
    return b.collection(
        head_name,
        ["A", "sm"],
        b.exists(
            [b.bind("r", "R"), n.Binding("x", inner)],
            b.conj(
                b.eq(b.attr2(head_name, "A"), b.attr2("r", "A")),
                b.eq(b.attr2(head_name, "sm"), b.attr2("x", "sm")),
            ),
        ),
    )


def correlated_aggregate_query(*, arity=1, agg="sum", grouped=False, head_name="Q"):
    """The equality-correlated FOI family the decorrelation pass targets.

    ``{Q(k, v[, g]) | ∃r ∈ R, x ∈ {X(v[, g]) | ∃s ∈ S, γ ∅|s.G
    [s.K0 = r.K0 ∧ … ∧ X.v = agg(s.B)]}[Q.k = r.K0 ∧ Q.v = x.v]}``

    *arity* picks how many key columns the correlation equates; *grouped*
    switches the inner scope from γ∅ (one row per outer row, empty groups
    included — the count-bug-sensitive shape) to γ s.G (zero-or-more rows
    per outer row).
    """
    key_attrs = [f"K{i}" for i in range(arity)]
    inner_conjuncts = [
        b.eq(b.attr2("s", key), b.attr2("r", key)) for key in key_attrs
    ]
    inner_conjuncts.append(
        n.Comparison(n.Attr("X", "v"), "=", b.agg(agg, b.attr2("s", "B")))
    )
    inner_attrs = ["v"]
    if grouped:
        inner_conjuncts.append(b.eq(b.attr2("X", "g"), b.attr2("s", "G")))
        inner_attrs.append("g")
        inner_grouping = b.grouping(b.attr2("s", "G"))
    else:
        inner_grouping = b.grouping()
    inner = b.collection(
        "X",
        inner_attrs,
        b.exists([b.bind("s", "S")], b.conj(*inner_conjuncts), grouping=inner_grouping),
    )
    outer_conjuncts = [
        b.eq(b.attr2(head_name, "k"), b.attr2("r", key_attrs[0])),
        b.eq(b.attr2(head_name, "v"), b.attr2("x", "v")),
    ]
    head_attrs = ["k", "v"]
    if grouped:
        outer_conjuncts.append(b.eq(b.attr2(head_name, "g"), b.attr2("x", "g")))
        head_attrs.append("g")
    return b.collection(
        head_name,
        head_attrs,
        b.exists(
            [b.bind("r", "R"), n.Binding("x", inner)], b.conj(*outer_conjuncts)
        ),
    )


def correlated_join_aggregate_query(head_name="Q"):
    """The eq10-shaped FOI: the correlated inner scope *joins* S ⋈ T before
    aggregating.  Per-row re-evaluation repeats the join for every outer
    row (quadratic in practice); decorrelation runs it once — this is the
    E25 sweep's headline case.
    """
    inner = b.collection(
        "X",
        ["v"],
        b.exists(
            [b.bind("s", "S"), b.bind("t", "T")],
            b.conj(
                b.eq(b.attr2("s", "K0"), b.attr2("r", "K0")),
                b.eq(b.attr2("s", "G"), b.attr2("t", "G")),
                n.Comparison(n.Attr("X", "v"), "=", b.sum_(b.attr2("t", "B"))),
            ),
            grouping=b.grouping(),
        ),
    )
    return b.collection(
        head_name,
        ["k", "v"],
        b.exists(
            [b.bind("r", "R"), n.Binding("x", inner)],
            b.conj(
                b.eq(b.attr2(head_name, "k"), b.attr2("r", "K0")),
                b.eq(b.attr2(head_name, "v"), b.attr2("x", "v")),
            ),
        ),
    )


def theta_aggregate_query(*, op="<", agg="sum", eq_arity=0, head_name="Q"):
    """The eq15-shaped θ-correlated FOI family the band indexes target.

    ``{Q(k, v) | ∃r ∈ R, x ∈ {X(v) | ∃s ∈ S, γ ∅
    [(s.K0 = r.K0 ∧ …)? ∧ s.A op r.A ∧ X.v = agg(s.B)]}
    [Q.k = r.misc ∧ Q.v = x.v]}``

    *op* is the correlation's order predicate; *eq_arity* adds equality
    keys alongside it (bucketed band indexes).  ``Q.k = r.misc`` keys the
    output per outer row, so every probe result is observable.
    """
    key_attrs = [f"K{i}" for i in range(eq_arity)]
    inner_conjuncts = [
        b.eq(b.attr2("s", key), b.attr2("r", key)) for key in key_attrs
    ]
    inner_conjuncts.append(
        n.Comparison(n.Attr("s", "A"), op, n.Attr("r", "A"))
    )
    inner_conjuncts.append(
        n.Comparison(n.Attr("X", "v"), "=", b.agg(agg, b.attr2("s", "B")))
    )
    inner = b.collection(
        "X",
        ["v"],
        b.exists([b.bind("s", "S")], b.conj(*inner_conjuncts), grouping=b.grouping()),
    )
    return b.collection(
        head_name,
        ["k", "v"],
        b.exists(
            [b.bind("r", "R"), n.Binding("x", inner)],
            b.conj(
                b.eq(b.attr2(head_name, "k"), b.attr2("r", "misc")),
                b.eq(b.attr2(head_name, "v"), b.attr2("x", "v")),
            ),
        ),
    )


def theta_rows_query(*, op="<", head_name="Q"):
    """The eq2-shaped non-grouped θ-correlated lateral (sorted-slice probes).

    ``{Q(k, B) | ∃r ∈ R, z ∈ {Z(B) | ∃s ∈ S[Z.B = s.B ∧ s.A op r.A]}
    [Q.k = r.misc ∧ Q.B = z.B]}``
    """
    inner = b.collection(
        "Z",
        ["B"],
        b.exists(
            [b.bind("s", "S")],
            b.conj(
                b.eq(b.attr2("Z", "B"), b.attr2("s", "B")),
                n.Comparison(n.Attr("s", "A"), op, n.Attr("r", "A")),
            ),
        ),
    )
    return b.collection(
        head_name,
        ["k", "B"],
        b.exists(
            [b.bind("r", "R"), n.Binding("z", inner)],
            b.conj(
                b.eq(b.attr2(head_name, "k"), b.attr2("r", "misc")),
                b.eq(b.attr2(head_name, "B"), b.attr2("z", "B")),
            ),
        ),
    )


def theta_join_aggregate_query(*, op="<", head_name="Q"):
    """The θ analogue of the eq10 join inner: S ⋈ T re-joined per outer
    row under FOI, joined **once** under the band index — the honest θ
    cost model and the E27 sweep's headline case.
    """
    inner = b.collection(
        "X",
        ["v"],
        b.exists(
            [b.bind("s", "S"), b.bind("t", "T")],
            b.conj(
                b.eq(b.attr2("s", "G"), b.attr2("t", "G")),
                n.Comparison(n.Attr("s", "A"), op, n.Attr("r", "A")),
                n.Comparison(n.Attr("X", "v"), "=", b.sum_(b.attr2("t", "B"))),
            ),
            grouping=b.grouping(),
        ),
    )
    return b.collection(
        head_name,
        ["k", "v"],
        b.exists(
            [b.bind("r", "R"), n.Binding("x", inner)],
            b.conj(
                b.eq(b.attr2(head_name, "k"), b.attr2("r", "misc")),
                b.eq(b.attr2(head_name, "v"), b.attr2("x", "v")),
            ),
        ),
    )


def theta_sweep_database(
    n_outer,
    n_inner,
    *,
    eq_arity=0,
    domain=6,
    band_domain=None,
    seed=0,
    null_rate=0.0,
    null_band_rate=0.0,
    with_join=False,
):
    """R(K.., A, misc) and S(K.., A, B) (+ T(G, B)) for the θ family.

    *band_domain* spreads the order-correlated column; *null_rate* plants
    NULLs in the equality-key columns (the tri-bucket case) and
    *null_band_rate* in the order-correlated column.  ``with_join`` adds
    the T relation for :func:`theta_join_aggregate_query` (S gains a G
    column).
    """
    rng = random.Random(seed)
    band_domain = band_domain or max(8, n_inner // 2)
    key_attrs = [f"K{i}" for i in range(eq_arity)]

    def key_value():
        if null_rate and rng.random() < null_rate:
            return NULL
        return rng.randrange(domain)

    def band_value():
        if null_band_rate and rng.random() < null_band_rate:
            return NULL
        return rng.randrange(band_domain)

    db = Database()
    db.create(
        "R",
        (*key_attrs, "A", "misc"),
        [
            tuple(key_value() for _ in key_attrs) + (band_value(), i)
            for i in range(n_outer)
        ],
    )
    s_schema = (*key_attrs, "A") + (("G",) if with_join else ()) + ("B",)
    db.create(
        "S",
        s_schema,
        [
            tuple(key_value() for _ in key_attrs)
            + (band_value(),)
            + ((rng.randrange(8),) if with_join else ())
            + (rng.randrange(50),)
            for _ in range(n_inner)
        ],
    )
    if with_join:
        db.create(
            "T",
            ("G", "B"),
            [(i % 8, rng.randrange(50)) for i in range(64)],
        )
    return db


def correlated_join_database(n_rows, *, domain=None, seed=0):
    """R(K0, misc), S(K0, G, B), T(G, B) for the E25 join sweep."""
    domain = domain or max(4, n_rows // 20)
    rng = random.Random(seed)
    db = Database()
    db.create(
        "R", ("K0", "misc"), [(i % domain, i) for i in range(n_rows)]
    )
    db.create(
        "S",
        ("K0", "G", "B"),
        [
            (rng.randrange(domain), rng.randrange(8), rng.randrange(50))
            for _ in range(n_rows)
        ],
    )
    db.create(
        "T",
        ("G", "B"),
        [(i % 8, rng.randrange(50)) for i in range(64)],
    )
    return db


def correlated_sweep_database(
    n_outer,
    n_inner,
    *,
    arity=1,
    domain=6,
    seed=0,
    miss_rate=0.25,
    null_rate=0.0,
):
    """R(K0.., misc) and S(K0.., G, B) for the correlated-lateral family.

    *miss_rate* sends some outer keys outside the inner domain, so γ∅
    scopes exercise the empty-group (probe-miss) path; *null_rate* plants
    NULLs in the key columns, the case the 3VL decorrelation probe refuses.
    """
    rng = random.Random(seed)
    key_attrs = [f"K{i}" for i in range(arity)]

    def key_value(miss_ok):
        if null_rate and rng.random() < null_rate:
            return NULL
        if miss_ok and rng.random() < miss_rate:
            return domain + rng.randrange(domain)  # outside the inner domain
        return rng.randrange(domain)

    db = Database()
    db.create(
        "R",
        (*key_attrs, "misc"),
        [
            tuple(key_value(True) for _ in key_attrs) + (i,)
            for i in range(n_outer)
        ],
    )
    db.create(
        "S",
        (*key_attrs, "G", "B"),
        [
            tuple(key_value(False) for _ in key_attrs)
            + (rng.randrange(3), rng.randrange(50))
            for _ in range(n_inner)
        ],
    )
    return db


def size_sweep_database(n_rows, *, domain=None, seed=0):
    """R(A, B) and S(A, B) with *n_rows* each over a proportional domain."""
    domain = domain or max(4, n_rows // 4)
    db = Database()
    db.add(generators.binary_relation("R", n_rows, domain=domain, seed=seed))
    db.add(generators.binary_relation("S", n_rows, domain=domain, seed=seed + 1))
    return db


def deep_query_text(depth):
    """Comprehension text with *depth* nested lateral collections (parser sweep)."""
    inner = "{X0(v) | ∃s0 ∈ S[X0.v = s0.B]}"
    for level in range(1, depth):
        inner = (
            f"{{X{level}(v) | ∃s{level} ∈ S, w{level} ∈ {inner}"
            f"[X{level}.v = s{level}.B ∧ w{level}.v <= s{level}.B]}}"
        )
    return f"{{Q(v) | ∃r ∈ R, w ∈ {inner}[Q.v = w.v]}}"


def wide_query_text(n_predicates):
    """Comprehension text with *n_predicates* conjuncts (parser sweep)."""
    predicates = " ∧ ".join(
        [f"Q.A = r.A"] + [f"r.B <> {i}" for i in range(n_predicates)]
    )
    return f"{{Q(A) | ∃r ∈ R[{predicates}]}}"
