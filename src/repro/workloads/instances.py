"""The concrete database instances the paper's examples run on.

Every instance mentioned in the paper text is reproduced here exactly:

* the **count-bug instance** R(9, 0) with empty S (Section 3.2);
* the **conventions instance** R = {(1, 2)}, S = ∅ (Section 2.6);
* a NULL-bearing S for the NOT IN discussion (Section 2.10, Fig. 11);
* employee/department payrolls for Fig. 6 (threshold 100);
* the drinkers/beers Likes table for the unique-set query (Example 2),
  built so exactly one drinker likes a unique set of beers;
* the outer-join instance for Fig. 12;
* sample R/S/T with reified arithmetic for Fig. 15.
"""

from __future__ import annotations

from ..data.database import Database
from ..data.values import NULL


def count_bug_instance():
    """R(id, q) = {(9, 0)}, S(id, d) = ∅ — v1/v3 return {9}, v2 returns {}."""
    db = Database()
    db.create("R", ("id", "q"), [(9, 0)])
    db.create("S", ("id", "d"), [])
    return db


def count_bug_populated(*, n_outer=8):
    """A populated variant where all three versions agree (R.id is a key)."""
    db = Database()
    rows_r = []
    rows_s = []
    for i in range(n_outer):
        expected = i % 4  # some rows satisfy r.q = count, some do not
        rows_r.append((i, expected))
        for j in range(i % 3):
            rows_s.append((i, f"d{j}"))
    db.create("R", ("id", "q"), rows_r)
    db.create("S", ("id", "d"), rows_s)
    return db


def conventions_instance():
    """R = {(1, 2)}, S = ∅ (Section 2.6): sum over empty -> NULL vs 0."""
    db = Database()
    db.create("R", ("a", "b"), [(1, 2)])
    db.create("S", ("a", "b"), [])
    return db


def not_in_instance(*, with_null=True):
    """R/S unary tables; S contains a NULL row when *with_null* (Fig. 11)."""
    db = Database()
    db.create("R", ("A",), [(1,), (2,), (3,)])
    rows = [(1,), (NULL,)] if with_null else [(1,)]
    db.create("S", ("A",), rows)
    return db


def payroll_instance():
    """The Fig. 6 running example: departments, employees, salaries.

    Department cs pays total 110 (> 100, avg 55); department ee pays total
    90 (filtered out by HAVING sum > 100).
    """
    db = Database()
    db.create(
        "R",
        ("empl", "dept"),
        [("ann", "cs"), ("bob", "cs"), ("cyd", "ee")],
    )
    db.create(
        "S",
        ("empl", "sal"),
        [("ann", 60), ("bob", 50), ("cyd", 90)],
    )
    return db


def likes_instance():
    """Example 2: bob is the only drinker with a unique set of beers
    (alice and carol like exactly {ipa, stout})."""
    db = Database()
    db.create(
        "L",
        ("d", "b"),
        [
            ("alice", "ipa"),
            ("alice", "stout"),
            ("bob", "ipa"),
            ("carol", "ipa"),
            ("carol", "stout"),
        ],
    )
    # The SQL figures use the full names Likes(drinker, beer).
    db.create(
        "Likes",
        ("drinker", "beer"),
        [(row["d"], row["b"]) for row in db["L"]],
    )
    return db


def outer_join_instance():
    """Fig. 12: R rows with h = 11 join S on y; others are null-padded."""
    db = Database()
    db.create(
        "R",
        ("m", "y", "h"),
        [(1, 100, 11), (2, 200, 12), (3, 300, 11), (4, 400, 11)],
    )
    db.create("S", ("y", "n", "q"), [(100, "x", 0), (300, "z", 0)])
    return db


def arithmetic_instance():
    """Fig. 15: R.B - S.B > T.B has exactly one witness (10 - 4 = 6 > 5)."""
    db = Database()
    db.create("R", ("A", "B"), [(1, 10), (2, 3)])
    db.create("S", ("B",), [(4,)])
    db.create("T", ("B",), [(5,)])
    return db


def ancestor_instance():
    """Fig. 10: a small parent chain with a branch."""
    db = Database()
    db.create(
        "P",
        ("s", "t"),
        [("a", "b"), ("b", "c"), ("c", "d"), ("b", "e")],
    )
    return db


def lateral_instance():
    """Fig. 3: X/Y tables for the nested-comprehension lateral example."""
    db = Database()
    db.create("X", ("A",), [(1,), (5,), (9,)])
    db.create("Y", ("A",), [(2,), (4,), (6,), (8,)])
    return db


def boolean_instance(*, satisfied=True):
    """Fig. 9: R(id, q) vs counts in S(id, d).

    With ``satisfied=True`` the quota 2 is met by 3 matching S rows, so
    eq. (13) (∃ r meeting its quota) and eq. (14) (no r exceeding its
    count) are both TRUE; with one S row both are FALSE.
    """
    db = Database()
    db.create("R", ("id", "q"), [(1, 2)])
    rows = [(1, "x"), (1, "y"), (1, "z")] if satisfied else [(1, "x")]
    db.create("S", ("id", "d"), rows)
    return db


def employees_demo():
    """Schema for the NL pipeline demo: Employee(name, dept, salary)."""
    db = Database()
    db.create(
        "Employee",
        ("name", "dept", "salary"),
        [
            ("ann", "marketing", 60),
            ("bob", "marketing", 45),
            ("cyd", "engineering", 90),
            ("dan", "engineering", 70),
            ("eva", "engineering", 110),
            ("fay", "sales", 40),
        ],
    )
    return db
