"""Paper workloads: example queries, instances, and sweep generators."""

from . import instances, paper_examples, sweeps

__all__ = ["instances", "paper_examples", "sweeps"]
