"""Paper workloads: example queries, instances, sweeps, and the corpus.

``scenarios`` is the seeded scenario corpus (retail / social / eventlog
schemas with query suites in all four frontends) consumed by the
execution-based differential harness in :mod:`repro.eval`.
"""

from . import instances, paper_examples, scenarios, sweeps

__all__ = ["instances", "paper_examples", "scenarios", "sweeps"]
