"""Every numbered equation and figure query from the paper, as text.

This is the reproduction's ground truth: each entry carries the ARC
comprehension text (parsed by :func:`repro.core.parser.parse`) and, where
the paper shows one, the corresponding SQL, Datalog/Soufflé, or Rel text.
The benchmark harness executes these against the instances in
:mod:`repro.workloads.instances` and asserts the paper's stated claims.

Keys follow the paper's numbering: ``eq1`` .. ``eq29`` for equations,
``fig3a`` etc. for figure-only texts.
"""

from __future__ import annotations

ARC = {
    # Section 2.1 -------------------------------------------------------------
    "eq1": "{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}",
    # Section 2.4 (Fig. 3) ----------------------------------------------------
    "eq2": (
        "{Q(A, B) | ∃x ∈ X, z ∈ {Z(B) | ∃y ∈ Y[Z.B = y.A ∧ x.A < y.A]}"
        "[Q.A = x.A ∧ Q.B = z.B]}"
    ),
    # Section 2.5 (Fig. 4): FIO grouped aggregate ------------------------------
    "eq3": "{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}",
    # Section 2.5 (Fig. 5): FOI pattern ----------------------------------------
    "eq7": (
        "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃r2 ∈ R, γ ∅[r2.A = r.A ∧ "
        "X.sm = sum(r2.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
    ),
    # Section 2.5 (Fig. 6): multiple aggregates + HAVING, eq. (8) ----------------
    "eq8": (
        "{Q(dept, av) | ∃x ∈ {X(dept, av, sm) | ∃r ∈ R, s ∈ S, γ r.dept"
        "[X.dept = r.dept ∧ X.av = avg(s.sal) ∧ X.sm = sum(s.sal) ∧ "
        "r.empl = s.empl]}[Q.dept = x.dept ∧ Q.av = x.av ∧ x.sm > 100]}"
    ),
    # Section 2.5 (Fig. 7): Hella et al. pattern, eq. (10) -----------------------
    "eq10": (
        "{Q(dept, av) | ∃r3 ∈ R, s3 ∈ S, "
        "x ∈ {X(av) | ∃r1 ∈ R, s1 ∈ S, γ r1.dept"
        "[r1.dept = r3.dept ∧ r1.empl = s1.empl ∧ X.av = avg(s1.sal)]}, "
        "y ∈ {Y(sm) | ∃r2 ∈ R, s2 ∈ S, γ r2.dept"
        "[r2.dept = r3.dept ∧ r2.empl = s2.empl ∧ Y.sm = sum(s2.sal)]}"
        "[Q.dept = r3.dept ∧ Q.av = x.av ∧ r3.empl = s3.empl ∧ y.sm > 100]}"
    ),
    # Section 2.5 (Fig. 8): Rel pattern, eq. (12) --------------------------------
    "eq12": (
        "{Q(dept, av) | "
        "∃x ∈ {X(dept, av) | ∃r1 ∈ R, s1 ∈ S, γ r1.dept"
        "[X.dept = r1.dept ∧ r1.empl = s1.empl ∧ X.av = avg(s1.sal)]}, "
        "y ∈ {Y(dept, sm) | ∃r2 ∈ R, s2 ∈ S, γ r2.dept"
        "[Y.dept = r2.dept ∧ r2.empl = s2.empl ∧ Y.sm = sum(s2.sal)]}"
        "[Q.dept = x.dept ∧ Q.av = x.av ∧ x.dept = y.dept ∧ y.sm > 100]}"
    ),
    # Section 2.5 (Fig. 9): boolean sentences, eqs. (13)/(14) ---------------------
    "eq13": "∃r ∈ R[∃s ∈ S, γ ∅[r.id = s.id ∧ r.q <= count(s.d)]]",
    "eq14": "¬∃r ∈ R[∃s ∈ S, γ ∅[r.id = s.id ∧ r.q > count(s.d)]]",
    # Section 2.6 conventions example, ARC form of eq. (15) ------------------------
    "eq15": (
        "{Q(ak, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
        "[s.a < r.a ∧ X.sm = sum(s.b)]}[Q.ak = r.a ∧ Q.sm = x.sm]}"
    ),
    # Section 2.9 recursion, eq. (16) ---------------------------------------------
    "eq16": (
        "{A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
        "∃p ∈ P, a2 ∈ A[A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}"
    ),
    # Section 2.10 nulls, eq. (17) ---------------------------------------------------
    "eq17": (
        "{Q(A) | ∃r ∈ R[Q.A = r.A ∧ "
        "¬(∃s ∈ S[s.A = r.A ∨ s.A is null ∨ r.A is null])]}"
    ),
    "not_in_3vl": "{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[s.A = r.A])]}",
    # Section 2.11 outer joins, eq. (18) ----------------------------------------------
    "eq18": (
        "{Q(m, n) | ∃r ∈ R, s ∈ S, left(r, inner(11, s))"
        "[Q.m = r.m ∧ Q.n = s.n ∧ r.y = s.y ∧ r.h = 11]}"
    ),
    # Section 2.13 externals, eqs. (19)-(21) ----------------------------------------
    "eq19": "{Q(A) | ∃r ∈ R, s ∈ S, t ∈ T[Q.A = r.A ∧ r.B - s.B > t.B]}",
    "eq20": (
        "{Q(A) | ∃r ∈ R, s ∈ S, t ∈ T, f ∈ Minus"
        "[Q.A = r.A ∧ f.left = r.B ∧ f.right = s.B ∧ f.out > t.B]}"
    ),
    "eq21": (
        "{Q(A) | ∃r ∈ R, s ∈ S, t ∈ T, f ∈ Minus, g ∈ Bigger"
        "[Q.A = r.A ∧ f.left = r.B ∧ f.right = s.B ∧ "
        "f.out = g.left ∧ g.right = t.B]}"
    ),
    # Example 2: unique-set query, eqs. (22)-(24) --------------------------------------
    "eq22": (
        "{Q(d) | ∃l1 ∈ L[Q.d = l1.d ∧ "
        "¬(∃l2 ∈ L[l2.d <> l1.d ∧ "
        "¬(∃l3 ∈ L[l3.d = l2.d ∧ ¬(∃l4 ∈ L[l4.b = l3.b ∧ l4.d = l1.d])]) ∧ "
        "¬(∃l5 ∈ L[l5.d = l1.d ∧ ¬(∃l6 ∈ L[l6.d = l2.d ∧ l6.b = l5.b])])])]}"
    ),
    "eq23_24": (
        "Sub := {Sub(left_, right_) | ¬(∃l3 ∈ L[l3.d = Sub.left_ ∧ "
        "¬(∃l4 ∈ L[l4.b = l3.b ∧ l4.d = Sub.right_])])} ;\n"
        "{Q(d) | ∃l1 ∈ L[Q.d = l1.d ∧ "
        "¬(∃l2 ∈ L, s1 ∈ Sub, s2 ∈ Sub[l2.d <> l1.d ∧ "
        "s1.left_ = l1.d ∧ s1.right_ = l2.d ∧ "
        "s2.left_ = l2.d ∧ s2.right_ = l1.d])]}"
    ),
    # Section 3.1 matrix multiplication, eqs. (25)/(26) ----------------------------------
    "eq25_arc": (
        "{C(row, col, val) | ∃a ∈ A, b ∈ B, γ a.row, b.col"
        "[C.row = a.row ∧ C.col = b.col ∧ a.col = b.row ∧ "
        "C.val = sum(a.val * b.val)]}"
    ),
    "eq26": (
        "{C(row, col, val) | ∃a ∈ A, b ∈ B, f ∈ '*', γ a.row, b.col"
        "[C.row = a.row ∧ C.col = b.col ∧ a.col = b.row ∧ "
        "C.val = sum(f.out) ∧ f.$1 = a.val ∧ f.$2 = b.val]}"
    ),
    # Section 3.2 count bug, eqs. (27)-(29) ------------------------------------------------
    "eq27": (
        "{Q(id) | ∃r ∈ R[Q.id = r.id ∧ "
        "∃s ∈ S, γ ∅[r.id = s.id ∧ r.q = count(s.d)]]}"
    ),
    "eq28": (
        "{Q(id) | ∃r ∈ R, x ∈ {X(id, ct) | ∃s ∈ S, γ s.id"
        "[X.id = s.id ∧ X.ct = count(s.d)]}"
        "[Q.id = r.id ∧ r.id = x.id ∧ r.q = x.ct]}"
    ),
    "eq29": (
        "{Q(id) | ∃r ∈ R, x ∈ {X(id, ct) | ∃s ∈ S, r2 ∈ R, γ r2.id, left(r2, s)"
        "[X.id = r2.id ∧ X.ct = count(s.d) ∧ r2.id = s.id]}"
        "[Q.id = r.id ∧ r.id = x.id ∧ r.q = x.ct]}"
    ),
}

SQL = {
    # Fig. 3a: lateral join
    "fig3a": (
        "select x.A, z.B from X as x join lateral ("
        "select y.A as B from Y as y where x.A < y.A) as z on true"
    ),
    # Fig. 4a
    "fig4a": "select R.A, sum(R.B) sm from R group by R.A",
    # Fig. 5a / 5b
    "fig5a": (
        "select distinct R.A, (select sum(R2.B) sm from R R2 "
        "where R2.A = R.A) sm from R"
    ),
    "fig5b": (
        "select distinct R.A, X.sm from R join lateral ("
        "select sum(R2.B) sm from R R2 where R2.A = R.A) X on true"
    ),
    # Fig. 6a
    "fig6a": (
        "select R.dept, avg(S.sal) av from R, S where R.empl = S.empl "
        "group by R.dept having sum(S.sal) > 100"
    ),
    # Fig. 9a / 9c
    "fig9a": (
        "select exists (select 1 from R where R.q <= "
        "(select count(S.d) from S where S.id = R.id))"
    ),
    "fig9c": (
        "select not exists (select 1 from R where R.q > "
        "(select count(S.d) from S where S.id = R.id))"
    ),
    # Fig. 11a / 11b
    "fig11a": "select R.A from R where R.A not in (select S.A from S)",
    "fig11b": (
        "select R.A from R where not exists (select 1 from S "
        "where S.A = R.A or S.A is null or R.A is null)"
    ),
    # Fig. 12a
    "fig12a": (
        "select R.m, S.n from R left outer join S on "
        "(R.h = 11 and R.y = S.y)"
    ),
    # Fig. 13a / 13b / 13c
    "fig13a": (
        "select R.A, (select sum(S.B) sm from S where S.A < R.A) sm from R"
    ),
    "fig13b": (
        "select R.A, X.sm from R join lateral ("
        "select sum(S.B) sm from S where S.A < R.A) X on true"
    ),
    "fig13c": (
        "select R.A, sum(S.B) sm from R left join S on S.A < R.A group by R.A"
    ),
    # Fig. 15a / 15b
    "fig15a": "select R.A from R, S, T where R.B - S.B > T.B",
    "fig15b": (
        'select R.A from R, S, T, ">", "-" where R.B = "-".left '
        'and S.B = "-".right and ">".left = "-".out and ">".right = T.B'
    ),
    # Fig. 17: unique-set query
    "fig17": (
        "select distinct L1.drinker from Likes L1 where not exists ("
        "select 1 from Likes L2 where L1.drinker <> L2.drinker "
        "and not exists (select 1 from Likes L3 where L3.drinker = L2.drinker "
        "and not exists (select 1 from Likes L4 where L4.drinker = L1.drinker "
        "and L4.beer = L3.beer)) "
        "and not exists (select 1 from Likes L5 where L5.drinker = L1.drinker "
        "and not exists (select 1 from Likes L6 where L6.drinker = L2.drinker "
        "and L6.beer = L5.beer)))"
    ),
    # Fig. 21a / 21b / 21c: the count bug
    "fig21a": (
        "select R.id from R where R.q = "
        "(select count(S.d) from S where S.id = R.id)"
    ),
    "fig21b": (
        "select R.id from R, (select S.id, count(S.d) as ct from S "
        "group by S.id) as X where R.q = X.ct and R.id = X.id"
    ),
    "fig21c": (
        "select R.id from R, (select R2.id, count(S.d) as ct from R R2 "
        "left join S on R2.id = S.id group by R2.id) as X "
        "where R.q = X.ct and R.id = X.id"
    ),
}

DATALOG = {
    # Fig. 10 ancestor rules
    "fig10": "A(x, y) :- P(x, y).\nA(x, y) :- P(x, z), A(z, y).",
    # eq. (6): Soufflé head aggregate
    "eq6": "Q(a, sum b : {R(a, b)}) :- R(a, _).",
    # eq. (15): Soufflé body aggregate
    "eq15": "Q(ak, sm) :- R(ak, _), sm = sum b : {S(a, b), a < ak}.",
}

REL = {
    # Section 2.5: simple grouped aggregate
    "simple": "def Q(a, sm) : sm = sum[(b) : R(a, b)]",
    # eq. (11): multiple aggregates
    "eq11": (
        "def Q(d, av) : av = average[(e, s) : R(e, d) and S(e, s)] and "
        "sum[(e, s) : R(e, d) and S(e, s)] > 100"
    ),
}

TRC = {
    # Section 2.1 textbook query before normalization
    "textbook": "{r.A | r ∈ R ∧ ∃s[r.B = s.B ∧ s.C = 0 ∧ s ∈ S]}",
}


def arc(key):
    """Parse the ARC text registered under *key*."""
    from ..core.parser import parse

    return parse(ARC[key])


def sql_arc(key, database=None):
    """Translate the SQL text registered under *key* into ARC."""
    from ..frontends.sql import to_arc

    return to_arc(SQL[key], database=database)


def all_arc_keys():
    return sorted(ARC)


def all_sql_keys():
    return sorted(SQL)
