"""Social-graph scenario: users and a follow graph.

Graph workloads stress what the star schema cannot: transitive closure over
an irregular edge set, self-joins (mutual follows), antijoins phrased over
the same relation twice, and θ-correlations through a join (followees
younger than their follower).  ``User.age`` is NULL for a slice of users so
the age comparisons exercise 3VL alongside the graph shapes.
"""

from __future__ import annotations

from ...data import NULL
from ...nl.templates import SchemaInfo
from .base import CorpusQuery, NlCase, Scenario, build_database

_COUNTRIES = ("no", "jp", "fr", "br", "ke")
_NAMES = ("ann", "ben", "cho", "dia", "edo", "fil", "gia", "hux")


class SocialScenario(Scenario):
    name = "social"
    description = "users + follow graph (TC, self-joins, graph antijoins)"

    def catalog(self, size="small", seed=0):
        scale = self.scale(size)
        rng = self.rng(seed)
        n_users = 10 * scale
        n_edges = 24 * scale

        users = [
            (
                f"u{i}",
                f"{_NAMES[i % len(_NAMES)]}{i}",
                # Round-robin countries: every country is inhabited at every
                # size, so constant selections never degenerate to empty.
                _COUNTRIES[i % len(_COUNTRIES)],
                NULL if rng.random() < 0.2 else rng.randrange(16, 70),
            )
            for i in range(n_users)
        ]
        # Distinct directed edges, no self-loops; the seen-set is only used
        # for membership tests, so iteration order never leaks into output.
        edges = []
        seen = set()
        while len(edges) < n_edges:
            src = rng.randrange(n_users)
            dst = rng.randrange(n_users)
            if src == dst or (src, dst) in seen:
                continue
            seen.add((src, dst))
            edges.append((f"u{src}", f"u{dst}"))
        return build_database(
            {
                "User": (("uid", "name", "country", "age"), users),
                "Follows": (("src", "dst"), edges),
            }
        )

    def queries(self):
        return (
            CorpusQuery(
                name="users_in_country",
                features=("selection",),
                description="names of users registered in norway",
                texts={
                    "sql": "select u.name from User u where u.country = 'no'",
                    "trc": "{u.name | u in User and u.country = 'no'}",
                    "datalog": 'Q(n) :- User(u, n, "no", a).',
                    "rel": 'def Q(name) : User(uid, name, "no", age)',
                },
            ),
            CorpusQuery(
                name="follower_count_fio",
                features=("grouping",),
                description="follower count per followed user (FIO)",
                texts={
                    "sql": (
                        "select f.dst, count(f.src) ct "
                        "from Follows f group by f.dst"
                    ),
                    "rel": "def Q(dst, ct) : ct = count[(src) : Follows(src, dst)]",
                },
            ),
            CorpusQuery(
                name="follower_count_foi",
                features=("grouping", "correlated"),
                description="follower count per user, zeros included (FOI)",
                texts={
                    "sql": (
                        "select u.uid, (select count(f.src) from Follows f "
                        "where f.dst = u.uid) ct from User u"
                    ),
                    "datalog": (
                        "Q(u, ct) :- User(u, n, c, a), "
                        "ct = count s : {Follows(s, u)}."
                    ),
                },
            ),
            CorpusQuery(
                name="mutual_follows",
                features=("join",),
                description="pairs that follow each other (self-join)",
                texts={
                    "sql": (
                        "select f.src, f.dst from Follows f, Follows g "
                        "where g.src = f.dst and g.dst = f.src"
                    ),
                    "trc": (
                        "{f.src, f.dst | f in Follows and exists g "
                        "[g in Follows and g.src = f.dst and g.dst = f.src]}"
                    ),
                    "datalog": "Q(a, b) :- Follows(a, b), Follows(b, a).",
                    "rel": "def Q(a, b) : Follows(a, b) and Follows(b, a)",
                },
            ),
            CorpusQuery(
                name="reachable",
                features=("recursion",),
                compare="set",
                description="transitive closure of the follow graph",
                texts={
                    "datalog": (
                        "Reach(x, y) :- Follows(x, y).\n"
                        "Reach(x, z) :- Follows(x, y), Reach(y, z)."
                    ),
                },
            ),
            CorpusQuery(
                name="unreciprocated",
                features=("negation",),
                description="follows that are not followed back",
                texts={
                    "sql": (
                        "select f.src, f.dst from Follows f where not exists "
                        "(select 1 from Follows g "
                        "where g.src = f.dst and g.dst = f.src)"
                    ),
                    "trc": (
                        "{f.src, f.dst | f in Follows and not exists g "
                        "[g in Follows and g.src = f.dst and g.dst = f.src]}"
                    ),
                    "datalog": (
                        "Mutual(a, b) :- Follows(a, b), Follows(b, a).\n"
                        "Q(a, b) :- Follows(a, b), !Mutual(a, b)."
                    ),
                },
            ),
            CorpusQuery(
                name="younger_followees",
                features=("theta-band", "correlated", "join", "null-3vl"),
                description=(
                    "per user, how many of their followees are strictly "
                    "younger (θ through a join; NULL ages never compare)"
                ),
                texts={
                    "sql": (
                        "select u.uid, (select count(v.uid) from Follows f, User v "
                        "where f.src = u.uid and v.uid = f.dst "
                        "and v.age < u.age) ct from User u"
                    ),
                    "datalog": (
                        "Q(u, ct) :- User(u, n, c, a), "
                        "ct = count v : {Follows(u, v), User(v, n2, c2, a2), a2 < a}."
                    ),
                },
            ),
            CorpusQuery(
                name="age_unknown",
                features=("selection", "null-3vl"),
                description="users whose age is unrecorded (IS NULL)",
                texts={
                    "sql": "select u.name from User u where u.age is null",
                    "trc": "{u.name | u in User and u.age is null}",
                },
            ),
        )

    def nl_schema(self):
        return SchemaInfo(
            fact_table="User",
            group_attr="country",
            measure_attr="age",
            entity_attr="name",
            fact_alias="u",
        )

    def nl_cases(self):
        return (
            NlCase(
                request="average age per country",
                gold=(
                    "select u.country, avg(u.age) v "
                    "from User u group by u.country"
                ),
            ),
            NlCase(
                request="how many users are there",
                gold="select count(*) ct from User u",
            ),
            NlCase(
                request="users making more than their country average",
                gold=(
                    "select u.name from User u where u.age > "
                    "(select avg(u2.age) from User u2 "
                    "where u2.country = u.country)"
                ),
            ),
            NlCase(
                request="countries without any user making over 60",
                gold=(
                    "select distinct u.country from User u where not exists "
                    "(select 1 from User u2 where u2.country = u.country "
                    "and u2.age > 60)"
                ),
            ),
            # No per-group superlative template exists; expected refusal.
            NlCase(request="newest user per country", gold=None),
        )
