"""Temporal event-log scenario: machines, timestamped events, trigger links.

Time is the θ-band workhorse: "how many earlier events on the same machine"
is exactly the sorted-index prefix-probe shape PR 5 optimized, and event
durations are NULL while a job is still running (3VL).  ``Link`` records
which event triggered which, giving cascade closure for recursion, and the
``Minus`` access-pattern external computes start-time offsets — the one
feature class SQLite must always refuse, keeping the fallback-verdict
accounting honest.
"""

from __future__ import annotations

from ...data import NULL
from ...nl.templates import SchemaInfo
from .base import CorpusQuery, NlCase, Scenario, build_database

_ZONES = ("east", "west", "north")
_KINDS = ("boot", "error", "deploy", "probe", "halt")


class EventlogScenario(Scenario):
    name = "eventlog"
    description = "machines + timestamped events + trigger links (temporal)"

    def catalog(self, size="small", seed=0):
        scale = self.scale(size)
        rng = self.rng(seed)
        n_machines = 6 * scale
        n_events = 30 * scale
        n_links = 12 * scale

        machines = [
            (f"m{i}", rng.choice(_ZONES)) for i in range(n_machines)
        ]
        # Events land on the first two thirds of machines so "silent
        # machines" (the antijoin) is never vacuous.
        n_active = max(1, (2 * n_machines) // 3)
        events = [
            (
                f"e{i}",
                f"m{rng.randrange(n_active)}",
                rng.choice(_KINDS),
                rng.randrange(1, 500),
                NULL if rng.random() < 0.2 else rng.randrange(1, 60),
            )
            for i in range(n_events)
        ]
        # Trigger links between distinct events (a sparse DAG-ish edge set).
        links = []
        seen = set()
        while len(links) < n_links:
            src = rng.randrange(n_events)
            dst = rng.randrange(n_events)
            if src == dst or (src, dst) in seen:
                continue
            seen.add((src, dst))
            links.append((f"e{src}", f"e{dst}"))
        return build_database(
            {
                "Machine": (("mid", "zone"), machines),
                "Event": (("eid", "mid", "kind", "ts", "dur"), events),
                "Link": (("src", "dst"), links),
            }
        )

    def queries(self):
        return (
            CorpusQuery(
                name="error_events",
                features=("selection",),
                description="ids of error events",
                texts={
                    "sql": "select e.eid from Event e where e.kind = 'error'",
                    "trc": "{e.eid | e in Event and e.kind = 'error'}",
                    "datalog": 'Q(e) :- Event(e, m, "error", t, d).',
                    "rel": 'def Q(eid) : Event(eid, mid, "error", ts, dur)',
                },
            ),
            CorpusQuery(
                name="events_per_machine_fio",
                features=("grouping",),
                description="event count per machine that logged events (FIO)",
                texts={
                    "sql": (
                        "select e.mid, count(e.eid) ct "
                        "from Event e group by e.mid"
                    ),
                    # The rel aggregate counts its *last* tuple var; eid goes
                    # last because count skips NULLs and dur can be NULL.
                    "rel": (
                        "def Q(mid, ct) : "
                        "ct = count[(k, t, d, eid) : Event(eid, mid, k, t, d)]"
                    ),
                },
            ),
            CorpusQuery(
                name="events_per_machine_foi",
                features=("grouping", "correlated"),
                description="event count per machine, silent machines at 0 (FOI)",
                texts={
                    "sql": (
                        "select m.mid, (select count(e.eid) from Event e "
                        "where e.mid = m.mid) ct from Machine m"
                    ),
                    "datalog": (
                        "Q(m, ct) :- Machine(m, z), "
                        "ct = count e : {Event(e, m, k, t, d)}."
                    ),
                },
            ),
            CorpusQuery(
                name="silent_machines",
                features=("negation",),
                description="machines that never logged an event",
                texts={
                    "sql": (
                        "select m.mid from Machine m where not exists "
                        "(select 1 from Event e where e.mid = m.mid)"
                    ),
                    "trc": (
                        "{m.mid | m in Machine and not exists e "
                        "[e in Event and e.mid = m.mid]}"
                    ),
                    "datalog": (
                        "Active(m) :- Event(e, m, k, t, d).\n"
                        "Q(m) :- Machine(m, z), !Active(m)."
                    ),
                },
            ),
            CorpusQuery(
                name="cascade",
                features=("recursion",),
                compare="set",
                description="transitive closure of event trigger links",
                texts={
                    "datalog": (
                        "Cascade(x, y) :- Link(x, y).\n"
                        "Cascade(x, z) :- Link(x, y), Cascade(y, z)."
                    ),
                },
            ),
            CorpusQuery(
                name="earlier_on_same_machine",
                features=("theta-band", "correlated"),
                description=(
                    "per event, how many earlier events its machine already "
                    "logged (the PR 5 sorted-band probe shape)"
                ),
                texts={
                    "sql": (
                        "select e.eid, (select count(e2.eid) from Event e2 "
                        "where e2.mid = e.mid and e2.ts < e.ts) ct "
                        "from Event e"
                    ),
                    "datalog": (
                        "Q(e, ct) :- Event(e, m, k, t, d), "
                        "ct = count e2 : {Event(e2, m, k2, t2, d2), t2 < t}."
                    ),
                },
            ),
            CorpusQuery(
                name="undetermined_duration",
                features=("selection", "null-3vl"),
                description="events still running (duration IS NULL)",
                texts={
                    "sql": "select e.eid from Event e where e.dur is null",
                    "trc": "{e.eid | e in Event and e.dur is null}",
                },
            ),
            CorpusQuery(
                name="start_offset_minus",
                features=("externals",),
                description=(
                    "start offset ts - dur via the Minus access-pattern "
                    "external (rows with NULL dur drop out; SQLite refuses "
                    "externals and must fall back)"
                ),
                texts={
                    "sql": (
                        "select e.eid, f.out from Event e, Minus f "
                        "where f.left = e.ts and f.right = e.dur"
                    ),
                    "trc": (
                        "{e.eid, f.out | e in Event and f in Minus "
                        "and f.left = e.ts and f.right = e.dur}"
                    ),
                },
            ),
        )

    def nl_schema(self):
        return SchemaInfo(
            fact_table="Event",
            group_attr="kind",
            measure_attr="dur",
            entity_attr="eid",
            fact_alias="e",
        )

    def nl_cases(self):
        return (
            NlCase(
                request="average duration per kind",
                gold=(
                    "select e.kind, avg(e.dur) v "
                    "from Event e group by e.kind"
                ),
            ),
            NlCase(
                request="how many events are there",
                gold="select count(*) ct from Event e",
            ),
            NlCase(
                request="kinds with count duration at least 3",
                gold=(
                    "select e.kind from Event e "
                    "group by e.kind having count(e.dur) >= 3"
                ),
            ),
            # Window-style ordering has no template; expected refusal.
            NlCase(request="latest event on each machine", gold=None),
        )
