"""Scenario-corpus building blocks: tagged queries over seeded catalogs.

A *scenario* bundles a deterministic catalog generator (retail orders, a
social follow graph, a machine event log, …) with a suite of
:class:`CorpusQuery` items — the same question asked in up to four frontends
(datalog / rel / trc / sql), tagged with the engine features it exercises.
The evaluation harness (:mod:`repro.eval.harness`) runs every
(scenario, query, frontend, backend) cell through the Session API and
differences each result against the reference oracle; scenarios themselves
know nothing about execution.

Determinism is a contract, not an accident: catalogs derive every row from
``random.Random(f"{scenario}:{seed}")`` (string seeding is stable across
processes and ``PYTHONHASHSEED``), generators never iterate over sets or
dicts with non-deterministic order, and :meth:`Scenario.fingerprint` hashes
the canonical JSON of catalog + query texts so CI can assert byte-identical
corpora run-to-run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ...data import NULL, Database

#: Catalog scale factors; ``small`` is sized for CI smoke runs.
SIZES = {"small": 1, "medium": 4, "large": 16}

#: The feature vocabulary query tags are validated against.
FEATURES = (
    "selection",
    "join",
    "grouping",
    "negation",
    "recursion",
    "correlated",
    "theta-band",
    "null-3vl",
    "externals",
    "having",
)


@dataclass(frozen=True)
class CorpusQuery:
    """One corpus question, phrased in one or more frontends.

    ``texts`` maps frontend name → query text; every text must evaluate to
    the same answer (positionally — frontends disagree on column *names*),
    which the harness and the cross-frontend suite both pin.  ``compare``
    picks the cross-frontend comparison semantics: ``"bag"`` (exact
    multiplicities) or ``"set"`` (distinct rows, for fixpoint-shaped
    answers).
    """

    name: str
    features: tuple
    texts: dict = field(default_factory=dict)
    conventions: str = "sql"
    compare: str = "bag"
    description: str = ""

    def __post_init__(self):
        unknown = [f for f in self.features if f not in FEATURES]
        if unknown:
            raise ValueError(
                f"query {self.name!r} has unknown feature tags {unknown}; "
                f"known: {FEATURES}"
            )
        if self.compare not in ("bag", "set"):
            raise ValueError(f"query {self.name!r}: compare must be bag|set")
        if not self.texts:
            raise ValueError(f"query {self.name!r} has no frontend texts")

    @property
    def frontends(self):
        return tuple(sorted(self.texts))


@dataclass(frozen=True)
class NlCase:
    """One natural-language request scored by execution match.

    ``gold`` is the reference answer as a SQL text (executed on the oracle
    and set-compared against whatever the nl pipeline runs); ``gold=None``
    marks a request the template grammar is *expected* to refuse, so corpus
    accuracy stays an honest measurement rather than a tautology.
    """

    request: str
    gold: str = None
    gold_frontend: str = "sql"


class Scenario:
    """Base class: a named, seeded catalog plus its tagged query suite."""

    name = None
    description = ""

    def catalog(self, size="small", seed=0):
        """Build the scenario :class:`~repro.data.Database` at *size*."""
        raise NotImplementedError

    def queries(self):
        """The scenario's tuple of :class:`CorpusQuery` items."""
        raise NotImplementedError

    def nl_schema(self):
        """A :class:`~repro.nl.SchemaInfo` for the nl pipeline, or None."""
        return None

    def nl_cases(self):
        """Tuple of :class:`NlCase` scored against this scenario."""
        return ()

    # -- determinism ---------------------------------------------------------

    def rng(self, seed):
        """The scenario's seeded generator (process-stable string seeding)."""
        import random

        return random.Random(f"{self.name}:{seed}")

    def scale(self, size):
        try:
            return SIZES[size]
        except KeyError:
            raise ValueError(
                f"unknown size {size!r}; known: {sorted(SIZES)}"
            ) from None

    def corpus_payload(self, size="small", seed=0):
        """Canonical JSON-able form of catalog + query texts (for hashing)."""
        db = self.catalog(size=size, seed=seed)
        relations = {}
        for rel_name in db.names():
            relation = db[rel_name]
            rows = [
                [None if value is NULL else value for value in
                 (row[a] for a in relation.schema)]
                for row in relation.sorted_rows()
            ]
            relations[rel_name] = {"schema": list(relation.schema), "rows": rows}
        return {
            "scenario": self.name,
            "size": size,
            "seed": seed,
            "catalog": relations,
            "queries": {
                q.name: {
                    "features": sorted(q.features),
                    "conventions": q.conventions,
                    "compare": q.compare,
                    "texts": {fe: q.texts[fe] for fe in sorted(q.texts)},
                }
                for q in self.queries()
            },
        }

    def fingerprint(self, size="small", seed=0):
        """SHA-256 over the canonical corpus payload; stable across runs."""
        payload = json.dumps(
            self.corpus_payload(size=size, seed=seed),
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def build_database(tables):
    """Create a :class:`Database` from ``{name: (schema, rows)}`` pairs."""
    db = Database()
    for name, (schema, rows) in tables.items():
        db.create(name, schema, rows)
    return db
