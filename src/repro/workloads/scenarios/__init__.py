"""The scenario corpus: seeded schemas + query suites in four frontends.

See :mod:`repro.workloads.scenarios.base` for the data model and
:mod:`repro.eval.harness` for the differential runner that consumes it.
"""

from .base import FEATURES, SIZES, CorpusQuery, NlCase, Scenario
from .eventlog import EventlogScenario
from .retail import RetailScenario
from .social import SocialScenario

#: Registry of scenario constructors, in presentation order.
SCENARIOS = {
    scenario.name: scenario
    for scenario in (RetailScenario(), SocialScenario(), EventlogScenario())
}


def get_scenario(name):
    try:
        return SCENARIOS[name]
    except KeyError:
        raise LookupError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None


__all__ = [
    "CorpusQuery",
    "EventlogScenario",
    "FEATURES",
    "NlCase",
    "RetailScenario",
    "SCENARIOS",
    "SIZES",
    "Scenario",
    "SocialScenario",
    "get_scenario",
]
