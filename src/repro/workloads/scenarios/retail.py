"""Retail-orders scenario: customers, catalog, orders, a category tree.

The classic star schema every SQL corpus leans on, with the paper's pain
points planted deliberately: ``Product.price`` is NULL for a slice of the
catalog (3VL comparisons and NOT-IN traps), ``CatParent`` is a DAG for
recursion, and the per-customer aggregates come in both FOI (zero-order
customers included) and FIO (group-by, silent customers absent) flavors so
the corpus pins the distinction PR 3/5 decorrelation is built around.
"""

from __future__ import annotations

from ...data import NULL
from ...nl.templates import SchemaInfo
from .base import CorpusQuery, NlCase, Scenario, build_database

_CITIES = ("lyon", "oslo", "kyoto", "quito", "tunis")
_SEGMENTS = ("consumer", "corporate", "home")
_CATEGORIES = ("toys", "games", "tools", "books", "garden")
_FIRST = ("ada", "bo", "cyd", "dee", "eli", "fay", "gus", "hal", "ivy", "jo")

#: Fixed category DAG: two levels under a root, plus a leaf chain.
_CAT_PARENT = (
    ("games", "toys"),
    ("toys", "goods"),
    ("tools", "goods"),
    ("books", "media"),
    ("media", "goods"),
    ("garden", "goods"),
)


class RetailScenario(Scenario):
    name = "retail"
    description = "customers / products / orders star schema with a category tree"

    def catalog(self, size="small", seed=0):
        scale = self.scale(size)
        rng = self.rng(seed)
        n_customers = 8 * scale
        n_products = 10 * scale
        n_orders = 20 * scale
        n_items = 40 * scale

        customers = [
            (
                f"c{i}",
                f"{_FIRST[i % len(_FIRST)]}{i}",
                rng.choice(_CITIES),
                rng.choice(_SEGMENTS),
            )
            for i in range(n_customers)
        ]
        products = [
            (
                f"p{i}",
                f"prod{i}",
                rng.choice(_CATEGORIES),
                NULL if rng.random() < 0.15 else rng.randrange(5, 120),
            )
            for i in range(n_products)
        ]
        # Orders only reach the first three quarters of the customer base so
        # the antijoin / FOI-zero queries always have non-trivial answers.
        n_buyers = max(1, (3 * n_customers) // 4)
        orders = [
            (f"o{i}", f"c{rng.randrange(n_buyers)}", rng.randrange(1, 91))
            for i in range(n_orders)
        ]
        items = [
            (
                f"o{rng.randrange(n_orders)}",
                f"p{rng.randrange(n_products)}",
                rng.randrange(1, 6),
            )
            for i in range(n_items)
        ]
        return build_database(
            {
                "Customer": (("cid", "name", "city", "seg"), customers),
                "Product": (("pid", "pname", "category", "price"), products),
                "Orders": (("oid", "cid", "day"), orders),
                "Item": (("oid", "pid", "qty"), items),
                "CatParent": (("cat", "parent"), _CAT_PARENT),
            }
        )

    def queries(self):
        return (
            CorpusQuery(
                name="customers_in_city",
                features=("selection",),
                description="names of customers based in lyon",
                texts={
                    "sql": "select c.name from Customer c where c.city = 'lyon'",
                    "trc": "{c.name | c in Customer and c.city = 'lyon'}",
                    "datalog": 'Q(n) :- Customer(c, n, "lyon", s).',
                    "rel": 'def Q(name) : Customer(cid, name, "lyon", seg)',
                },
            ),
            CorpusQuery(
                name="orders_per_customer_fio",
                features=("grouping",),
                description="order count per customer that has orders (FIO)",
                texts={
                    "sql": (
                        "select o.cid, count(o.day) ct "
                        "from Orders o group by o.cid"
                    ),
                    "rel": "def Q(cid, ct) : ct = count[(oid, d) : Orders(oid, cid, d)]",
                },
            ),
            CorpusQuery(
                name="orders_per_customer_foi",
                features=("grouping", "correlated"),
                description="order count per customer, zeros included (FOI)",
                texts={
                    "sql": (
                        "select c.cid, (select count(o.day) from Orders o "
                        "where o.cid = c.cid) ct from Customer c"
                    ),
                    "datalog": (
                        "Q(c, ct) :- Customer(c, n, ci, s), "
                        "ct = count d : {Orders(o, c, d)}."
                    ),
                },
            ),
            CorpusQuery(
                name="busy_customers",
                features=("grouping", "correlated", "having"),
                description="customers with at least two orders (aggregate filter)",
                texts={
                    "sql": (
                        "select c.cid, (select count(o.day) from Orders o "
                        "where o.cid = c.cid) ct from Customer c "
                        "where (select count(o2.day) from Orders o2 "
                        "where o2.cid = c.cid) >= 2"
                    ),
                    "datalog": (
                        "Q(c, ct) :- Customer(c, n, ci, s), "
                        "ct = count d : {Orders(o, c, d)}, ct >= 2."
                    ),
                },
            ),
            CorpusQuery(
                name="customers_without_orders",
                features=("negation",),
                description="customers that never ordered (antijoin)",
                texts={
                    "sql": (
                        "select c.name from Customer c where not exists "
                        "(select 1 from Orders o where o.cid = c.cid)"
                    ),
                    "trc": (
                        "{c.name | c in Customer and "
                        "not exists o [o in Orders and o.cid = c.cid]}"
                    ),
                    "datalog": (
                        "HasOrder(c) :- Orders(o, c, d).\n"
                        "Q(n) :- Customer(c, n, ci, s), !HasOrder(c)."
                    ),
                },
            ),
            CorpusQuery(
                name="category_ancestors",
                features=("recursion",),
                compare="set",
                description="transitive closure of the category tree",
                texts={
                    "datalog": (
                        "Anc(c, p) :- CatParent(c, p).\n"
                        "Anc(c, a) :- CatParent(c, p), Anc(p, a)."
                    ),
                },
            ),
            CorpusQuery(
                name="cheaper_category_rivals",
                features=("theta-band", "correlated", "null-3vl"),
                description=(
                    "per product, how many same-category products are "
                    "strictly cheaper (θ-band; NULL prices never compare)"
                ),
                texts={
                    "sql": (
                        "select p.pid, (select count(p2.pid) from Product p2 "
                        "where p2.category = p.category and p2.price < p.price) ct "
                        "from Product p"
                    ),
                    "datalog": (
                        "Q(p, ct) :- Product(p, n, c, pr), "
                        "ct = count p2 : {Product(p2, n2, c, pr2), pr2 < pr}."
                    ),
                },
            ),
            CorpusQuery(
                name="price_not_in_toys",
                features=("negation", "null-3vl"),
                description=(
                    "products priced unlike every toy — NULL toy prices make "
                    "NOT IN vacuously empty under 3VL"
                ),
                texts={
                    "sql": (
                        "select p.pid from Product p where p.price not in "
                        "(select p2.price from Product p2 "
                        "where p2.category = 'toys')"
                    ),
                    "trc": (
                        "{p.pid | p in Product and not exists p2 "
                        "[p2 in Product and p2.category = 'toys' "
                        "and p2.price = p.price]}"
                    ),
                },
            ),
            CorpusQuery(
                name="ordered_products",
                features=("join",),
                compare="set",
                description="distinct products that appear on some order line",
                texts={
                    "sql": (
                        "select distinct p.pname from Product p, Item i "
                        "where i.pid = p.pid"
                    ),
                    "datalog": "Q(n) :- Product(p, n, c, pr), Item(o, p, q).",
                    "rel": "def Q(pname) : Product(pid, pname, c, pr) and Item(oid, pid, qty)",
                },
            ),
        )

    def nl_schema(self):
        return SchemaInfo(
            fact_table="Product",
            group_attr="category",
            measure_attr="price",
            entity_attr="pname",
            fact_alias="p",
        )

    def nl_cases(self):
        return (
            NlCase(
                request="average price per category",
                gold=(
                    "select p.category, avg(p.price) v "
                    "from Product p group by p.category"
                ),
            ),
            NlCase(
                request="how many products are there",
                gold="select count(*) ct from Product p",
            ),
            NlCase(
                request="products in the toys group",
                gold="select p.pname from Product p where p.category = 'toys'",
            ),
            NlCase(
                request="categories with total price at least 40",
                gold=(
                    "select p.category from Product p "
                    "group by p.category having sum(p.price) >= 40"
                ),
            ),
            # The grammar has no superlative template; scored as an expected
            # refusal so corpus accuracy is a real measurement.
            NlCase(request="most popular product this week", gold=None),
        )
