"""Aggregate evaluation over groups of rows.

ARC's conceptual evaluation strategy (Section 2.5 of the paper) defines
aggregates *over the full join*: the scope's satisfying rows are partitioned
by the grouping key, and each aggregate folds one designated expression over
the rows of a group.  Multiple aggregates share the same scope (unlike the
Klug/Hella formalisms, which need one scope per aggregate).

SQL semantics are followed for inputs: NULL argument values are skipped by
every aggregate except ``count(*)``.  What an aggregate returns over an
*empty* input is a :class:`~repro.core.conventions.EmptyAggregate`
convention — SQL says NULL, Soufflé says the neutral element (Section 2.6).
"""

from __future__ import annotations

from ..core.conventions import EmptyAggregate
from ..data.values import NULL, is_null
from ..errors import EvaluationError


def aggregate(func, values, conventions):
    """Fold *values* (an iterable of (value, multiplicity) pairs) with *func*.

    ``values`` are the evaluated aggregate arguments for every row of the
    group, with bag multiplicities; ``func`` is one of
    :data:`repro.core.nodes.AGGREGATE_FUNCTIONS`.  ``count`` with
    ``values=None`` is not handled here — the caller passes row
    multiplicities for ``count(*)``.
    """
    distinct = func.endswith("distinct")
    base = func[: -len("distinct")] if distinct else func

    non_null = [(v, m) for v, m in values if not is_null(v)]
    if distinct:
        non_null = [(v, 1) for v in {v for v, _ in non_null}]

    if base == "count":
        return sum(m for _, m in non_null)
    if not non_null:
        return _empty_value(base, conventions)
    if base == "sum":
        return _sum(non_null)
    if base == "avg":
        total = _sum(non_null)
        count = sum(m for _, m in non_null)
        return total / count
    if base == "min":
        return min(v for v, _ in non_null)
    if base == "max":
        return max(v for v, _ in non_null)
    raise EvaluationError(f"unknown aggregate function {func!r}")


def count_rows(multiplicities):
    """``count(*)``: the number of rows in the group (NULLs included)."""
    return sum(multiplicities)


def _sum(pairs):
    total = 0
    for value, mult in pairs:
        total += value * mult
    return total


def _empty_value(base, conventions):
    """Value of a non-count aggregate over an empty (or all-NULL) group."""
    if conventions.empty_aggregate is EmptyAggregate.ZERO:
        # Soufflé's convention: the neutral element.  Soufflé itself errors
        # on min/max over empty sets; we use 0 to keep the family total,
        # documented in DESIGN.md.
        return 0
    return NULL
