"""Abstract relations: named sub-query modules without standalone extensions.

Section 2.13.2 of the paper: an abstract relation (e.g. the ``Subset``
module of the unique-set query, Example 2) is defined *within* the
relational language but may be domain-dependent — taken in isolation it has
no well-defined extension.  Inside a safe surrounding query it denotes the
intended relation, because the surrounding query supplies values for its
head attributes.

The evaluator therefore treats an abstract relation like an external one,
accessed through derived access patterns:

* **membership test** — when every head attribute is bound by equality
  predicates of the surrounding scope, the definition body is evaluated as
  a boolean sentence with the head tuple in scope (this is how ``Subset``
  is used in query (24));
* **functional completion** — when the body is a plain conjunction of
  head-assignment predicates (the ``Minus``-style comprehension definitions
  of Example 1), unknown attributes are derived from known ones by
  iterating the assignments.
"""

from __future__ import annotations

from ..core import nodes as n
from ..data.relation import Tuple
from ..data.values import Truth
from ..errors import EvaluationError


class AbstractSource:
    """Adapter exposing an abstract definition through access patterns."""

    def __init__(self, collection, evaluator):
        self._collection = collection
        self._evaluator = evaluator
        self.name = collection.head.name
        self.attrs = tuple(collection.head.attrs)
        self._functional = self._functional_assignments()

    def _functional_assignments(self):
        """``attr -> expr`` for bodies that are conjunctions of
        head-assignments over head attributes (no quantifiers)."""
        body = self._collection.body
        head = self._collection.head
        assignments = {}
        for conjunct in n.conjuncts(body):
            if not isinstance(conjunct, n.Comparison) or conjunct.op != "=":
                return {}
            for side, other in ((conjunct.left, conjunct.right), (conjunct.right, conjunct.left)):
                if (
                    isinstance(side, n.Attr)
                    and side.var == head.name
                    and side.attr in head.attrs
                    and all(
                        isinstance(a, n.Attr) and a.var == head.name
                        for a in other.walk()
                        if isinstance(a, n.Attr)
                    )
                ):
                    assignments[side.attr] = other
                    break
            else:
                return {}
        return assignments

    # -- the access-pattern protocol used by the evaluator ---------------------

    def resolvable(self, known):
        """Can the definition produce rows given these bound attributes?"""
        if set(known) >= set(self.attrs):
            return True
        return bool(self._derive(dict(known), check=False))

    def complete(self, known):
        if set(known) >= set(self.attrs):
            values = {a: known[a] for a in self.attrs}
            if self._membership(values):
                return [values]
            return []
        derived = self._derive(dict(known), check=True)
        if derived is None:
            raise EvaluationError(
                f"abstract relation {self.name!r}: attributes "
                f"{sorted(set(self.attrs) - set(known))} cannot be derived from "
                f"{sorted(known)}"
            )
        return derived

    # -- internals -------------------------------------------------------------

    def _membership(self, values):
        env = {self.name: Tuple(values)}
        truth = self._evaluator._truth(self._collection.body, env)
        return truth is Truth.TRUE

    def _derive(self, known, *, check):
        """Iteratively apply functional assignments to fill missing attrs.

        Returns ``[full-row]`` / ``[]`` when successful (``check=True``
        verifies residual predicates via membership), a truthy marker when
        ``check=False`` and derivation would succeed, or None/False when the
        attributes cannot be determined.
        """
        if not self._functional:
            return None if check else False
        values = dict(known)
        progress = True
        while progress and set(values) < set(self.attrs):
            progress = False
            for attr, expr in self._functional.items():
                if attr in values:
                    continue
                needed = {a.attr for a in expr.walk() if isinstance(a, n.Attr)}
                if needed <= set(values):
                    row = Tuple(values)
                    env = {self.name: row}
                    try:
                        values[attr] = self._evaluator._eval_expr(expr, env)
                    except Exception:
                        return None if check else False
                    progress = True
        if set(values) < set(self.attrs):
            return None if check else False
        if not check:
            return True
        full = {a: values[a] for a in self.attrs}
        if self._membership(full):
            return [full]
        return []
