"""Scope compilation: hash-indexed execution plans for quantifier scopes.

The reference strategy in :mod:`repro.engine.evaluator` enumerates a scope's
bindings as textbook nested loops and probes every row formula only after a
full combination is formed — quadratic or worse on workloads that a hash
join evaluates in linear time.  This module compiles each quantifier scope
once into an execution plan that the evaluator runs instead:

* **Conjunct classification.**  Row formulas touching no scope variable are
  hoisted in front of the loops; formulas touching a deferred
  (external/abstract) binding stay with the deferred-resolution tail; every
  other formula is pushed down to the earliest binding at which all of its
  variables are bound.
* **Equality extraction.**  Conjuncts of the shape ``r.a = <expr>`` whose
  right side is computable before ``r`` is enumerated become hash-index
  probes into ``r``'s relation (:meth:`repro.data.relation.Relation.index_on`).
* **Greedy join ordering.**  Concrete bindings are reordered so that a
  binding with a usable equality is probed via its index as soon as the
  driving side is bound; bindings without one fall back to scan + residual
  filters.  Lateral (nested-collection) bindings keep their dependency
  order.
* **Grouping fusion.**  A grouping scope over a single stored relation is
  executed as one tight scan-and-bucket loop with streaming aggregate
  finalization, bypassing the per-row environment/generator machinery.

Plans are cached per AST node (weakly, so temporary fixpoint rewrites do
not leak) and validated against the evaluator's catalog before reuse, so
repeated lateral re-evaluation never re-plans.  Index probes are *exact*
under both null conventions: a probe key containing NULL yields no rows
under three-valued logic (where ``x = NULL`` is never TRUE) and probes the
NULL bucket under two-valued logic (where ``NULL = NULL`` is TRUE and the
Python-level hash/equality of the NULL marker agrees).

The planner only accelerates *strict* enumeration (combinations whose row
formulas must all be TRUE).  Non-strict boolean scopes need UNKNOWN
propagation — dropping a row whose equality is UNKNOWN would change the
Kleene fold — so they keep the reference strategy.

One documented deviation: like every SQL optimizer, pushdown leaves the
*evaluation order* of predicates unspecified.  A predicate whose
evaluation raises (e.g. heterogeneous arithmetic) may be reached by the
planner for partial combinations the reference strategy never forms —
when a later binding's relation turns out to be empty — so such degenerate
queries can error under the planner while the reference returns empty.
On queries whose predicates evaluate cleanly (everything the differential
harness covers), results and errors agree exactly.
"""

from __future__ import annotations

import weakref
from collections import Counter

from ..core import nodes as n
from ..data.relation import Tuple
from ..data.values import NULL, Truth, is_null
from ..errors import EvaluationError
from ..util.deadline import STRIDE as _DEADLINE_STRIDE
from . import aggregates as agg_lib
from . import decorrelate

#: Power-of-two mask for the inline deadline stride check in the hot loops:
#: ``ops & _DL_MASK == 0`` every ``STRIDE`` rows triggers one clock read.
_DL_MASK = _DEADLINE_STRIDE - 1

_MISSING = object()

_STREAMABLE_AGGS = frozenset(["sum", "count", "avg", "min", "max"])


class ExecutionStats:
    """Counters exposing what the execution layer actually did.

    Used by the perf-regression smoke tests to assert complexity bounds
    (an indexed join must do O(N) probes, not O(N²) enumerations) without
    timing anything.
    """

    __slots__ = (
        "index_probes",
        "rows_enumerated",
        "combos_emitted",
        "plans_compiled",
        "plan_cache_hits",
        "grouped_fast_paths",
        "laterals_decorrelated",  # lateral steps compiled onto the FIO index
        "lateral_reevals",  # per-frame inner-collection evaluations (FOI)
        "decorr_index_builds",  # FIO hash-index materializations (cache misses)
        "lateral_probe_misses",  # γ∅ probe misses (compensated, not re-evaluated)
        "band_index_builds",  # θ-band index materializations (cache misses)
        "domain_join_compensations",  # batched γ∅ empty-frame syntheses
        "tribucket_probes",  # probes against an UNKNOWN-aware (3VL) index
        "timeouts",  # runs aborted by QueryTimeout (deadline exceeded)
        "budget_exceeded",  # runs aborted by BudgetExceeded (row budget)
        "retries",  # transient sqlite errors absorbed by the retry loop
        "breaker_trips",  # circuit-breaker closed→open transitions
    )

    def __init__(self):
        self.reset()

    def reset(self):
        self.index_probes = 0
        self.rows_enumerated = 0
        self.combos_emitted = 0
        self.plans_compiled = 0
        self.plan_cache_hits = 0
        self.grouped_fast_paths = 0
        self.laterals_decorrelated = 0
        self.lateral_reevals = 0
        self.decorr_index_builds = 0
        self.lateral_probe_misses = 0
        self.band_index_builds = 0
        self.domain_join_compensations = 0
        self.tribucket_probes = 0
        self.timeouts = 0
        self.budget_exceeded = 0
        self.retries = 0
        self.breaker_trips = 0

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"ExecutionStats({inner})"


class BindingStep:
    """One binding of a compiled scope: an index probe or a filtered scan."""

    __slots__ = (
        "binding",
        "var",
        "relation_name",
        "lookup_attrs",  # tuple of attrs probed via hash index, or None
        "key_exprs",  # exprs producing the probe key, aligned with lookup_attrs
        "filters",  # formulas checked per candidate row (index path)
        "scan_filters",  # filters + consumed equalities (scan fallback path)
        "decorr",  # CorrelationSpec probing the FIO index (laterals), or None
    )

    def __init__(self, binding):
        self.binding = binding
        self.var = binding.var
        self.relation_name = (
            binding.source.name if isinstance(binding.source, n.RelationRef) else None
        )
        self.lookup_attrs = None
        self.key_exprs = ()
        self.filters = []
        self.scan_filters = []
        self.decorr = None


class CompiledScope:
    """The executable plan for one quantifier scope."""

    __slots__ = (
        "assumptions",
        "steps",
        "pre_filters",
        "final_filters",
        "deferred",
        "deferred_residual",
        "grouped",
    )

    def __init__(self):
        self.assumptions = ()
        self.steps = []
        self.pre_filters = []
        self.final_filters = []
        self.deferred = []
        self.deferred_residual = []
        self.grouped = None

    # -- generic strict enumeration ------------------------------------------

    def execute(self, ev, env, mult=1):
        """Yield (env, mult) for every combination satisfying the scope.

        Yielded environments are fresh dicts; the working frame is mutated
        in place (push/pop) and never escapes, so abandoning the generator
        mid-iteration is safe.
        """
        truth = ev._truth
        for formula in self.pre_filters:
            if truth(formula, env) is not Truth.TRUE:
                return
        stats = ev.stats
        # Deadline guard: each row loop below is specialized into an
        # unarmed variant (no added per-row work at all) and an armed one
        # carrying a closure-local stride counter — an integer bump plus a
        # bitwise mask per row, with the clock read (a method call)
        # amortized to once per ``STRIDE`` rows.  The duplication is
        # deliberate: a shared loop would pay an identity test per row on
        # both paths, which is measurable on bucket-per-frame workloads.
        deadline = ev.deadline
        dl_ops = 0
        dl_mask = _DL_MASK
        is_set = ev.conventions.is_set
        three_valued = ev.conventions.three_valued
        steps = self.steps
        last = len(steps)
        frame = dict(env)
        # Per-execute memo of FIO indexes: materialize() resolves the anchor
        # relations and checks their shared caches, which is wasteful per
        # frame; relations cannot mutate mid-execute, so one lookup per
        # step suffices (still lazy — a step never reached never builds).
        fio_indexes = {}

        def run(depth, mult):
            nonlocal dl_ops
            if depth == last:
                for formula in self.final_filters:
                    if truth(formula, frame) is not Truth.TRUE:
                        return
                if self.deferred:
                    yield from ev._resolve_deferred(
                        list(self.deferred),
                        self.deferred_residual,
                        dict(frame),
                        mult,
                        strict=True,
                    )
                else:
                    stats.combos_emitted += 1
                    yield dict(frame), mult
                return
            step = steps[depth]
            var = step.var
            saved = frame.get(var, _MISSING)
            try:
                if step.relation_name is None:
                    filters = step.filters
                    decorr = step.decorr
                    if decorr is not None:
                        index = fio_indexes.get(depth, _MISSING)
                        if index is _MISSING:
                            index = fio_indexes[depth] = decorr.materialize(ev)
                    else:
                        index = None
                    if index is not None:
                        # Decorrelated (FIO) lateral: probe the materialized
                        # index instead of re-evaluating the inner
                        # collection per frame.
                        key = []
                        usable = True
                        for expr in decorr.outer_exprs:
                            try:
                                value = ev._eval_expr(expr, frame)
                            except EvaluationError:
                                # Key not computable: the per-frame path
                                # below surfaces the same error row by row.
                                usable = False
                                break
                            if (three_valued and is_null(value)) or value != value:
                                # NULL under 3VL / NaN under any convention:
                                # the correlation equality is never TRUE.
                                key = None
                                break
                            key.append(value)
                        band_value = None
                        if usable and decorr.strategy == "band":
                            try:
                                band_value = ev._eval_expr(
                                    decorr.band_outer_expr, frame
                                )
                            except EvaluationError:
                                usable = False
                        if usable:
                            stats.index_probes += 1
                            if index.tribucket:
                                stats.tribucket_probes += 1
                            if decorr.strategy == "band":
                                # θ-band probe: bisect the sorted entries;
                                # γ∅ scopes fold prefix-aggregate arrays at
                                # the boundary (one row, count-bug exact).
                                bucket = index.probe(
                                    None if key is None else tuple(key),
                                    band_value,
                                    is_set,
                                )
                            else:
                                bucket = (
                                    None if key is None else index.get(tuple(key))
                                )
                                if bucket is None and decorr.empty_group:
                                    # γ∅ emits one row even over an empty
                                    # group (the count bug's asymmetry):
                                    # every missing key maps to one shared
                                    # frame — the domain-join compensation,
                                    # synthesized once per index.
                                    stats.lateral_probe_misses += 1
                                    bucket = index.empty_group_items(
                                        ev, step.binding.source, frame, stats
                                    )
                            if deadline is None:
                                for row, row_mult in bucket or ():
                                    stats.rows_enumerated += 1
                                    frame[var] = row
                                    for formula in filters:
                                        if truth(formula, frame) is not Truth.TRUE:
                                            break
                                    else:
                                        yield from run(depth + 1, mult * row_mult)
                                return
                            for row, row_mult in bucket or ():
                                stats.rows_enumerated += 1
                                dl_ops += 1
                                if not dl_ops & dl_mask:
                                    deadline.check()
                                frame[var] = row
                                for formula in filters:
                                    if truth(formula, frame) is not Truth.TRUE:
                                        break
                                else:
                                    yield from run(depth + 1, mult * row_mult)
                            return
                    # Per-frame (FOI) lateral: the inner collection is
                    # re-evaluated under every outer environment.
                    if deadline is None:
                        for row, row_mult in ev._binding_rows(step.binding, frame):
                            stats.rows_enumerated += 1
                            frame[var] = row
                            for formula in filters:
                                if truth(formula, frame) is not Truth.TRUE:
                                    break
                            else:
                                yield from run(depth + 1, mult * row_mult)
                        return
                    for row, row_mult in ev._binding_rows(step.binding, frame):
                        stats.rows_enumerated += 1
                        dl_ops += 1
                        if not dl_ops & dl_mask:
                            deadline.check()
                        frame[var] = row
                        for formula in filters:
                            if truth(formula, frame) is not Truth.TRUE:
                                break
                        else:
                            yield from run(depth + 1, mult * row_mult)
                    return
                relation = ev._resolve_relation(step.relation_name)
                rows_map = relation._rows
                if not rows_map:
                    return
                if step.lookup_attrs is not None:
                    key = []
                    usable = True
                    for expr in step.key_exprs:
                        try:
                            value = ev._eval_expr(expr, frame)
                        except EvaluationError:
                            usable = False
                            break
                        if three_valued and is_null(value):
                            # x = NULL is never TRUE under 3VL: no rows.
                            return
                        if value != value:
                            # NaN keys: x = NaN is FALSE for every x, but a
                            # dict probe would match the identical NaN object
                            # by identity — so short-circuit to no rows.
                            return
                        key.append(value)
                    if usable:
                        stats.index_probes += 1
                        bucket = relation.index_on(step.lookup_attrs).get(tuple(key))
                        if not bucket:
                            return
                        filters = step.filters
                        if deadline is None:
                            for row, row_mult in bucket:
                                stats.rows_enumerated += 1
                                frame[var] = row
                                for formula in filters:
                                    if truth(formula, frame) is not Truth.TRUE:
                                        break
                                else:
                                    yield from run(
                                        depth + 1, mult if is_set else mult * row_mult
                                    )
                            return
                        for row, row_mult in bucket:
                            stats.rows_enumerated += 1
                            dl_ops += 1
                            if not dl_ops & dl_mask:
                                deadline.check()
                            frame[var] = row
                            for formula in filters:
                                if truth(formula, frame) is not Truth.TRUE:
                                    break
                            else:
                                yield from run(
                                    depth + 1, mult if is_set else mult * row_mult
                                )
                        return
                    # Key not computable (e.g. unbound outer variable): fall
                    # back to a scan so the equality surfaces the same error
                    # the reference strategy would raise, row by row.
                filters = step.scan_filters
                if is_set:
                    if deadline is None:
                        for row in rows_map:
                            stats.rows_enumerated += 1
                            frame[var] = row
                            for formula in filters:
                                if truth(formula, frame) is not Truth.TRUE:
                                    break
                            else:
                                yield from run(depth + 1, mult)
                        return
                    for row in rows_map:
                        stats.rows_enumerated += 1
                        dl_ops += 1
                        if not dl_ops & dl_mask:
                            deadline.check()
                        frame[var] = row
                        for formula in filters:
                            if truth(formula, frame) is not Truth.TRUE:
                                break
                        else:
                            yield from run(depth + 1, mult)
                else:
                    if deadline is None:
                        for row, row_mult in rows_map.items():
                            stats.rows_enumerated += 1
                            frame[var] = row
                            for formula in filters:
                                if truth(formula, frame) is not Truth.TRUE:
                                    break
                            else:
                                yield from run(depth + 1, mult * row_mult)
                        return
                    for row, row_mult in rows_map.items():
                        stats.rows_enumerated += 1
                        dl_ops += 1
                        if not dl_ops & dl_mask:
                            deadline.check()
                        frame[var] = row
                        for formula in filters:
                            if truth(formula, frame) is not Truth.TRUE:
                                break
                        else:
                            yield from run(depth + 1, mult * row_mult)
            finally:
                if saved is _MISSING:
                    frame.pop(var, None)
                else:
                    frame[var] = saved

        yield from run(0, mult)

    # -- fused grouping ---------------------------------------------------------

    def supports_grouped(self):
        return (
            self.grouped is not None
            and not self.deferred
            and not self.final_filters
            and len(self.steps) == 1
            and self.steps[0].relation_name is not None
        )

    def _grouped_buckets(self, ev, env):
        """Partition the single binding's rows into per-group buckets.

        Returns a dict mapping raw key tuples to buckets — lists of
        ``(row, mult)`` pairs in relation iteration order — or None when
        the shape cannot be handled (caller falls back to the generic
        path, which also surfaces any schema errors with the reference
        wording).  The uncorrelated unfiltered case returns the relation's
        cached hash index over the grouping attributes directly, so the
        partition survives across evaluations (callers must not mutate
        the buckets).
        """
        spec = self.grouped
        step = self.steps[0]
        try:
            relation = ev._resolve_relation(step.relation_name)
        except EvaluationError:
            return None
        if not spec.row_attrs <= relation._schema_set:
            return None
        truth = ev._truth
        for formula in self.pre_filters:
            if truth(formula, env) is not Truth.TRUE:
                return {}
        three_valued = ev.conventions.three_valued
        key_attrs = spec.key_attrs
        filters = step.filters if step.lookup_attrs is not None else step.scan_filters
        ev.stats.grouped_fast_paths += 1
        deadline = ev.deadline
        if deadline is not None:
            # The fused scans below are single-pass over one stored relation
            # (bounded work), so one clock read per partition suffices.
            deadline.check()

        # Row source: full relation or one index bucket (correlated scopes).
        pairs = None
        if step.lookup_attrs is not None:
            key = []
            for expr in step.key_exprs:
                try:
                    value = ev._eval_expr(expr, env)
                except EvaluationError:
                    return None
                if (three_valued and is_null(value)) or value != value:
                    # NULL under 3VL, or NaN under any convention: the
                    # equality can never be TRUE, so the scope has no rows.
                    key = None
                    break
                key.append(value)
            if key is None:
                pairs = []
            else:
                ev.stats.index_probes += 1
                pairs = relation.index_on(step.lookup_attrs).get(tuple(key), [])
        elif not filters and key_attrs is not None:
            # The grouping partition IS a hash index over the key attrs:
            # reuse (and cache) it on the relation.
            ev.stats.index_probes += 1
            ev.stats.rows_enumerated += relation.distinct_count()
            return relation.index_on(key_attrs)

        if pairs is None:
            source = relation._rows.items()
        else:
            source = pairs

        groups = {}
        if not filters and key_attrs is not None:
            # Tight loop: raw-value keys, no per-row environment.
            count = 0
            if len(key_attrs) == 1:
                attr = key_attrs[0]
                for entry in source:
                    count += 1
                    key = (entry[0]._values[attr],)
                    bucket = groups.get(key)
                    if bucket is None:
                        groups[key] = [entry]
                    else:
                        bucket.append(entry)
            elif key_attrs:
                for entry in source:
                    count += 1
                    values = entry[0]._values
                    key = tuple(values[a] for a in key_attrs)
                    bucket = groups.get(key)
                    if bucket is None:
                        groups[key] = [entry]
                    else:
                        bucket.append(entry)
            else:
                bucket = list(source)
                count = len(bucket)
                if bucket:
                    groups[()] = bucket
            ev.stats.rows_enumerated += count
            return groups

        # Generic loop: per-row frame for filters and expression keys.
        frame = dict(env)
        var = step.var
        key_exprs = spec.key_exprs
        eval_expr = ev._eval_expr
        dl_ops = 0
        for entry in source:
            row = entry[0]
            ev.stats.rows_enumerated += 1
            if deadline is not None:
                dl_ops += 1
                if not dl_ops & _DL_MASK:
                    deadline.check()
            frame[var] = row
            keep = True
            for formula in filters:
                if truth(formula, frame) is not Truth.TRUE:
                    keep = False
                    break
            if not keep:
                continue
            if key_attrs is not None:
                values = row._values
                key = tuple(values[a] for a in key_attrs)
            else:
                key = tuple(eval_expr(expr, frame) for expr in key_exprs)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [entry]
            else:
                bucket.append(entry)
        frame.pop(var, None)
        return groups

    def _finalize_group(self, ev, env, bucket, is_set):
        """Compute (assigns dict or None-to-skip) for one group's bucket.

        *bucket* holds (row, stored-multiplicity) pairs; under set
        conventions the multiplicities are ignored (each distinct row
        counts once).
        """
        spec = self.grouped
        var = self.steps[0].var
        conventions = ev.conventions
        rep_row = bucket[0][0] if bucket else None

        agg_values = {}
        if spec.agg_specs:
            for agg_id, func, arg_kind, payload in spec.agg_specs:
                agg_values[agg_id] = _fold_aggregate(
                    ev, var, env, bucket, is_set, func, arg_kind, payload, conventions
                )

        rep_env = None
        if spec.needs_rep_env:
            if rep_row is not None:
                rep_env = dict(env)
                rep_env[var] = rep_row
            else:
                rep_env = env

        for predicate in spec.agg_comparisons:
            if ev._truth(predicate, rep_env, agg_values) is not Truth.TRUE:
                return None

        assigns = {}
        for kind, attr, payload, expr in spec.assigns:
            if rep_row is not None:
                if kind == "attr":
                    value = rep_row._values[payload]
                elif kind == "const":
                    value = payload
                else:
                    value = ev._eval_expr(expr, rep_env)
            else:
                # Empty γ∅ group: mirror the reference fallback (outer env
                # only), including its error wording.
                value = ev._eval_group_expr(expr, env, env, bucket)
            if attr in assigns and assigns[attr] != value:
                return None
            assigns[attr] = value
        for attr, kind, payload in spec.agg_assigns:
            if kind == "agg":
                assigns[attr] = agg_values[payload]
            else:
                assigns[attr] = ev._eval_expr(payload, rep_env, agg_values)
        return assigns

    def grouped_counter(self, ev, env, head_attrs):
        """Whole-collection fused grouping: Counter of output Tuples.

        Returns None when the shape is unsupported; the fully-simple shape
        (plain key/constant assignments, streamable aggregates, no HAVING)
        runs one inlined loop per group with no interpretation overhead.
        """
        if not self.supports_grouped():
            return None
        spec = self.grouped
        if spec.out_attrs != head_attrs:
            return None
        is_set = ev.conventions.is_set

        # A fully-simple, uncorrelated, unfiltered grouping depends only on
        # the relation's contents, so its result is a materialized aggregate
        # the relation can cache (invalidated by Relation.add, like indexes).
        step = self.steps[0]
        cache_relation = None
        cache_tag = None
        if (
            spec.simple is not None
            and is_set
            and step.lookup_attrs is None
            and not step.scan_filters
            and not self.pre_filters
            and spec.key_attrs is not None
        ):
            try:
                relation = ev._resolve_relation(step.relation_name)
            except EvaluationError:
                relation = None
            if relation is not None and spec.row_attrs <= relation._schema_set:
                cache_tag = ("γ", ev.conventions.empty_aggregate)
                cached = relation.derived_get(spec, cache_tag)
                if cached is not None:
                    ev.stats.grouped_fast_paths += 1
                    return Counter(cached)
                cache_relation = relation

        groups = self._grouped_buckets(ev, env)
        if groups is None:
            return None
        out = Counter()
        adopt = Tuple._adopt
        if spec.simple is not None and is_set and groups:
            template, simple_aggs = spec.simple
            conventions = ev.conventions
            empty_cache = {}
            for bucket in groups.values():
                agg_vals = []
                for func, attr in simple_aggs:
                    if attr is None:
                        agg_vals.append(len(bucket))
                        continue
                    if func == "sum":
                        # Optimistic: a NULL anywhere raises TypeError
                        # (0 + NULL is undefined), falling back to the
                        # filtered path below.
                        try:
                            agg_vals.append(
                                sum([pair[0]._values[attr] for pair in bucket])
                            )
                            continue
                        except TypeError:
                            pass
                    values = [
                        v for pair in bucket if (v := pair[0]._values[attr]) is not NULL
                    ]
                    if func == "count":
                        agg_vals.append(len(values))
                    elif not values:
                        value = empty_cache.get(func, _MISSING)
                        if value is _MISSING:
                            value = empty_cache[func] = agg_lib.aggregate(
                                func, (), conventions
                            )
                        agg_vals.append(value)
                    elif func == "sum":
                        agg_vals.append(sum(values))
                    elif func == "avg":
                        agg_vals.append(sum(values) / len(values))
                    elif func == "min":
                        agg_vals.append(min(values))
                    else:
                        agg_vals.append(max(values))
                rep = bucket[0][0]._values
                assigns = {}
                for attr, kind, payload in template:
                    if kind == "rep":
                        assigns[attr] = rep[payload]
                    elif kind == "agg":
                        assigns[attr] = agg_vals[payload]
                    else:
                        assigns[attr] = payload
                out[adopt(assigns)] += 1
            if cache_relation is not None:
                cache_relation.derived_put(spec, cache_tag, dict(out))
            return out
        if not groups and spec.empty_group:
            assigns = self._finalize_group(ev, env, [], is_set)
            if assigns is not None:
                out[adopt(assigns)] += 1
            return out
        for bucket in groups.values():
            assigns = self._finalize_group(ev, env, bucket, is_set)
            if assigns is not None:
                out[adopt(assigns)] += 1
        return out

    def grouped_rows(self, ev, env):
        """Fused grouped evaluation yielding (assigns, 1) per surviving group.

        Returns None when the scope shape is unsupported (caller uses the
        generic path).
        """
        if not self.supports_grouped():
            return None
        groups = self._grouped_buckets(ev, env)
        if groups is None:
            return None
        spec = self.grouped
        is_set = ev.conventions.is_set

        def emit():
            if not groups and spec.empty_group:
                assigns = self._finalize_group(ev, env, [], is_set)
                if assigns is not None:
                    yield assigns, 1
                return
            for bucket in groups.values():
                assigns = self._finalize_group(ev, env, bucket, is_set)
                if assigns is not None:
                    yield assigns, 1

        return emit()


class _GroupedSpec:
    """Compile-time description of a fusable grouping scope."""

    __slots__ = (
        "key_attrs",  # tuple of attr names when every key is Attr(var), else None
        "key_exprs",  # the raw key expressions (generic fallback)
        "empty_group",  # γ∅: one group even over empty input
        "assigns",  # [(kind, out_attr, payload, expr)]
        "agg_assigns",  # [(out_attr, 'agg'|'expr', payload)]
        "agg_specs",  # [(id, func, arg_kind, payload)]
        "agg_comparisons",
        "needs_rep_env",
        "row_attrs",  # attr names read straight off scanned rows
        "out_attrs",  # frozenset of produced head attributes
        "simple",  # (output template, streamable agg list) or None
        "__weakref__",  # materialized results are cached per-relation, keyed here
    )


def _fold_aggregate(ev, var, env, bucket, is_set, func, arg_kind, payload, conventions):
    """Aggregate one group's bucket, streaming the common cases.

    *bucket* holds (row, stored-multiplicity) pairs; set conventions
    ignore the stored multiplicities (each distinct row counts once).
    """
    if arg_kind == "star":
        if is_set:
            return len(bucket)
        return agg_lib.count_rows(m for _, m in bucket)
    if arg_kind == "attr" and func in _STREAMABLE_AGGS and is_set:
        values = [
            v for pair in bucket if (v := pair[0]._values[payload]) is not NULL
        ]
        if func == "count":
            return len(values)
        if not values:
            return agg_lib.aggregate(func, (), conventions)
        if func == "sum":
            return sum(values)
        if func == "avg":
            return sum(values) / len(values)
        if func == "min":
            return min(values)
        return max(values)
    # Generic / distinct / bag aggregates: extract pairs and reuse the
    # aggregate library so conventions (empty group, distinct) stay
    # identical to the reference path.
    if arg_kind == "attr":
        if is_set:
            pairs = [(row._values[payload], 1) for row, _ in bucket]
        else:
            pairs = [(row._values[payload], mult) for row, mult in bucket]
    else:
        frame = dict(env)
        pairs = []
        for row, mult in bucket:
            frame[var] = row
            pairs.append((ev._eval_expr(payload, frame), 1 if is_set else mult))
    return agg_lib.aggregate(func, pairs, conventions)


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def compile_scope(evaluator, quant, scope_plan):
    """Compile one quantifier scope into a :class:`CompiledScope`."""
    compiled = compile_bindings(evaluator, quant.bindings, scope_plan.row_formulas)
    if quant.grouping is not None and quant.join is None:
        compiled.grouped = _compile_grouped(quant, scope_plan, compiled)
    return compiled


def scope_assumptions(evaluator, bindings):
    """How each binding classifies under *evaluator*'s current catalog.

    Compiled plans embed this classification; a cached plan is reused only
    when it still matches (a name may be a stored relation in one catalog
    and an external/abstract source in another, and a lateral may be
    decorrelated under one evaluator but per-row under another — the
    decorrelation decision is data-dependent, so it is re-probed on every
    lookup rather than frozen into the plan).
    """
    kinds = []
    for binding in bindings:
        if evaluator._is_deferred(binding):
            kinds.append((binding.var, "deferred"))
        elif isinstance(binding.source, n.Collection):
            if decorrelate.plan_for(evaluator, binding.source)[0] is not None:
                kinds.append((binding.var, "fio"))
            else:
                kinds.append((binding.var, "lateral"))
        else:
            kinds.append((binding.var, "stored"))
    return tuple(kinds)


def compile_bindings(evaluator, bindings, row_formulas):
    """Compile a binding list + row formulas into a :class:`CompiledScope`."""
    evaluator.stats.plans_compiled += 1
    compiled = CompiledScope()
    bindings = list(bindings)
    compiled.assumptions = scope_assumptions(evaluator, bindings)
    concrete = []
    for binding, (_, kind) in zip(bindings, compiled.assumptions):
        if kind == "deferred":
            compiled.deferred.append(binding)
        else:
            concrete.append(binding)
    scope_vars = {b.var for b in bindings}
    deferred_vars = {b.var for b in compiled.deferred}

    pending = []  # [formula, needed scope vars, consumed?]
    for formula in row_formulas:
        needs = n.vars_used(formula) & scope_vars
        if not needs:
            compiled.pre_filters.append(formula)
        elif needs & deferred_vars:
            compiled.deferred_residual.append(formula)
        else:
            pending.append([formula, needs, False])

    # Ordering dependencies: a lateral binding may reference any variable
    # introduced syntactically before it (vars_used over-approximates —
    # shadowed inner names just force the syntactic order, which is safe).
    position = {id(b): i for i, b in enumerate(concrete)}
    deps = {}
    earlier = set()
    for binding in concrete:
        if isinstance(binding.source, n.Collection):
            deps[id(binding)] = n.vars_used(binding.source) & earlier
        else:
            deps[id(binding)] = set()
        earlier.add(binding.var)

    bound = set()
    remaining = list(concrete)
    while remaining:
        candidates = [b for b in remaining if not (deps[id(b)] - bound)]
        best = None
        best_key = None
        best_eqs = None
        for binding in candidates:
            if isinstance(binding.source, n.RelationRef):
                eqs = _usable_equalities(binding, pending, bound)
            else:
                eqs = {}
            key = (len(eqs), -position[id(binding)])
            if best is None or key > best_key:
                best, best_key, best_eqs = binding, key, eqs
        step = BindingStep(best)
        if step.relation_name is None and isinstance(best.source, n.Collection):
            step.decorr = decorrelate.plan_for(evaluator, best.source)[0]
            if step.decorr is not None:
                evaluator.stats.laterals_decorrelated += 1
        remaining.remove(best)
        consumed_eqs = []
        if best_eqs:
            attrs = tuple(sorted(best_eqs))
            step.lookup_attrs = attrs
            step.key_exprs = tuple(best_eqs[a][1] for a in attrs)
            for attr in attrs:
                entry = best_eqs[attr][0]
                entry[2] = True
                consumed_eqs.append(entry[0])
        bound.add(best.var)
        for entry in pending:
            formula, needs, taken = entry
            if not taken and needs <= bound:
                step.filters.append(formula)
                entry[2] = True
        step.scan_filters = consumed_eqs + step.filters
        compiled.steps.append(step)

    # Safety net: anything left unconsumed is checked once per combination.
    compiled.final_filters = [entry[0] for entry in pending if not entry[2]]
    return compiled


def _usable_equalities(binding, pending, bound):
    """Equality conjuncts that can drive an index probe into *binding*.

    Returns ``{attr: (pending entry, key expr)}`` for conjuncts of the form
    ``binding.attr = expr`` whose other side references only already-bound
    scope variables (outer variables are bound by construction).
    """
    found = {}
    var = binding.var
    for entry in pending:
        formula, needs, taken = entry
        if taken or not isinstance(formula, n.Comparison) or formula.op != "=":
            continue
        if needs - bound - {var}:
            continue
        for side, other in (
            (formula.left, formula.right),
            (formula.right, formula.left),
        ):
            if (
                isinstance(side, n.Attr)
                and side.var == var
                and side.attr not in found
                and var not in n.vars_used(other)
            ):
                found[side.attr] = (entry, other)
                break
    return found


def _compile_grouped(quant, scope_plan, compiled):
    """Build the fused-grouping spec, or None when the shape is unsupported."""
    if len(compiled.steps) != 1 or compiled.steps[0].relation_name is None:
        return None
    var = compiled.steps[0].var
    spec = _GroupedSpec()
    row_attrs = set()

    keys = tuple(quant.grouping.keys)
    spec.key_exprs = keys
    spec.empty_group = not keys
    key_attrs = []
    for key in keys:
        if isinstance(key, n.Attr) and key.var == var:
            key_attrs.append(key.attr)
        else:
            key_attrs = None
            break
    spec.key_attrs = tuple(key_attrs) if key_attrs is not None else None
    if spec.key_attrs:
        row_attrs.update(spec.key_attrs)

    assigns = []
    seen_attrs = set()
    for attr, expr in scope_plan.assignments:
        if attr in seen_attrs:
            return None  # duplicate head assignment: generic conflict check
        seen_attrs.add(attr)
        if isinstance(expr, n.Attr) and expr.var == var:
            assigns.append(("attr", attr, expr.attr, expr))
            row_attrs.add(expr.attr)
        elif isinstance(expr, n.Const):
            assigns.append(("const", attr, expr.value, expr))
        else:
            assigns.append(("expr", attr, None, expr))
    spec.assigns = tuple(assigns)

    agg_nodes = []
    for _, expr in scope_plan.agg_assignments:
        agg_nodes.extend(a for a in expr.walk() if isinstance(a, n.AggCall))
    for predicate in scope_plan.agg_comparisons:
        agg_nodes.extend(a for a in predicate.walk() if isinstance(a, n.AggCall))
    agg_specs = []
    seen_aggs = set()
    for node in agg_nodes:
        if id(node) in seen_aggs:
            continue
        seen_aggs.add(id(node))
        if node.arg is None:
            agg_specs.append((id(node), node.func, "star", None))
        elif isinstance(node.arg, n.Attr) and node.arg.var == var:
            agg_specs.append((id(node), node.func, "attr", node.arg.attr))
            row_attrs.add(node.arg.attr)
        else:
            agg_specs.append((id(node), node.func, "expr", node.arg))
    spec.agg_specs = tuple(agg_specs)

    agg_assigns = []
    for attr, expr in scope_plan.agg_assignments:
        if attr in seen_attrs:
            return None
        seen_attrs.add(attr)
        if isinstance(expr, n.AggCall):
            agg_assigns.append((attr, "agg", id(expr)))
        else:
            agg_assigns.append((attr, "expr", expr))
    spec.agg_assigns = tuple(agg_assigns)
    spec.agg_comparisons = tuple(scope_plan.agg_comparisons)
    spec.needs_rep_env = bool(
        spec.agg_comparisons
        or any(kind == "expr" for kind, _, _, _ in spec.assigns)
        or any(kind == "expr" for _, kind, _ in spec.agg_assigns)
    )
    spec.row_attrs = frozenset(row_attrs)
    spec.out_attrs = frozenset(seen_attrs)

    spec.simple = None
    if (
        not spec.agg_comparisons
        and all(kind in ("attr", "const") for kind, _, _, _ in spec.assigns)
        and all(kind == "agg" for _, kind, _ in spec.agg_assigns)
        and all(
            arg_kind == "star" or (arg_kind == "attr" and func in _STREAMABLE_AGGS)
            for _, func, arg_kind, _ in spec.agg_specs
        )
    ):
        agg_index = {entry[0]: i for i, entry in enumerate(spec.agg_specs)}
        simple_aggs = tuple(
            (func, payload if arg_kind == "attr" else None)
            for _, func, arg_kind, payload in spec.agg_specs
        )
        template = [
            (attr, "rep" if kind == "attr" else "const", payload)
            for kind, attr, payload, _ in spec.assigns
        ]
        template.extend(
            (attr, "agg", agg_index[agg_id]) for attr, _, agg_id in spec.agg_assigns
        )
        spec.simple = (tuple(template), simple_aggs)
    return spec


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------


class PlanEntry:
    """Per-AST-node cache record, shared across evaluator instances."""

    __slots__ = ("scope_plans", "compiled", "join_plans")

    def __init__(self):
        self.scope_plans = {}  # head key -> _ScopePlan
        self.compiled = {}  # head key -> [CompiledScope] (assumption variants)
        self.join_plans = {}  # head key -> (assignment, uncovered, sub-plans)


_PLAN_CACHE = weakref.WeakKeyDictionary()


def plan_entry(quant):
    """The (weakly cached) plan record for one quantifier node."""
    entry = _PLAN_CACHE.get(quant)
    if entry is None:
        entry = PlanEntry()
        _PLAN_CACHE[quant] = entry
    return entry
