"""The ARC reference evaluator: the paper's conceptual evaluation strategy.

Semantics implemented (see DESIGN.md §4 for the full decision list):

* **Nested loops, lateral nesting** (Section 2.3/2.4): bindings enumerate
  left-to-right; a nested collection bound in a scope is re-evaluated per
  partial environment, so it may correlate with earlier bindings and
  enclosing scopes.
* **Emission**: the quantifier forming a collection's body (or each
  disjunct of its ``Or``) enumerates combinations and emits one head tuple
  per satisfying combination (with bag multiplicities under bag
  conventions).  A quantifier *nested inside another scope* is existential:
  it contributes head assignments as a deduplicated set of witnesses (the
  semijoin-like behaviour of Section 2.7).
* **Grouping scopes** (Section 2.5): row-level predicates filter the scope's
  rows (SQL ``WHERE``); the grouping operator partitions them (``γ∅`` =
  exactly one group, even over empty input); aggregation *assignment*
  predicates compute per-group outputs; aggregation *comparison* predicates
  filter groups (SQL ``HAVING``).
* **Three-valued logic** (Section 2.10): comparisons touching NULL are
  UNKNOWN under the 3VL convention; ∃ folds with Kleene ``or``; a row or
  group is kept only when its condition is TRUE.
* **Outer joins** (Section 2.11): join-annotation trees with condition
  assignment, evaluated by :mod:`repro.engine.joins`.
* **External and abstract relations** (Section 2.13): bindings to relations
  without stored extensions are deferred until equality predicates determine
  enough attributes to satisfy an access pattern.
* **Recursion** (Section 2.9): programs are stratified and recursive strata
  solved by least fixed point (:mod:`repro.engine.fixpoint`).
"""

from __future__ import annotations

import weakref
from collections import Counter

from ..core import nodes as n
from ..core.conventions import Conventions, SET_CONVENTIONS
from ..data.database import Database
from ..data.relation import Relation, Tuple
from ..data.values import (
    NULL,
    Truth,
    arithmetic,
    compare,
    is_null,
    t_and,
    t_not,
    t_or,
)
from ..errors import EvaluationError
from . import aggregates as agg_lib
from .externals import ExternalRegistry, standard_registry
from .joins import ConditionAssignment, annotation_vars, enumerate_annotation
from .planner import (
    _DL_MASK,
    ExecutionStats,
    compile_bindings,
    compile_scope,
    plan_entry,
    scope_assumptions,
)


_RELATION_REFS_CACHE = weakref.WeakKeyDictionary()


def _relation_refs(node):
    """Names of every RelationRef in the subtree (weakly memoized)."""
    refs = _RELATION_REFS_CACHE.get(node)
    if refs is None:
        refs = frozenset(
            child.name for child in node.walk() if isinstance(child, n.RelationRef)
        )
        _RELATION_REFS_CACHE[node] = refs
    return refs


_UNSET = object()


def evaluate(
    node,
    database,
    conventions=SET_CONVENTIONS,
    externals=None,
    *,
    planner=_UNSET,
    decorrelate=_UNSET,
    backend=_UNSET,
    db_file=_UNSET,
    options=None,
):
    """Evaluate *node* against *database* under *conventions*.

    Returns a :class:`~repro.data.relation.Relation` for collections and
    programs, and a :class:`~repro.data.values.Truth` for sentences.

    This is the one-shot convenience wrapper over the Session API: it
    builds a transient :class:`repro.api.Session` from *options* (an
    :class:`repro.api.EvalOptions`) and evaluates once.  Long-lived
    callers should hold a Session and :meth:`~repro.api.Session.prepare`
    their queries instead — repeated one-shot calls re-derive state a
    session keeps warm.

    The individual ``planner`` / ``decorrelate`` / ``backend`` /
    ``db_file`` kwargs are deprecated shims (each warns once per process):
    ``planner=False`` selects the paper's reference nested-loop oracle,
    ``decorrelate=False`` disables the FOI → FIO pass, ``backend`` picks a
    registered engine with planner fallback, ``db_file`` persists the
    SQLite catalog.  Contradictory combinations that the old kwarg pile
    silently resolved — ``planner=False`` together with ``backend=`` —
    now raise :class:`~repro.errors.OptionsError`.
    """
    from ..api.options import EvalOptions, warn_legacy
    from ..api.session import Session
    from ..errors import OptionsError

    # A kwarg explicitly passed with its old default value (planner=True,
    # backend=None, ...) requests nothing: no warning, no conflict with
    # options=.
    legacy = {
        name: value
        for name, value, default in (
            ("planner", planner, True),
            ("decorrelate", decorrelate, True),
            ("backend", backend, None),
            ("db_file", db_file, None),
        )
        if value is not _UNSET and value != default
    }
    if legacy:
        if options is not None:
            raise OptionsError(
                "pass options=EvalOptions(...) or the legacy kwargs "
                f"({sorted(legacy)}), not both"
            )
        for name in legacy:
            warn_legacy(name)
        options = EvalOptions(
            planner=legacy.get("planner", True),
            decorrelate=legacy.get("decorrelate", True),
            backend=legacy.get("backend"),
            db_file=legacy.get("db_file"),
        )
    return Session(
        database, conventions, externals=externals, options=options
    ).evaluate(node)


class _JoinContext:
    """Adapter handing evaluator callbacks to the join-annotation module."""

    def __init__(self, evaluator, bindings_by_var):
        self._evaluator = evaluator
        self._bindings = bindings_by_var

    def rows(self, var, env):
        return self._evaluator._binding_rows(self._bindings[var], env)

    def truth(self, formula, env):
        return self._evaluator._truth(formula, env)


class _ScopePlan:
    """Classification of one quantifier's body into evaluation roles."""

    __slots__ = (
        "assignments",
        "agg_assignments",
        "agg_comparisons",
        "row_formulas",
        "emitters",
    )

    def __init__(self):
        self.assignments = []  # (attr, expr) plain head assignments
        self.agg_assignments = []  # (attr, expr-with-aggregates)
        self.agg_comparisons = []  # Comparison with aggregates, not assigning
        self.row_formulas = []  # boolean row-level formulas
        self.emitters = []  # nested formulas containing head assignments


class Evaluator:
    """Evaluates ARC nodes against a catalog, honouring the conventions."""

    def __init__(
        self,
        database=None,
        conventions=SET_CONVENTIONS,
        externals=None,
        *,
        planner=True,
        decorrelate=True,
        deadline=None,
        tracer=None,
    ):
        self.database = database if database is not None else Database()
        self.conventions = conventions
        self.externals = externals if externals is not None else standard_registry()
        self.defined = {}  # name -> materialized Relation
        self.abstract = {}  # name -> AbstractSource
        self.planner = planner
        self.decorrelate = decorrelate
        self.stats = ExecutionStats()
        #: Optional :class:`~repro.obs.Tracer` recording phase spans.  All
        #: sites are coarse (per scope / per compile / per fixpoint round —
        #: never per row) and gated on ``tracer is not None``, so the
        #: disabled path costs one attribute read per phase.
        self.tracer = tracer
        #: Armed :class:`~repro.util.deadline.Deadline` for the current run,
        #: or None (unbounded).  Every execution tier reads it: the
        #: compiled-scope loops tick per row, the fixpoint checks per round,
        #: and collection emission counts rows against the budget.
        self.deadline = deadline
        self._head_stack = []

    # -- public API -----------------------------------------------------------

    def evaluate(self, node):
        tracer = self.tracer
        if tracer is not None:
            with tracer.span(
                "execute", engine="planner" if self.planner else "reference"
            ):
                return self._evaluate_node(node)
        return self._evaluate_node(node)

    def _evaluate_node(self, node):
        if isinstance(node, n.Program):
            return self._evaluate_program(node)
        if isinstance(node, n.Collection):
            if self._is_self_recursive(node):
                program = n.Program({node.head.name: node}, node.head.name)
                return self._evaluate_program(program)
            return self._relation_from_counter(
                node.head, self._eval_collection(node, {})
            )
        if isinstance(node, n.Sentence):
            return self._truth(node.body, {})
        raise EvaluationError(f"cannot evaluate {type(node).__name__}")

    def evaluate_truth(self, formula, env=None):
        """Evaluate a bare formula as a boolean (for tests and tooling)."""
        return self._truth(formula, dict(env or {}))

    # -- programs -----------------------------------------------------------

    def _evaluate_program(self, program):
        from .fixpoint import materialize_program

        materialize_program(program, self)
        main = program.resolve_main()
        if main is None:
            raise EvaluationError("program has no main query")
        if isinstance(program.main, str):
            if program.main in self.defined:
                return self.defined[program.main]
            raise EvaluationError(
                f"main relation {program.main!r} is abstract and cannot be "
                "materialized standalone"
            )
        if isinstance(main, n.Sentence):
            return self._truth(main.body, {})
        return self._relation_from_counter(main.head, self._eval_collection(main, {}))

    def _is_self_recursive(self, coll):
        name = coll.head.name
        if name in self.database or name in self.externals:
            return False
        return name in _relation_refs(coll)

    # -- collections -------------------------------------------------------------

    def _relation_from_counter(self, head, counter):
        # Rows produced by _eval_collection are Tuples built over exactly
        # the head attributes (and already set-normalized when the set
        # convention applies), so the relation adopts the counter unchecked.
        return Relation._adopt_counter(head.name, head.attrs, counter)

    def _eval_collection(self, coll, env):
        """Evaluate a collection under *env*; returns Counter[Tuple]."""
        tracer = self.tracer
        if tracer is not None and not self._head_stack:
            # Only the top-level collection gets a span: laterally nested
            # collections re-evaluate per outer row and must stay span-free.
            with tracer.span("scope.execute", head=coll.head.name) as span:
                out = self._eval_collection_inner(coll, env)
                span.tag(rows=len(out))
                return out
        return self._eval_collection_inner(coll, env)

    def _eval_collection_inner(self, coll, env):
        self._head_stack.append(coll.head)
        deadline = self.deadline
        try:
            out = self._fused_grouped_counter(coll, env)
            if out is None:
                out = Counter()
                # Row budget, batched: a local counter per emission with one
                # count_rows() flush per stride (plus the remainder below),
                # so the accounting stays exact while the hot loop avoids a
                # method call per row.  A budget trip may land up to a
                # stride late — still memory-bounded by max_rows + STRIDE.
                dl_rows = 0
                dl_mask = _DL_MASK
                for assigns, mult in self._solutions(coll.body, env, top=True):
                    missing = set(coll.head.attrs) - set(assigns)
                    if missing:
                        raise EvaluationError(
                            f"collection {coll.head.name!r}: head attributes "
                            f"{sorted(missing)} were never assigned"
                        )
                    row = Tuple({a: assigns[a] for a in coll.head.attrs})
                    out[row] += mult
                    if deadline is not None:
                        dl_rows += 1
                        if not dl_rows & dl_mask:
                            deadline.count_rows(dl_mask + 1)
                if deadline is not None and dl_rows & dl_mask:
                    deadline.count_rows(dl_rows & dl_mask)
            elif deadline is not None and out:
                # Fused grouped output: bounded by the scanned relation, so
                # post-hoc counting is budget-safe.
                deadline.count_rows(len(out))
        finally:
            self._head_stack.pop()
        if self.conventions.is_set:
            return Counter(dict.fromkeys(out, 1))
        return out

    def _fused_grouped_counter(self, coll, env):
        """Whole-collection fast path for a single grouped-scope body.

        Returns a Counter, or None when the shape is not fusable (the
        generic path then also surfaces any head-coverage errors).
        """
        body = coll.body
        if (
            not self.planner
            or not isinstance(body, n.Quantifier)
            or body.grouping is None
            or body.join is not None
        ):
            return None
        plan = self._plan_scope(body)
        if plan.emitters:
            return None
        compiled = self._compile_scope(body, plan)
        return compiled.grouped_counter(self, env, frozenset(coll.head.attrs))

    # -- solutions (emitting evaluation) ------------------------------------------

    def _solutions(self, formula, env, *, top):
        """Yield (head-assignments dict, multiplicity) for *formula*.

        ``top`` is True for the collection body and for the disjuncts of a
        top-level Or (generator position: multiplicities enumerate); nested
        quantifiers are existential and deduplicate their witnesses.
        """
        if isinstance(formula, n.Quantifier):
            yield from self._solutions_quantifier(formula, env, top=top)
            return
        if isinstance(formula, n.Or):
            for child in formula.children_list:
                yield from self._solutions(child, env, top=top)
            return
        if isinstance(formula, n.And):
            yield from self._solutions_and(formula, env, top=top)
            return
        if isinstance(formula, n.Comparison):
            target = self._assignment_attr(formula)
            if target is not None:
                attr, expr = target
                yield {attr: self._eval_expr(expr, env)}, 1
                return
            if self._truth(formula, env) is Truth.TRUE:
                yield {}, 1
            return
        if isinstance(formula, n.BoolConst):
            if formula.value:
                yield {}, 1
            return
        if isinstance(formula, (n.Not, n.IsNull)):
            if self._truth(formula, env) is Truth.TRUE:
                yield {}, 1
            return
        raise EvaluationError(
            f"cannot enumerate solutions of {type(formula).__name__}"
        )

    def _solutions_and(self, conj, env, *, top):
        emitters = []
        booleans = []
        for child in conj.children_list:
            if self._emits(child):
                emitters.append(child)
            else:
                booleans.append(child)
        if any(self._truth(b, env) is not Truth.TRUE for b in booleans):
            return
        solutions = [({}, 1)]
        for emitter in emitters:
            expanded = []
            for assigns, mult in solutions:
                for sub_assigns, sub_mult in self._solutions(emitter, env, top=top):
                    merged = self._merge_assigns(assigns, sub_assigns)
                    if merged is not None:
                        expanded.append((merged, mult * sub_mult))
            solutions = expanded
        yield from solutions

    @staticmethod
    def _merge_assigns(first, second):
        merged = dict(first)
        for attr, value in second.items():
            if attr in merged and merged[attr] != value:
                return None  # conflicting assignments: no solution
            merged[attr] = value
        return merged

    def _solutions_quantifier(self, quant, env, *, top):
        plan = self._plan_scope(quant)
        if quant.grouping is not None:
            yield from self._group_solutions(quant, plan, env)
            return
        if plan.agg_assignments or plan.agg_comparisons:
            raise EvaluationError(
                "aggregation predicate in a scope without a grouping operator"
            )
        results = None if top else Counter()
        for env2, mult in self._combos(quant, plan, env, strict=True):
            base = {}
            conflict = False
            for attr, expr in plan.assignments:
                value = self._eval_expr(expr, env2)
                if attr in base and base[attr] != value:
                    conflict = True
                    break
                base[attr] = value
            if conflict:
                continue
            if plan.emitters:
                for emitter_assigns, emitter_mult in self._emitter_product(
                    plan.emitters, env2
                ):
                    merged = self._merge_assigns(base, emitter_assigns)
                    if merged is None:
                        continue
                    if top:
                        yield merged, mult * emitter_mult
                    else:
                        results[Tuple(merged)] += 1
            else:
                if top:
                    yield base, mult
                else:
                    results[Tuple(base)] += 1
        if not top:
            # Existential semantics: distinct witnesses, multiplicity 1.
            for row in results:
                yield row.as_dict(), 1

    def _emitter_product(self, emitters, env):
        solutions = [({}, 1)]
        for emitter in emitters:
            expanded = []
            # Nested emitters are existential: deduplicate witnesses.
            for assigns, mult in solutions:
                for sub_assigns, sub_mult in self._solutions(emitter, env, top=False):
                    merged = self._merge_assigns(assigns, sub_assigns)
                    if merged is not None:
                        expanded.append((merged, mult * sub_mult))
            solutions = expanded
        return solutions

    # -- grouping scopes --------------------------------------------------------

    def _group_solutions(self, quant, plan, env):
        if plan.emitters:
            raise EvaluationError(
                "a grouping scope cannot contain nested emitting formulas"
            )
        if self.planner and quant.join is None:
            fused = self._compile_scope(quant, plan).grouped_rows(self, env)
            if fused is not None:
                yield from fused
                return
        rows = list(self._combos(quant, plan, env, strict=True))
        keys = quant.grouping.keys
        groups = {}
        order = []
        if keys:
            for env2, mult in rows:
                key = tuple(self._eval_expr(k, env2) for k in keys)
                hashable = tuple(
                    ("null",) if is_null(v) else ("v", v) for v in key
                )
                if hashable not in groups:
                    groups[hashable] = []
                    order.append(hashable)
                groups[hashable].append((env2, mult))
        else:
            groups["∅"] = rows  # γ∅: exactly one group, even over empty input
            order.append("∅")
        for key in order:
            group_rows = groups[key]
            agg_values = self._compute_aggregates(quant, plan, group_rows)
            rep_env = group_rows[0][0] if group_rows else env
            keep = Truth.TRUE
            for predicate in plan.agg_comparisons:
                keep = t_and(keep, self._truth(predicate, rep_env, agg_values))
                if keep is Truth.FALSE:
                    break
            if keep is not Truth.TRUE:
                continue
            assigns = {}
            ok = True
            for attr, expr in plan.assignments:
                value = self._eval_group_expr(expr, rep_env, env, group_rows)
                if attr in assigns and assigns[attr] != value:
                    ok = False
                    break
                assigns[attr] = value
            if not ok:
                continue
            for attr, expr in plan.agg_assignments:
                assigns[attr] = self._eval_expr(expr, rep_env, agg_values)
            yield assigns, 1

    def _compute_aggregates(self, quant, plan, group_rows):
        """Evaluate every AggCall of the scope over the group's rows."""
        agg_nodes = []
        for _, expr in plan.agg_assignments:
            agg_nodes.extend(a for a in expr.walk() if isinstance(a, n.AggCall))
        for predicate in plan.agg_comparisons:
            agg_nodes.extend(a for a in predicate.walk() if isinstance(a, n.AggCall))
        values = {}
        for node in agg_nodes:
            if id(node) in values:
                continue
            if node.arg is None:
                values[id(node)] = agg_lib.count_rows(m for _, m in group_rows)
            else:
                pairs = [
                    (self._eval_expr(node.arg, env2), mult)
                    for env2, mult in group_rows
                ]
                values[id(node)] = agg_lib.aggregate(node.func, pairs, self.conventions)
        return values

    def _eval_group_expr(self, expr, rep_env, outer_env, group_rows):
        """Evaluate a non-aggregate assignment inside a grouping scope.

        Well-formed queries only assign grouping-key expressions, which are
        constant across the group; the representative row supplies them.
        Over an empty γ∅ group the expression must be computable from the
        outer environment alone.
        """
        if group_rows:
            return self._eval_expr(expr, rep_env)
        try:
            return self._eval_expr(expr, outer_env)
        except EvaluationError:
            raise EvaluationError(
                "non-aggregate assignment over an empty γ∅ group references "
                "scope variables; no value is defined"
            ) from None

    # -- scope planning -----------------------------------------------------------

    def _head_key(self):
        """Cache key for head-dependent classifications of a scope."""
        if not self._head_stack:
            return None
        head = self._head_stack[-1]
        return (head.name, head.attrs)

    def _plan_scope(self, quant):
        entry = plan_entry(quant)
        key = self._head_key()
        plan = entry.scope_plans.get(key)
        if plan is None:
            plan = self._classify_scope(quant)
            entry.scope_plans[key] = plan
        return plan

    def _cached_variant(self, variants, bindings, build):
        """The plan in *variants* matching the current catalog assumptions,
        compiling (and evicting the oldest of >4 variants) on a miss."""
        assumptions = scope_assumptions(self, bindings)
        for compiled in variants:
            if compiled.assumptions == assumptions:
                self.stats.plan_cache_hits += 1
                return compiled
        tracer = self.tracer
        if tracer is not None:
            with tracer.span("plan.compile"):
                compiled = build()
        else:
            compiled = build()
        variants.append(compiled)
        if len(variants) > 4:
            variants.pop(0)
        return compiled

    def _compile_scope(self, quant, plan):
        """Cached compilation of one scope (per AST node and head context)."""
        entry = plan_entry(quant)
        key = self._head_key()
        variants = entry.compiled.get(key)
        if variants is None:
            variants = entry.compiled[key] = []
        return self._cached_variant(
            variants, quant.bindings, lambda: compile_scope(self, quant, plan)
        )

    def _join_plan(self, quant, plan):
        """Cached condition assignment (+ uncovered-binding sub-plan)."""
        entry = plan_entry(quant)
        key = self._head_key()
        record = entry.join_plans.get(key)
        if record is None:
            assignment = ConditionAssignment(quant.join, plan.row_formulas)
            covered = annotation_vars(quant.join)
            uncovered = [b for b in quant.bindings if b.var not in covered]
            record = (assignment, uncovered, [])
            entry.join_plans[key] = record
        assignment, uncovered, variants = record
        sub = None
        if self.planner:
            sub = self._cached_variant(
                variants,
                uncovered,
                lambda: compile_bindings(self, uncovered, assignment.residual),
            )
        return assignment, uncovered, sub

    def _classify_scope(self, quant):
        plan = _ScopePlan()
        for conjunct in n.conjuncts(quant.body):
            if isinstance(conjunct, n.Comparison):
                target = self._assignment_attr(conjunct)
                if target is not None:
                    attr, expr = target
                    if conjunct.has_aggregate():
                        plan.agg_assignments.append((attr, expr))
                    else:
                        plan.assignments.append((attr, expr))
                    continue
                if conjunct.has_aggregate():
                    plan.agg_comparisons.append(conjunct)
                    continue
                plan.row_formulas.append(conjunct)
                continue
            if self._emits(conjunct):
                plan.emitters.append(conjunct)
            else:
                plan.row_formulas.append(conjunct)
        return plan

    def _assignment_attr(self, predicate):
        """Return (attr, value-expression) when *predicate* assigns the
        current head; the head side must be ``H.attr`` with ``op == '='``."""
        if not self._head_stack or predicate.op != "=":
            return None
        head = self._head_stack[-1]
        left, right = predicate.left, predicate.right
        if self._is_head_attr(left, head) and not self._is_head_attr(right, head):
            return (left.attr, right)
        if self._is_head_attr(right, head) and not self._is_head_attr(left, head):
            return (right.attr, left)
        return None

    @staticmethod
    def _is_head_attr(expr, head):
        return (
            isinstance(expr, n.Attr)
            and expr.var == head.name
            and expr.attr in head.attrs
        )

    def _emits(self, formula):
        """True when *formula* contains a positive assignment to the current
        head (so it must be enumerated, not just tested)."""
        if not self._head_stack:
            return False

        def walk(node, negated):
            if isinstance(node, n.Comparison):
                return not negated and self._assignment_attr(node) is not None
            if isinstance(node, (n.And, n.Or)):
                return any(walk(c, negated) for c in node.children_list)
            if isinstance(node, n.Not):
                return walk(node.child, True)
            if isinstance(node, n.Quantifier):
                return walk(node.body, negated)
            # Nested collections have their own heads; they do not emit for ours.
            return False

        return walk(formula, False)

    # -- combination enumeration -----------------------------------------------

    def _combos(self, quant, plan, env, *, strict):
        """Yield (env2, mult) for each binding combination of the scope.

        ``strict=True`` keeps only combinations whose row formulas are all
        TRUE (emitting and grouping scopes).  ``strict=False`` yields
        (env2, mult, truth) triples with the Kleene conjunction of the row
        formulas (boolean scopes need UNKNOWN propagation).
        """
        if quant.join is not None:
            assignment, uncovered, sub = self._join_plan(quant, plan)
            ctx = _JoinContext(self, {b.var: b for b in quant.bindings})
            deadline = self.deadline
            dl_ops = 0
            for delta, mult in enumerate_annotation(quant.join, env, ctx, assignment):
                if deadline is not None:
                    dl_ops += 1
                    if not dl_ops & _DL_MASK:
                        deadline.check()
                env2 = {**env, **delta}
                if sub is not None and strict:
                    yield from sub.execute(self, env2, mult)
                else:
                    yield from self._extend_with_bindings(
                        uncovered, assignment.residual, env2, mult, strict=strict
                    )
            return
        if strict and self.planner:
            compiled = self._compile_scope(quant, plan)
            yield from compiled.execute(self, env)
            return
        yield from self._extend_with_bindings(
            list(quant.bindings), plan.row_formulas, env, 1, strict=strict
        )

    def _extend_with_bindings(self, bindings, residual, env, mult, *, strict):
        concrete = []
        deferred = []
        for binding in bindings:
            if self._is_deferred(binding):
                deferred.append(binding)
            else:
                concrete.append(binding)
        deadline = self.deadline
        dl_ops = 0

        def recurse(index, env2, mult2):
            nonlocal dl_ops
            if index == len(concrete):
                yield from self._resolve_deferred(
                    list(deferred), residual, env2, mult2, strict=strict
                )
                return
            binding = concrete[index]
            for row, row_mult in self._binding_rows(binding, env2):
                if deadline is not None:
                    dl_ops += 1
                    if not dl_ops & _DL_MASK:
                        deadline.check()
                yield from recurse(index + 1, {**env2, binding.var: row}, mult2 * row_mult)

        yield from recurse(0, env, mult)

    def _resolve_deferred(self, pending, residual, env, mult, *, strict):
        """Bind external/abstract relations once their access patterns are
        satisfiable, then evaluate the residual row formulas."""
        if pending:
            for index, binding in enumerate(pending):
                known = self._known_attrs(binding, residual, env)
                rows = self._try_complete(binding, known, env)
                if rows is None:
                    continue
                rest = pending[:index] + pending[index + 1 :]
                for row in rows:
                    yield from self._resolve_deferred(
                        rest, residual, {**env, binding.var: Tuple(row)}, mult, strict=strict
                    )
                return
            names = [b.source.name for b in pending]
            raise EvaluationError(
                f"unsafe query: external/abstract bindings {names} cannot be "
                "resolved from the bound attributes (no access pattern applies)"
            )
        if strict:
            for formula in residual:
                if self._truth(formula, env) is not Truth.TRUE:
                    return
            yield env, mult
        else:
            truth = Truth.TRUE
            for formula in residual:
                truth = t_and(truth, self._truth(formula, env))
                if truth is Truth.FALSE:
                    break
            yield env, mult, truth

    def _known_attrs(self, binding, residual, env):
        """Attribute values for *binding* determined by equality conjuncts
        whose other side is already evaluable under *env*."""
        known = {}
        for formula in residual:
            if not isinstance(formula, n.Comparison) or formula.op != "=":
                continue
            for side, other in (
                (formula.left, formula.right),
                (formula.right, formula.left),
            ):
                if isinstance(side, n.Attr) and side.var == binding.var:
                    try:
                        known[side.attr] = self._eval_expr(other, env)
                    except EvaluationError:
                        pass
        return known

    def _try_complete(self, binding, known, env):
        """Rows completing a deferred binding, or None when not yet resolvable."""
        name = binding.source.name
        if name in self.abstract:
            source = self.abstract[name]
            if not source.resolvable(known):
                return None
            return source.complete(known)
        external = self.externals.get(name)
        if not external.accepts(known):
            return None
        return external.complete(known)

    def _is_deferred(self, binding):
        if not isinstance(binding.source, n.RelationRef):
            return False
        name = binding.source.name
        if name in self.defined or name in self.database:
            return False
        return name in self.abstract or name in self.externals

    def _resolve_relation(self, name):
        """The stored relation *name* currently denotes (defined wins)."""
        relation = self.defined.get(name)
        if relation is not None:
            return relation
        if name in self.database:
            return self.database[name]
        if name in self.abstract or name in self.externals:
            raise EvaluationError(
                f"relation {name!r} has no stored extension and must be "
                "resolved through access patterns"
            )
        raise EvaluationError(f"unknown relation {name!r}")

    def _binding_rows(self, binding, env):
        """Enumerate (row, mult) for one binding, laterally under *env*."""
        if isinstance(binding.source, n.Collection):
            self.stats.lateral_reevals += 1
            counter = self._eval_collection(binding.source, env)
            for row, mult in counter.items():
                yield row, mult
            return
        relation = self._resolve_relation(binding.source.name)
        if self.conventions.is_set:
            for row in relation.iter_distinct():
                yield row, 1
        else:
            for row, mult in relation.counter().items():
                yield row, mult

    # -- boolean evaluation ------------------------------------------------------

    def _truth(self, formula, env, agg_values=None):
        if isinstance(formula, n.Comparison):
            left = self._eval_expr(formula.left, env, agg_values)
            right = self._eval_expr(formula.right, env, agg_values)
            return compare(
                left, formula.op, right, three_valued=self.conventions.three_valued
            )
        if isinstance(formula, n.IsNull):
            result = Truth.of(is_null(self._eval_expr(formula.expr, env, agg_values)))
            return t_not(result) if formula.negated else result
        if isinstance(formula, n.BoolConst):
            return Truth.TRUE if formula.value else Truth.FALSE
        if isinstance(formula, n.And):
            result = Truth.TRUE
            for child in formula.children_list:
                result = t_and(result, self._truth(child, env, agg_values))
                if result is Truth.FALSE:
                    return result
            return result
        if isinstance(formula, n.Or):
            result = Truth.FALSE
            for child in formula.children_list:
                result = t_or(result, self._truth(child, env, agg_values))
                if result is Truth.TRUE:
                    return result
            return result
        if isinstance(formula, n.Not):
            return t_not(self._truth(formula.child, env, agg_values))
        if isinstance(formula, n.Quantifier):
            return self._truth_quantifier(formula, env)
        raise EvaluationError(f"cannot evaluate {type(formula).__name__} as boolean")

    def _truth_quantifier(self, quant, env):
        plan = self._plan_scope(quant)
        if plan.assignments or plan.agg_assignments or plan.emitters:
            # An emitting quantifier used as a boolean test: true iff it has
            # at least one solution (e.g. under Not in hand-written queries).
            for _ in self._solutions_quantifier(quant, env, top=False):
                return Truth.TRUE
            return Truth.FALSE
        if quant.grouping is not None:
            return self._truth_grouped(quant, plan, env)
        result = Truth.FALSE
        for _, _, truth in self._combos(quant, plan, env, strict=False):
            result = t_or(result, truth)
            if result is Truth.TRUE:
                return result
        return result

    def _truth_grouped(self, quant, plan, env):
        """Boolean grouping scope: ∃ a group satisfying the aggregate
        predicates (Fig. 9 and the count bug's version 1)."""
        rows = list(self._combos(quant, plan, env, strict=True))
        keys = quant.grouping.keys
        groups = {}
        if keys:
            for env2, mult in rows:
                key = tuple(
                    ("null",) if is_null(v) else ("v", v)
                    for v in (self._eval_expr(k, env2) for k in keys)
                )
                groups.setdefault(key, []).append((env2, mult))
        else:
            groups["∅"] = rows
        result = Truth.FALSE
        for group_rows in groups.values():
            agg_values = self._compute_aggregates(quant, plan, group_rows)
            rep_env = group_rows[0][0] if group_rows else env
            group_truth = Truth.TRUE
            for predicate in plan.agg_comparisons:
                group_truth = t_and(
                    group_truth, self._truth(predicate, rep_env, agg_values)
                )
                if group_truth is Truth.FALSE:
                    break
            result = t_or(result, group_truth)
            if result is Truth.TRUE:
                return result
        return result

    # -- expressions ----------------------------------------------------------------

    def _eval_expr(self, expr, env, agg_values=None):
        if isinstance(expr, n.Const):
            return expr.value
        if isinstance(expr, n.Attr):
            row = env.get(expr.var)
            if row is None:
                raise EvaluationError(f"unbound range variable {expr.var!r}")
            return row[expr.attr]
        if isinstance(expr, n.Arith):
            left = self._eval_expr(expr.left, env, agg_values)
            right = self._eval_expr(expr.right, env, agg_values)
            return arithmetic(expr.op, left, right)
        if isinstance(expr, n.AggCall):
            if agg_values is None or id(expr) not in agg_values:
                raise EvaluationError(
                    f"aggregate {expr.func}(...) evaluated outside a grouping scope"
                )
            return agg_values[id(expr)]
        raise EvaluationError(f"cannot evaluate expression {type(expr).__name__}")
