"""Least-fixed-point evaluation of programs with defined relations.

Section 2.9 of the paper: ARC supports recursion with the same
least-fixed-point semantics as Datalog, expressed in the named perspective —
a recursive relation is defined by a single collection whose body is the
disjunction of its rules.

This module materializes a program's definitions bottom-up:

1. definitions are classified (abstract definitions are registered as
   :class:`~repro.engine.abstract.AbstractSource` access-pattern modules,
   never materialized);
2. the dependency graph over defined names is condensed into strongly
   connected components, evaluated in topological order;
3. non-recursive components evaluate once; recursive components iterate
   **naive** or **semi-naive** fixpoint under set semantics until no
   relation changes.

The validator's stratification check guarantees monotonicity (no recursion
through negation or aggregation), so the iteration converges on finite
inputs.
"""

from __future__ import annotations

from collections import Counter

from ..core import nodes as n
from ..core.validator import dependency_graph, validate
from ..data.relation import Relation
from ..errors import EvaluationError, ValidationError
from ..obs import NULL_SPAN
from .abstract import AbstractSource


def materialize_program(program, evaluator, *, seminaive=True):
    """Fill ``evaluator.defined`` / ``evaluator.abstract`` from *program*."""
    report = validate(program, allow_abstract=True)
    stratification_errors = [i for i in report.errors() if i.code == "stratification"]
    if stratification_errors:
        raise ValidationError("; ".join(str(i) for i in stratification_errors))

    abstract_names = _abstract_names(program)
    for name in abstract_names:
        evaluator.abstract[name] = AbstractSource(program.definitions[name], evaluator)

    concrete = {
        name: definition
        for name, definition in program.definitions.items()
        if name not in abstract_names
    }
    graph = {
        name: [
            target
            for target, _ in dependency_graph(program).get(name, [])
            if target in concrete
        ]
        for name in concrete
    }
    for component in _topological_sccs(graph):
        recursive = len(component) > 1 or any(
            name in graph[name] for name in component
        )
        if not recursive:
            name = component[0]
            evaluator.defined[name] = _evaluate_definition(concrete[name], evaluator)
        else:
            _solve_recursive(component, concrete, evaluator, seminaive=seminaive)


def _abstract_names(program):
    names = set()
    for name, definition in program.definitions.items():
        report = validate(definition, allow_abstract=True)
        if report.is_abstract:
            names.add(name)
    return names


def _evaluate_definition(definition, evaluator):
    # _eval_collection already applies set-normalization and yields
    # head-schema Tuples, so the relation can adopt the counter directly.
    counter = evaluator._eval_collection(definition, {})
    return evaluator._relation_from_counter(definition.head, counter)


def _solve_recursive(component, definitions, evaluator, *, seminaive):
    """Naive or semi-naive least fixed point over one recursive component.

    Recursion is evaluated under set semantics regardless of the bag
    convention (the standard Datalog choice; bag recursion generally has no
    finite fixed point).
    """
    solver = _solve_seminaive if seminaive else _solve_naive
    tracer = evaluator.tracer
    with NULL_SPAN if tracer is None else tracer.span(
        "fixpoint.solve",
        component=",".join(sorted(component)),
        strategy="seminaive" if seminaive else "naive",
    ) as span:
        rounds = solver(component, definitions, evaluator)
        span.tag(rounds=rounds)
    return rounds


def _solve_naive(component, definitions, evaluator):
    """Re-evaluate every definition against the full relations until no
    relation grows — the textbook naive iteration."""
    for name in component:
        head = definitions[name].head
        evaluator.defined[name] = Relation(name, head.attrs)

    deadline = evaluator.deadline
    tracer = evaluator.tracer
    iterations = 0
    changed = True
    while changed:
        iterations += 1
        if iterations > 100_000:
            raise EvaluationError(
                f"fixpoint for {sorted(component)} did not converge"
            )
        if deadline is not None:
            # One clock read per round: a round is the natural coarse
            # checkpoint for a fixpoint that may never converge in bounds.
            deadline.check()
        with NULL_SPAN if tracer is None else tracer.span(
            "fixpoint.round", round=iterations
        ):
            changed = False
            for name in component:
                definition = definitions[name]
                counter = evaluator._eval_collection(definition, {})
                new_rows = set(counter)
                old_relation = evaluator.defined[name]
                old_rows = set(old_relation.iter_distinct())
                union = old_rows | new_rows
                if union != old_rows:
                    changed = True
                    merged = Relation(name, definition.head.attrs)
                    for row in union:
                        merged.add(row)
                    evaluator.defined[name] = merged
    return iterations


def _solve_seminaive(component, definitions, evaluator):
    """Incremental semi-naive iteration.

    Recursive disjuncts are re-evaluated once per recursive *occurrence*,
    with that occurrence restricted to the previous iteration's delta.
    Every new derivation must use at least one newly derived fact, so
    replacing one recursive reference by the delta (and keeping the full
    relation for the others) covers all new tuples; it may re-derive a few
    known ones, which the ``known`` check discards.  This is the standard
    inflationary semi-naive variant without rule stratification.

    The iteration state is maintained incrementally across rounds:

    * the delta-rewritten disjunct variants (and their Collection wrappers)
      are built **once per component**, not once per round, so the planner's
      per-node plan cache stays hot across the whole fixpoint;
    * each name's full relation is one :class:`Relation` object that grows
      by :meth:`~repro.data.relation.Relation.extend_new`, which appends the
      round's delta rows to the cached hash indexes *in place* — the planner
      probes delta→full without rebuilding full-relation indexes each round
      (the per-round delta relations are small and re-indexed from scratch;
      the full relations are large and maintained incrementally);
    * the ``known`` sets of derived rows persist across rounds instead of
      being re-materialized from the full relations.
    """
    component_set = set(component)
    delta_name = {name: f"Δ{name}" for name in component}

    base_parts = {}
    delta_parts = {}
    for name in component:
        definition = definitions[name]
        head = definition.head
        disjuncts = (
            definition.body.children_list
            if isinstance(definition.body, n.Or)
            else [definition.body]
        )
        base_parts[name] = [
            n.Collection(n.Head(name, head.attrs), disjunct)
            for disjunct in disjuncts
            if not _references(disjunct, component_set)
        ]
        delta_parts[name] = [
            n.Collection(n.Head(name, head.attrs), variant)
            for disjunct in disjuncts
            if _references(disjunct, component_set)
            for variant in _delta_variants(disjunct, component_set, delta_name)
        ]

    # Iteration 0: base (non-recursive) disjuncts only.
    known = {}
    full = {}
    deltas = {}
    for name in component:
        head = definitions[name].head
        rows = set()
        for part in base_parts[name]:
            rows.update(evaluator._eval_collection(part, {}))
        relation = Relation(name, head.attrs)
        relation.extend_new(rows)
        evaluator.defined[name] = relation
        full[name] = relation
        known[name] = rows
        deltas[name] = rows

    deadline = evaluator.deadline
    tracer = evaluator.tracer
    iterations = 0
    while any(deltas.values()):
        iterations += 1
        if iterations > 100_000:
            raise EvaluationError(
                f"fixpoint for {sorted(component)} did not converge"
            )
        if deadline is not None:
            deadline.check()
        with NULL_SPAN if tracer is None else tracer.span(
            "fixpoint.round", round=iterations
        ) as round_span:
            # Expose the deltas as relations the rewritten disjuncts can read.
            for name in component:
                delta_rel = Relation(delta_name[name], definitions[name].head.attrs)
                delta_rel.extend_new(deltas[name])
                evaluator.defined[delta_name[name]] = delta_rel
            new_deltas = {name: set() for name in component}
            for name in component:
                seen = known[name]
                fresh = new_deltas[name]
                for part in delta_parts[name]:
                    for row in evaluator._eval_collection(part, {}):
                        if row not in seen:
                            seen.add(row)
                            fresh.add(row)
            for name in component:
                # Delta-aware growth: append the fresh rows to the full
                # relation's cached indexes instead of invalidating them.
                full[name].extend_new(new_deltas[name])
            round_span.tag(
                new_rows=sum(len(rows) for rows in new_deltas.values())
            )
        deltas = new_deltas
    for name in component:
        evaluator.defined.pop(delta_name[name], None)
    return iterations


def _references(formula, names):
    return any(
        isinstance(node, n.RelationRef) and node.name in names
        for node in formula.walk()
    )


def _delta_variants(disjunct, component_set, delta_name):
    """One copy of *disjunct* per recursive occurrence, with exactly that
    occurrence redirected to its delta relation."""
    occurrences = [
        node
        for node in disjunct.walk()
        if isinstance(node, n.RelationRef) and node.name in component_set
    ]
    for target_index in range(len(occurrences)):
        seen = [0]

        def redirect(node, target=target_index):
            if isinstance(node, n.RelationRef) and node.name in component_set:
                index = seen[0]
                seen[0] += 1
                if index == target:
                    return n.RelationRef(delta_name[node.name])
            return node

        yield n.transform(disjunct, redirect)


def transitive_closure_reference(pairs):
    """Reference transitive closure used by tests/benchmarks (Warshall-style).

    *pairs* is an iterable of (source, target); returns the set of reachable
    (source, target) pairs — the paper's ancestor query (16).
    """
    edges = set(pairs)
    adjacency = {}
    for source, target in edges:
        adjacency.setdefault(source, set()).add(target)
    closure = set()
    for start in adjacency:
        stack = list(adjacency[start])
        seen = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            closure.add((start, node))
            stack.extend(adjacency.get(node, ()))
    return closure


def _topological_sccs(graph):
    """SCCs of *graph* in dependency (topological) order."""
    sccs = _tarjan(graph)
    # Tarjan emits components in reverse topological order of the
    # condensation; dependencies must be evaluated first.
    return sccs


def _tarjan(graph):
    index_counter = [0]
    stack, on_stack = [], set()
    index, lowlink = {}, {}
    result = []

    def strongconnect(root):
        work = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = index_counter[0]
                index_counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            successors = graph.get(node, [])
            while child_index < len(successors):
                succ = successors[child_index]
                child_index += 1
                if succ not in index:
                    work[-1] = (node, child_index)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                component = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    component.append(top)
                    if top == node:
                        break
                result.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    for node in graph:
        if node not in index:
            strongconnect(node)
    return result
