"""External relations: reified built-ins with access patterns.

Section 2.13.1 of the paper treats computation uniformly as relations:
arithmetic ``-`` becomes ``Minus(left, right, out)``, comparison ``>``
becomes ``Bigger(left, right)``, and so on.  These relations may have
infinite extension, so they cannot be enumerated; instead they are accessed
through **access patterns** (following Guagliardo et al. [35]): given a
subset of bound attributes, a pattern function enumerates the tuples that
complete them (possibly zero or one).

The evaluator defers external bindings until enough of their attributes are
determined by equality/assignment predicates over already-bound variables,
then calls :meth:`ExternalRelation.complete`.  An external binding whose
patterns can never be satisfied raises
:class:`~repro.errors.EvaluationError` (the safety condition).
"""

from __future__ import annotations

from ..data.values import NULL, compare, is_null
from ..errors import EvaluationError, SchemaError


class ExternalRelation:
    """A relation defined outside the relational language.

    Parameters
    ----------
    name:
        Relation name as referenced in queries (e.g. ``Minus`` or ``-``).
    attrs:
        Attribute names, in schema order.
    patterns:
        Mapping ``frozenset(input attrs) -> fn(known: dict) -> iterable of
        dicts``; each produced dict must supply values for every attribute.
        A pattern keyed by the full attribute set acts as a membership test
        (yield the tuple to accept, nothing to reject).
    """

    def __init__(self, name, attrs, patterns):
        self.name = name
        self.attrs = tuple(attrs)
        self._patterns = {frozenset(k): fn for k, fn in patterns.items()}

    def accepts(self, known_attrs):
        """True when some access pattern is satisfied by *known_attrs*."""
        known = frozenset(known_attrs)
        return any(pattern <= known for pattern in self._patterns)

    def complete(self, known):
        """Enumerate full tuples (dicts) extending the *known* attribute values.

        Chooses the most specific satisfied pattern (largest input set).
        NULL inputs short-circuit to no tuples (external relations relate
        values, and NULL is the absence of a value).
        """
        if any(is_null(v) for v in known.values()):
            return []
        known_set = frozenset(known)
        best = None
        for pattern, fn in self._patterns.items():
            if pattern <= known_set and (best is None or len(pattern) > len(best[0])):
                best = (pattern, fn)
        if best is None:
            raise EvaluationError(
                f"external relation {self.name!r}: no access pattern satisfied "
                f"by bound attributes {sorted(known)} (available patterns: "
                f"{[sorted(p) for p in self._patterns]})"
            )
        results = []
        for produced in best[1](dict(known)):
            row = dict(produced)
            missing = set(self.attrs) - set(row)
            if missing:
                raise EvaluationError(
                    f"external relation {self.name!r}: pattern left attributes "
                    f"{sorted(missing)} undetermined"
                )
            # Re-check consistency with all known values (a more specific
            # pattern may produce values for attrs that were already bound).
            if all(row[a] == v for a, v in known.items()):
                results.append(row)
        return results

    def __repr__(self):
        return f"ExternalRelation({self.name!r}, attrs={self.attrs})"


class ExternalRegistry:
    """Named collection of external relations available to the evaluator."""

    def __init__(self, relations=()):
        self._relations = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation, *aliases):
        self._relations[relation.name] = relation
        for alias in aliases:
            self._relations[alias] = relation
        return relation

    def get(self, name):
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown external relation {name!r}") from None

    def __contains__(self, name):
        return name in self._relations

    def names(self):
        return sorted(self._relations)

    def copy(self):
        registry = ExternalRegistry()
        registry._relations = dict(self._relations)
        return registry


# ---------------------------------------------------------------------------
# The standard library of reified built-ins (Example 1 / Fig. 15 / Fig. 20)
# ---------------------------------------------------------------------------


def _guard_numeric(fn):
    def wrapped(known):
        try:
            return fn(known)
        except TypeError:
            return []

    return wrapped


def _minus_relation():
    return ExternalRelation(
        "Minus",
        ("left", "right", "out"),
        {
            ("left", "right"): _guard_numeric(
                lambda k: [{**k, "out": k["left"] - k["right"]}]
            ),
            ("left", "out"): _guard_numeric(
                lambda k: [{**k, "right": k["left"] - k["out"]}]
            ),
            ("right", "out"): _guard_numeric(
                lambda k: [{**k, "left": k["right"] + k["out"]}]
            ),
            ("left", "right", "out"): _guard_numeric(
                lambda k: [k] if k["left"] - k["right"] == k["out"] else []
            ),
        },
    )


def _add_relation():
    return ExternalRelation(
        "Add",
        ("left", "right", "out"),
        {
            ("left", "right"): _guard_numeric(
                lambda k: [{**k, "out": k["left"] + k["right"]}]
            ),
            ("left", "out"): _guard_numeric(
                lambda k: [{**k, "right": k["out"] - k["left"]}]
            ),
            ("right", "out"): _guard_numeric(
                lambda k: [{**k, "left": k["out"] - k["right"]}]
            ),
            ("left", "right", "out"): _guard_numeric(
                lambda k: [k] if k["left"] + k["right"] == k["out"] else []
            ),
        },
    )


def _times_relation():
    """Multiplication with positional attribute names, as in Fig. 20."""

    def divide(product, factor):
        if factor == 0:
            return []
        quotient = product / factor
        if isinstance(product, int) and isinstance(factor, int) and product % factor == 0:
            quotient = product // factor
        return [quotient]

    return ExternalRelation(
        "Times",
        ("$1", "$2", "out"),
        {
            ("$1", "$2"): _guard_numeric(lambda k: [{**k, "out": k["$1"] * k["$2"]}]),
            ("$1", "out"): _guard_numeric(
                lambda k: [{**k, "$2": q} for q in divide(k["out"], k["$1"])]
            ),
            ("$2", "out"): _guard_numeric(
                lambda k: [{**k, "$1": q} for q in divide(k["out"], k["$2"])]
            ),
            ("$1", "$2", "out"): _guard_numeric(
                lambda k: [k] if k["$1"] * k["$2"] == k["out"] else []
            ),
        },
    )


def _comparison_relation(name, op):
    """Boolean externals: both operands must be bound (check-only pattern)."""

    def check(known):
        if compare(known["left"], op, known["right"], three_valued=False):
            return [dict(known)]
        return []

    return ExternalRelation(name, ("left", "right"), {("left", "right"): check})


def _concat_relation():
    return ExternalRelation(
        "Concat",
        ("left", "right", "out"),
        {
            ("left", "right"): lambda k: [
                {**k, "out": str(k["left"]) + str(k["right"])}
            ],
            ("left", "right", "out"): lambda k: (
                [k] if str(k["left"]) + str(k["right"]) == k["out"] else []
            ),
        },
    )


def standard_registry():
    """The registry of built-ins used throughout the paper's examples.

    Symbolic aliases mirror the paper's figures: ``"-"`` for Minus, ``"*"``
    for Times (Fig. 20), ``">"`` for Bigger (Fig. 15).
    """
    registry = ExternalRegistry()
    registry.add(_minus_relation(), "-")
    registry.add(_add_relation(), "+")
    registry.add(_times_relation(), "*")
    registry.add(_comparison_relation("Bigger", ">"), ">")
    registry.add(_comparison_relation("Smaller", "<"), "<")
    registry.add(_comparison_relation("BiggerEq", ">="), ">=")
    registry.add(_comparison_relation("SmallerEq", "<="), "<=")
    registry.add(_comparison_relation("Equals", "="), "=")
    registry.add(_concat_relation())
    return registry
