"""The ARC reference evaluator and its supporting machinery."""

from .evaluator import Evaluator, evaluate
from .externals import ExternalRegistry, ExternalRelation, standard_registry
from .abstract import AbstractSource
from .reference import reference_evaluate
from . import aggregates, fixpoint, joins

__all__ = [
    "Evaluator",
    "evaluate",
    "ExternalRegistry",
    "ExternalRelation",
    "standard_registry",
    "AbstractSource",
    "reference_evaluate",
    "aggregates",
    "fixpoint",
    "joins",
]
