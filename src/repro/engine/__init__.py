"""The ARC evaluator, its planner, and supporting machinery."""

from .evaluator import Evaluator, evaluate
from .externals import ExternalRegistry, ExternalRelation, standard_registry
from .abstract import AbstractSource
from .planner import ExecutionStats
from .reference import reference_evaluate
from . import aggregates, decorrelate, fixpoint, joins, planner

__all__ = [
    "Evaluator",
    "evaluate",
    "ExecutionStats",
    "ExternalRegistry",
    "ExternalRelation",
    "standard_registry",
    "AbstractSource",
    "reference_evaluate",
    "aggregates",
    "decorrelate",
    "fixpoint",
    "joins",
    "planner",
]
