"""FOI → FIO decorrelation of lateral scopes.

The paper contrasts two renderings of "aggregate per outer row"
(Section 2.5): **FOI** — "for each outer row, compute the inner aggregate" —
nests a correlated collection inside the outer scope (Fig. 5b/13b), while
**FIO** — "compute the inner aggregates first, then join" — groups the inner
relation once and joins on the correlation key (Fig. 4a/21b).  The reference
strategy evaluates FOI literally: the nested collection is re-evaluated per
outer row.  This module rewrites FOI plans into FIO at two levels:

* **Plan level** (:func:`plan_for` + :meth:`CorrelationSpec.materialize`) —
  when a lateral binding's inner scope is correlated *only through equality
  on outer variables*, the inner scope is rewritten into an uncorrelated
  collection whose head carries the correlation keys, materialized **once**
  as a grouped hash index ``{key tuple: [(row, mult), ...]}``, and the outer
  loop probes that index per row instead of re-evaluating the collection
  (:class:`repro.engine.planner.CompiledScope` consumes the plan).  The
  index is cached on the inner scope's stored relations (grouped-index
  reuse via :meth:`repro.data.relation.Relation.derived_put_shared`), so it
  survives across evaluations and is dropped the moment any inner relation
  mutates.  ``evaluate(..., decorrelate=False)`` / ``--no-decorrelate``
  disables the pass, keeping the per-row strategy as the oracle.

* **SQL level** (:func:`rewrite_for_sql`) — the same equality-correlated
  scopes are rewritten into plain ``group by`` derived tables joined on the
  key columns (dropping the ``lateral`` keyword, so engines without
  ``LATERAL`` — SQLite — execute them natively), and non-grouped correlated
  collections are *unnested* into the outer scope (sound under the bag
  semantics the SQLite backend requires).  γ∅ aggregate-only scopes are
  left to the renderer's correlated-scalar-subquery device
  (:func:`repro.core.scopes.scalar_subquery_shape`).

Safety: the rewrite **refuses** (and evaluation falls back to the per-row
strategy) whenever the correlation is not provably a pure equality join —

* non-equality correlation predicates (eq2/eq15's ``<`` shapes);
* outer variables referenced inside nested scopes (nested laterals),
  head assignments, grouping keys, disjunctions, or mixed operands;
* correlation keys that may be NULL under three-valued logic (a grouped
  NULL key would need UNKNOWN-aware probing; the per-row strategy is kept
  instead of reasoning about it);
* inner scopes without a stored relation to anchor the materialization
  (externals, abstract definitions).

The **count-bug asymmetry** (Section 3.2) is handled explicitly: a γ∅ scope
emits one row *even over an empty group*, which a grouped index cannot
represent — outer keys with no inner rows have no bucket.  The plan-level
probe compensates by evaluating the original scope for the missing key
(cheap: the planner's inner probe finds nothing and finalizes the empty
group), and the SQL level never group-by-rewrites γ∅ scopes at all.
"""

from __future__ import annotations

import weakref

from ..core import nodes as n
from ..core.scopes import free_variables, shadows_binding
from ..data.relation import Relation
from ..data.values import is_null
from ..errors import EvaluationError


def _scalar_inlinable(quant, binding):
    # The renderer's own inlining decision (it depends on how sql_render
    # emits scalar subqueries); imported lazily because it is only needed
    # on the SQL-rewrite path, which only the SQLite backend exercises.
    from ..backends.sql_render import scalar_inlinable

    return scalar_inlinable(quant, binding)


class CorrelationSpec:
    """Structural decorrelation analysis of one nested collection.

    ``reason`` is None when the FOI → FIO rewrite applies; every other field
    is only meaningful in that case.  Specs are cached per AST node
    (weakly), shared by the planner and the SQL rewrite.
    """

    __slots__ = (
        # NOTE: no back-reference to the analyzed Collection — the spec is
        # the *value* of a weak-keyed cache keyed by that node, and a strong
        # back-edge would make every entry immortal.
        "reason",  # refusal reason, or None when the rewrite applies
        "outer_exprs",  # per key: the outer-side expression (probe key)
        "key_sources",  # per key: (relation, attr) when the inner side is a
        #               plain stored column (NULL-provability), else None
        "key_attrs",  # fresh head attributes carrying the keys
        "head_attrs",  # original head attributes (buckets project to these)
        "rewritten",  # the uncorrelated FIO Collection (head + key_attrs)
        "empty_group",  # original scope was γ∅ (probe misses synthesize it)
        "grouped",  # original scope had grouping keys
        "relation_names",  # stored relations anchoring the materialized index
        "__weakref__",  # the index cache is keyed weakly by this spec
    )

    def __init__(self, reason=None):
        self.reason = reason
        self.outer_exprs = ()
        self.key_sources = ()
        self.key_attrs = ()
        self.head_attrs = ()
        self.rewritten = None
        self.empty_group = False
        self.grouped = False
        self.relation_names = ()

    # -- plan-level execution --------------------------------------------------

    def materialize(self, evaluator):
        """The grouped FIO index ``{key: [(row, mult), ...]}``, or None.

        Built at most once per catalog state: the index is cached on every
        stored relation the inner scope reads (any mutation drops it), and
        shared across evaluator instances running the same conventions.
        Returns None when a relation is no longer resolvable — the caller
        falls back to per-row evaluation, which surfaces the exact error.
        """
        try:
            anchors = [
                evaluator._resolve_relation(name) for name in self.relation_names
            ]
        except EvaluationError:
            return None
        tag = ("fio", evaluator.conventions)
        index = Relation.derived_get_shared(anchors, self, tag)
        if index is not None:
            return index
        counter = evaluator._eval_collection(self.rewritten, {})
        index = {}
        key_attrs = self.key_attrs
        head_attrs = self.head_attrs
        for row, mult in counter.items():
            values = row._values
            key = tuple(values[a] for a in key_attrs)
            entry = (row.project(head_attrs), mult)
            bucket = index.get(key)
            if bucket is None:
                index[key] = [entry]
            else:
                bucket.append(entry)
        evaluator.stats.decorr_index_builds += 1
        Relation.derived_put_shared(anchors, self, tag, index)
        return index


_SPECS = weakref.WeakKeyDictionary()


def analyze(collection):
    """The (weakly cached) :class:`CorrelationSpec` for a nested collection."""
    spec = _SPECS.get(collection)
    if spec is None:
        spec = _analyze(collection)
        _SPECS[collection] = spec
    return spec


def _analyze(collection):
    free = frozenset(free_variables(collection))
    body = collection.body
    if isinstance(body, n.Or):
        return CorrelationSpec("inner body is a disjunction")
    if not isinstance(body, n.Quantifier):
        return CorrelationSpec(
            f"inner body is a {type(body).__name__}, not a quantifier scope"
        )
    if body.join is not None:
        return CorrelationSpec("inner scope carries a join annotation")
    inner_vars = {b.var for b in body.bindings}
    for binding in body.bindings:
        if n.vars_used(binding.source) & free:
            return CorrelationSpec(
                f"nested lateral binding {binding.var!r} references the outer "
                "correlation variables"
            )
    if body.grouping is not None:
        for key in body.grouping.keys:
            if n.vars_used(key) & free:
                return CorrelationSpec(
                    "grouping key references outer variables"
                )
    head = collection.head
    conjunct_list = n.conjuncts(body.body)
    correlated = []  # conjunct positions consumed by the rewrite
    pairs = []  # (inner side, outer side) in the original tree
    orientations = []  # True when the inner side is the left operand
    for index, conjunct in enumerate(conjunct_list):
        used = n.vars_used(conjunct)
        if not used & free:
            continue
        if head.name in used:
            return CorrelationSpec(
                "outer variables appear in a head assignment"
            )
        if any(
            isinstance(sub, (n.Quantifier, n.Collection)) for sub in conjunct.walk()
        ):
            return CorrelationSpec(
                "outer variables are referenced inside a nested scope"
            )
        if not used - free:
            return CorrelationSpec(
                "correlates through an outer-only predicate (γ membership "
                "depends on the outer row beyond an equality key)"
            )
        if not isinstance(conjunct, n.Comparison) or conjunct.op != "=":
            label = (
                conjunct.op
                if isinstance(conjunct, n.Comparison)
                else type(conjunct).__name__
            )
            return CorrelationSpec(
                f"correlates through a non-equality predicate ({label})"
            )
        if conjunct.has_aggregate():
            return CorrelationSpec(
                "correlation predicate contains an aggregate"
            )
        pair = None
        for side, other, left_inner in (
            (conjunct.left, conjunct.right, True),
            (conjunct.right, conjunct.left, False),
        ):
            side_vars = n.vars_used(side)
            other_vars = n.vars_used(other)
            if (
                side_vars
                and side_vars <= inner_vars
                and other_vars
                and other_vars <= free
            ):
                pair = (side, other)
                orientations.append(left_inner)
                break
        if pair is None:
            return CorrelationSpec(
                "correlation equality mixes inner and outer variables in one "
                "operand"
            )
        correlated.append(index)
        pairs.append(pair)
    relation_names = tuple(
        sorted(
            {sub.name for sub in collection.walk() if isinstance(sub, n.RelationRef)}
        )
    )
    if not relation_names:
        return CorrelationSpec(
            "inner scope references no stored relation to anchor the "
            "materialization"
        )

    spec = CorrelationSpec()
    spec.outer_exprs = tuple(outer for _, outer in pairs)
    spec.relation_names = relation_names
    spec.head_attrs = tuple(head.attrs)
    spec.empty_group = body.grouping is not None and not body.grouping.keys
    spec.grouped = body.grouping is not None and bool(body.grouping.keys)

    bindings_by_var = {b.var: b for b in body.bindings}
    key_sources = []
    for inner_expr, _ in pairs:
        source = None
        if isinstance(inner_expr, n.Attr):
            binding = bindings_by_var.get(inner_expr.var)
            if binding is not None and isinstance(binding.source, n.RelationRef):
                source = (binding.source.name, inner_expr.attr)
        key_sources.append(source)
    spec.key_sources = tuple(key_sources)

    # Fresh key attributes (avoiding the head's own names).
    taken = set(head.attrs)
    key_attrs = []
    counter = 0
    for _ in pairs:
        while f"_ck{counter}" in taken:
            counter += 1
        name = f"_ck{counter}"
        taken.add(name)
        key_attrs.append(name)
        counter += 1
    spec.key_attrs = tuple(key_attrs)

    # The FIO rewrite: drop the correlated equalities, project their inner
    # sides as key attributes, and fold them into the grouping keys (γ∅
    # becomes γ keys — the count-bug compensation happens at probe time).
    clone = n.clone(collection)
    cbody = clone.body
    cconjuncts = n.conjuncts(cbody.body)
    consumed = set(correlated)
    inner_keys = [
        (cconjuncts[i].left if left_inner else cconjuncts[i].right)
        for i, left_inner in zip(correlated, orientations)
    ]
    kept = [c for i, c in enumerate(cconjuncts) if i not in consumed]
    assignments = [
        n.Comparison(n.Attr(head.name, ck), "=", expr)
        for ck, expr in zip(key_attrs, inner_keys)
    ]
    cbody.body = n.make_and(kept + assignments)
    if cbody.grouping is not None:
        keys = list(cbody.grouping.keys)
        for expr in inner_keys:
            if not any(n.structurally_equal(expr, key) for key in keys):
                keys.append(n.clone(expr))
        cbody.grouping = n.Grouping(tuple(keys))
    clone.head = n.Head(head.name, tuple(head.attrs) + tuple(key_attrs))
    spec.rewritten = clone
    return spec


# ---------------------------------------------------------------------------
# Plan-level decision (per evaluator: flags, conventions, catalog)
# ---------------------------------------------------------------------------


class _NullCheckOwner:
    """Weak-referenceable key for per-column NULL caches on relations."""


_NULL_OWNER = _NullCheckOwner()


def _column_has_null(relation, attr):
    """Whether any stored value of *attr* is NULL (cached until mutation)."""
    tag = ("column_has_null", attr)
    cached = relation.derived_get(_NULL_OWNER, tag)
    if cached is None:
        cached = any(
            is_null(row._values[attr]) for row in relation.iter_distinct()
        )
        relation.derived_put(_NULL_OWNER, tag, cached)
    return cached


def plan_for(evaluator, source):
    """Decide decorrelation of a lateral *source* under *evaluator*.

    Returns ``(spec, None)`` when the FIO rewrite applies, else
    ``(None, reason)``.  The decision layers the evaluator-dependent checks
    (escape hatch, stored relations, 3VL NULL keys) on top of the cached
    structural analysis; it is recomputed on every plan-cache lookup, so a
    mutation that adds NULLs to a key column flips the cached plan back to
    the per-row strategy.
    """
    if not getattr(evaluator, "decorrelate", True):
        return None, "decorrelation disabled (decorrelate=False)"
    spec = analyze(source)
    if spec.reason is not None:
        return None, spec.reason
    for name in spec.relation_names:
        if name not in evaluator.defined and name not in evaluator.database:
            return None, f"inner relation {name!r} has no stored extension"
    if evaluator.conventions.three_valued:
        for key_source in spec.key_sources:
            if key_source is None:
                return None, (
                    "cannot prove the correlation key non-NULL under "
                    "three-valued logic"
                )
            name, attr = key_source
            relation = evaluator._resolve_relation(name)
            if attr not in relation._schema_set:
                return None, (
                    f"correlation key {name}.{attr} is not a stored attribute"
                )
            if _column_has_null(relation, attr):
                return None, (
                    f"correlation key column {name}.{attr} contains NULL "
                    "under three-valued logic"
                )
    return spec, None


def probe_binding(evaluator, binding):
    """Decorrelation probe for one binding: ``(spec, reason)`` (tests/tools)."""
    if not isinstance(binding.source, n.Collection):
        return None, "binding ranges over a stored relation (nothing to decorrelate)"
    return plan_for(evaluator, binding.source)


# ---------------------------------------------------------------------------
# SQL-level rewrite (bag semantics; used by the SQLite backend)
# ---------------------------------------------------------------------------

_SQL_REWRITES = weakref.WeakKeyDictionary()


def rewrite_for_sql(node):
    """Decorrelate *node* for SQL rendering; ``(rewritten, leftovers)``.

    Sound under bag semantics (the only conventions the SQLite backend
    accepts): equality-correlated grouped/non-grouped laterals become plain
    ``group by`` derived tables joined on the projected key columns, and
    non-grouped correlated collections are unnested into the outer scope.
    γ∅ scopes are never group-by-rewritten (the count bug: an empty group
    must still emit a row); the aggregate-only ones render as correlated
    scalar subqueries instead, which SQLite executes natively.

    *leftovers* lists ``(var, reason)`` for bindings that remain correlated
    and will need the ``lateral`` keyword — the backend's capability probe
    turns each into a specific fallback message.
    """
    cached = _SQL_REWRITES.get(node)
    if cached is None:
        leftovers = []
        rewritten = n.transform(node, lambda sub: _fix_quantifier(sub, leftovers))
        cached = (rewritten, tuple(leftovers))
        _SQL_REWRITES[node] = cached
    return cached


def _fix_quantifier(node, leftovers):
    if not isinstance(node, n.Quantifier):
        return node
    bindings = list(node.bindings)
    extra = []  # join conjuncts added by FIO rewrites
    substitutions = {}  # (var, attr) -> replacement expr, from unnesting
    spliced = False
    out = []
    for binding in bindings:
        source = binding.source
        if not isinstance(source, n.Collection) or not free_variables(
            source
        ):
            out.append(binding)
            continue
        spec = analyze(source)
        if spec.reason is None and not spec.empty_group:
            # FIO: uncorrelated grouped derived table + key-equality join.
            out.append(n.Binding(binding.var, n.clone(spec.rewritten)))
            extra.extend(
                n.Comparison(n.Attr(binding.var, ck), "=", n.clone(outer))
                for ck, outer in zip(spec.key_attrs, spec.outer_exprs)
            )
            continue
        unnested = _try_unnest(node, binding)
        if unnested is not None:
            inner_bindings, moved, mapping = unnested
            out.extend(inner_bindings)
            extra.extend(moved)
            substitutions.update(mapping)
            spliced = True
            continue
        scalar_reason = _scalar_inlinable(node, binding)
        if scalar_reason is None:
            out.append(binding)  # the renderer inlines it as scalar subqueries
            continue
        fio_reason = spec.reason or (
            "γ∅ scope must emit a row even over an empty group (the count "
            "bug forbids a group-by rewrite)"
        )
        leftovers.append(
            (
                binding.var,
                f"cannot decorrelate ({fio_reason}) nor inline as a scalar "
                f"subquery ({scalar_reason})",
            )
        )
        out.append(binding)
    if not extra and not spliced:
        return node
    body = n.make_and(n.conjuncts(node.body) + extra)
    rebuilt = n.Quantifier(out, body, node.grouping, node.join)
    if substitutions:
        rebuilt = _substitute_attrs(rebuilt, substitutions)
    return rebuilt


def _substitute_attrs(node, mapping):
    """Replace ``Attr(var, attr)`` references per *mapping* (cloning values)."""

    def swap(sub):
        if isinstance(sub, n.Attr):
            replacement = mapping.get((sub.var, sub.attr))
            if replacement is not None:
                return n.clone(replacement)
        return sub

    return n.transform(node, swap)


def _binder_names(node, *, skip=None):
    """Every variable bound (bindings, collection heads) in the subtree."""
    names = set()

    def scan(sub):
        if sub is skip:
            return
        if isinstance(sub, n.Binding):
            names.add(sub.var)
        elif isinstance(sub, n.Collection):
            names.add(sub.head.name)
        for child in sub.children():
            scan(child)

    scan(node)
    return names


def _vars_used_skipping(node, skip):
    """Attr variable names referenced outside the *skip* subtree."""
    names = set()

    def scan(sub):
        if sub is skip:
            return
        if isinstance(sub, n.Attr):
            names.add(sub.var)
        for child in sub.children():
            scan(child)

    scan(node)
    return names


def _try_unnest(quant, binding):
    """Unnest a non-grouped correlated collection into the outer scope.

    Returns ``(inner bindings, moved row formulas, substitution map)`` or
    None when the shape is unsafe.  Sound under bag semantics: a non-grouped
    collection emits one head tuple per satisfying inner combination, so
    binding the inner rows directly (with the head assignments substituted
    for ``var.attr`` references) preserves multiplicities for *any*
    correlation predicate — this is what makes eq2's ``<``-correlated
    lateral executable on engines without LATERAL.
    """
    source = binding.source
    body = source.body
    if not isinstance(body, n.Quantifier):
        return None
    if body.grouping is not None or body.join is not None:
        return None
    if not all(isinstance(b.source, n.RelationRef) for b in body.bindings):
        return None
    if quant.join is not None and any(
        isinstance(sub, n.JoinVar) and sub.var == binding.var
        for sub in quant.join.walk()
    ):
        return None
    if shadows_binding(quant, binding):
        return None
    head = source.head
    assignments = {}
    row_formulas = []
    for conjunct in n.conjuncts(body.body):
        target = None
        if isinstance(conjunct, n.Comparison) and conjunct.op == "=":
            for side, other in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if (
                    isinstance(side, n.Attr)
                    and side.var == head.name
                    and side.attr in head.attrs
                    and head.name not in n.vars_used(other)
                    and not any(
                        isinstance(sub, n.AggCall) for sub in other.walk()
                    )
                ):
                    target = (side.attr, other)
                    break
        if target is not None:
            if target[0] in assignments:
                return None  # duplicate head assignment: keep the lateral
            assignments[target[0]] = target[1]
            continue
        if head.name in n.vars_used(conjunct) or (
            isinstance(conjunct, n.Comparison) and conjunct.has_aggregate()
        ):
            return None
        row_formulas.append(conjunct)
    if set(head.attrs) - set(assignments):
        return None

    # Variable hygiene: inner variables colliding with names visible in the
    # outer scope are renamed; shadowing inside nested binders would make
    # the rename unsound, so those shapes keep the lateral.
    outer_names = (
        _binder_names(quant, skip=source)
        | _vars_used_skipping(quant, source)
        | {b.var for b in quant.bindings}
    )
    inner_vars = [b.var for b in body.bindings]
    collisions = set(inner_vars) & outer_names
    if collisions and any(
        isinstance(sub, (n.Quantifier, n.Collection)) for sub in body.body.walk()
    ):
        # A nested scope could shadow a variable being renamed.
        return None
    renames = {}
    if collisions:
        taken = set(outer_names) | set(inner_vars)
        for var in inner_vars:
            if var in collisions:
                counter = 0
                while f"{var}__u{counter}" in taken:
                    counter += 1
                renames[var] = f"{var}__u{counter}"
                taken.add(renames[var])

    def rename(sub):
        if isinstance(sub, n.Attr) and sub.var in renames:
            return n.Attr(renames[sub.var], sub.attr)
        if isinstance(sub, n.Binding) and sub.var in renames:
            return n.Binding(renames[sub.var], sub.source)
        return sub

    inner_bindings = [n.transform(n.clone(b), rename) for b in body.bindings]
    moved = [n.transform(n.clone(f), rename) for f in row_formulas]
    mapping = {
        (binding.var, attr): n.transform(n.clone(expr), rename)
        for attr, expr in assignments.items()
    }
    return inner_bindings, moved, mapping
