"""FOI → FIO decorrelation of lateral scopes.

The paper contrasts two renderings of "aggregate per outer row"
(Section 2.5): **FOI** — "for each outer row, compute the inner aggregate" —
nests a correlated collection inside the outer scope (Fig. 5b/13b), while
**FIO** — "compute the inner aggregates first, then join" — groups the inner
relation once and joins on the correlation key (Fig. 4a/21b).  The reference
strategy evaluates FOI literally: the nested collection is re-evaluated per
outer row.  This module rewrites FOI plans into FIO at two levels:

* **Plan level** (:func:`plan_for` + :meth:`CorrelationSpec.materialize`) —
  a lateral binding's inner scope is rewritten into an uncorrelated
  collection materialized **once** and probed per outer row
  (:class:`repro.engine.planner.CompiledScope` consumes the plan), under one
  of two probe strategies selected by the correlation shape:

  - ``"eq"`` — correlation *only through equalities*: a grouped hash index
    ``{key tuple: [(row, mult), ...]}`` probed per outer row;
  - ``"band"`` — equalities plus exactly **one** order predicate
    (``<``/``<=``/``>``/``>=``, the eq2/eq15 θ shapes): the inner rows are
    materialized sorted on the correlated attribute per equality key, so a
    probe is a bisect.  For γ∅ aggregate scopes the sorted entries carry
    *prefix-aggregate arrays* (sum/count/avg/min/max running folds in the
    direction the operator selects), so the correlated aggregate is a
    bisect + O(1) array lookup instead of a per-row scan; for non-grouped
    scopes the probe yields the matching sorted slice.

  Indexes are cached on the inner scope's stored relations
  (:meth:`repro.data.relation.Relation.derived_put_shared`), so they
  survive across evaluations and are dropped the moment any inner relation
  mutates.  ``evaluate(..., decorrelate=False)`` / ``--no-decorrelate``
  disables the pass, keeping the per-row strategy as the oracle.

* **SQL level** (:func:`rewrite_for_sql`) — equality-correlated scopes are
  rewritten into plain ``group by`` derived tables joined on the key
  columns (dropping the ``lateral`` keyword, so engines without ``LATERAL``
  — SQLite — execute them natively), non-grouped correlated collections are
  *unnested* into the outer scope, and non-grouped θ-correlated collections
  that resist unnesting become uncorrelated derived tables joined through
  the *inequality* key (the band shape's native SQL rendering).  γ∅
  aggregate-only scopes — any correlation operator, including θ — are left
  to the renderer's correlated-scalar-subquery device
  (:func:`repro.core.scopes.scalar_subquery_shape`).

Two further refinements close the remaining per-row tails:

* **Tri-bucket 3VL probes.**  Correlation keys that may be NULL under
  three-valued logic used to refuse outright.  The materialized index is
  now UNKNOWN-aware: inner rows whose key evaluates to NULL are TRUE for no
  probe (``x = NULL`` is never TRUE under 3VL) and are segregated into an
  UNKNOWN bucket that strict enumeration skips, while non-NULL rows stay in
  the TRUE buckets — so NULL-able keys decorrelate instead of re-evaluating
  per row.  Probes against such an index count ``tribucket_probes``.

* **Domain-join γ∅ compensation** (Fig. 21c).  A γ∅ scope emits one row
  *even over an empty group*, which a grouped index cannot represent —
  outer keys with no inner rows have no bucket.  Probe misses used to
  re-evaluate the original scope per frame; since an accepted γ∅ spec's
  empty-group frame cannot reference the outer row (head assignments using
  outer variables refuse), the frames for *all* missing keys are identical
  — exactly the anti-join of the outer key domain against the index keyset,
  every member mapped to one shared frame.  The frame is synthesized once
  per index (``domain_join_compensations``), and every further miss is a
  dict lookup.

Safety: the rewrite **refuses** (and evaluation falls back to the per-row
strategy) whenever the correlation shape cannot be probed exactly —

* ``<>``/``!=`` correlation predicates, or more than one order predicate;
* θ predicates under grouping *keys* (folding an order key into GROUP BY
  would split groups) or in γ∅ scopes whose head is not pure streamable
  aggregates;
* outer variables referenced inside nested scopes (nested laterals),
  head assignments, grouping keys, disjunctions, or mixed operands;
* inner scopes without a stored relation to anchor the materialization
  (externals, abstract definitions).

Data the sorted band cannot order exactly — mixed value kinds in one key
group, NULL or NaN band values under two-valued logic (whose total-order
extension ranks NULL below NaN below nothing else) — aborts the index
*build* (not the plan), falling back to per-row for that catalog state
only.
"""

from __future__ import annotations

import weakref
from bisect import bisect_left, bisect_right

from ..core import nodes as n
from ..core.scopes import (
    assignment_of,
    free_variables,
    shadows_binding,
    split_scope,
)
from ..data.relation import Relation, Tuple
from ..data.values import is_null
from ..errors import EvaluationError
from ..obs import NULL_SPAN
from . import aggregates as agg_lib

#: θ operators a band index can probe, normalized as *inner OP outer*.
BAND_OPS = ("<", "<=", ">", ">=")

#: Orientation flip: ``outer OP inner`` rewritten as ``inner OP' outer``.
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>", "!=": "!="}

#: Aggregates a prefix array can fold exactly (no ``*distinct`` variants).
_BAND_AGGS = frozenset(["sum", "count", "avg", "min", "max"])

#: Cache sentinel: this catalog state cannot be indexed (mixed value
#: kinds, or a build-time evaluation failure on rows the per-row strategy
#: never reaches); cached so repeated executes do not retry the build.
_BUILD_UNSUPPORTED = object()


def _scalar_inlinable(quant, binding):
    # The renderer's own inlining decision (it depends on how sql_render
    # emits scalar subqueries); imported lazily because it is only needed
    # on the SQL-rewrite path, which only the SQLite backend exercises.
    from ..backends.sql_render import scalar_inlinable

    return scalar_inlinable(quant, binding)


def _expr_text(expr):
    """Short human label for a correlation operand (``s.a``, ``5``, ...)."""
    if isinstance(expr, n.Attr):
        return f"{expr.var}.{expr.attr}"
    if isinstance(expr, n.Const):
        return repr(expr.value)
    return type(expr).__name__.lower()


class CorrelationSpec:
    """Structural decorrelation analysis of one nested collection.

    ``reason`` is None when the FOI → FIO rewrite applies; every other field
    is only meaningful in that case.  Specs are cached per AST node
    (weakly), shared by the planner and the SQL rewrite.
    """

    __slots__ = (
        # NOTE: no back-reference to the analyzed Collection — the spec is
        # the *value* of a weak-keyed cache keyed by that node, and a strong
        # back-edge would make every entry immortal.
        "reason",  # refusal reason, or None when the rewrite applies
        "strategy",  # "eq" (hash index) | "band" (sorted θ-band index)
        "outer_exprs",  # per equality key: the outer-side expression (probe key)
        "key_inner_exprs",  # per equality key: the inner-side expression
        "key_attrs",  # fresh head attributes carrying the keys
        "head_attrs",  # original head attributes (buckets project to these)
        "rewritten",  # the uncorrelated FIO Collection (head + key attrs)
        "band_op",  # normalized θ operator (inner OP outer), or None
        "band_outer_expr",  # outer side of the θ predicate (probe value)
        "band_inner_expr",  # inner side of the θ predicate (sort key)
        "band_attr",  # fresh head attr carrying the band key in `rewritten`
        "band_aggs",  # γ∅ band: ((head attr, agg func, arg expr | None), ...)
        "stripped",  # γ∅ band: (bindings, row formulas) for the raw row stream
        "empty_group",  # original scope was γ∅ (probe misses synthesize it)
        "grouped",  # original scope had grouping keys
        "relation_names",  # stored relations anchoring the materialized index
        "__weakref__",  # the index cache is keyed weakly by this spec
    )

    def __init__(self, reason=None):
        self.reason = reason
        self.strategy = "eq"
        self.outer_exprs = ()
        self.key_inner_exprs = ()
        self.key_attrs = ()
        self.head_attrs = ()
        self.rewritten = None
        self.band_op = None
        self.band_outer_expr = None
        self.band_inner_expr = None
        self.band_attr = None
        self.band_aggs = ()
        self.stripped = None
        self.empty_group = False
        self.grouped = False
        self.relation_names = ()

    # -- plan-level execution --------------------------------------------------

    def materialize(self, evaluator):
        """The probe index for this spec (:class:`FioIndex` or
        :class:`BandIndex`), or None.

        Built at most once per catalog state: the index is cached on every
        stored relation the inner scope reads (any mutation drops it), and
        shared across evaluator instances running the same conventions.
        Returns None when a relation is no longer resolvable — or when the
        current data cannot be indexed exactly (band over mixed value
        kinds) — and the caller falls back to per-row evaluation, which
        surfaces the exact behaviour.
        """
        try:
            anchors = [
                evaluator._resolve_relation(name) for name in self.relation_names
            ]
        except EvaluationError:
            return None
        tag = ("fio", self.strategy, evaluator.conventions)
        tracer = evaluator.tracer
        index = Relation.derived_get_shared(anchors, self, tag)
        if index is not None:
            if tracer is not None:
                tracer.event(
                    "decorr.index", cached=True, strategy=self.strategy
                )
            return None if index is _BUILD_UNSUPPORTED else index
        # A build failure falls back to per-row for this catalog state: the
        # materialization evaluates the *whole* rewritten scope, including
        # groups no probe can reach (e.g. a NULL-keyed group under 3VL
        # whose aggregate raises), while the per-row strategy only ever
        # touches what the outer rows select — its behaviour is the oracle.
        builder = self._build_band if self.strategy == "band" else self._build_eq
        with NULL_SPAN if tracer is None else tracer.span(
            "decorr.index.build", strategy=self.strategy
        ) as span:
            try:
                index = builder(evaluator)
            except (EvaluationError, TypeError):
                index = None
            span.tag(ok=index is not None)
        if index is None:
            Relation.derived_put_shared(anchors, self, tag, _BUILD_UNSUPPORTED)
            return None
        if self.strategy == "band":
            evaluator.stats.band_index_builds += 1
        else:
            evaluator.stats.decorr_index_builds += 1
        Relation.derived_put_shared(anchors, self, tag, index)
        return index

    def _build_eq(self, evaluator):
        """Grouped hash index over the equality keys (tri-bucket under 3VL)."""
        counter = evaluator._eval_collection(self.rewritten, {})
        three_valued = evaluator.conventions.three_valued
        buckets = {}
        unknown = 0
        key_attrs = self.key_attrs
        head_attrs = self.head_attrs
        for row, mult in counter.items():
            values = row._values
            key = tuple(values[a] for a in key_attrs)
            if three_valued and any(is_null(v) for v in key):
                # UNKNOWN candidate: ``x = NULL`` is TRUE for no probe, so
                # strict enumeration never yields the row — but it stays
                # accounted for, which is what lets NULL-able keys
                # decorrelate instead of refusing.
                unknown += 1
                continue
            entry = (row.project(head_attrs), mult)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [entry]
            else:
                bucket.append(entry)
        return FioIndex(buckets, unknown, three_valued and unknown > 0)

    def _build_band(self, evaluator):
        """Sorted θ-band index (per-key prefix aggregates for γ∅ scopes)."""
        conventions = evaluator.conventions
        three_valued = conventions.three_valued
        groups = {}
        unknown = 0
        if self.empty_group:
            # γ∅ aggregate scope: enumerate the *raw* pre-aggregation row
            # stream (exact bag multiplicities — a projected collection
            # would dedupe under set conventions) through a compiled plan.
            from .planner import compile_bindings

            bindings, formulas = self.stripped
            compiled = compile_bindings(evaluator, list(bindings), list(formulas))
            key_exprs = self.key_inner_exprs
            band_expr = self.band_inner_expr
            arg_exprs = tuple(arg for _, _, arg in self.band_aggs)
            eval_expr = evaluator._eval_expr
            for env, mult in compiled.execute(evaluator, {}):
                band_value = eval_expr(band_expr, env)
                if is_null(band_value):
                    if three_valued:
                        unknown += 1
                        continue
                    return None  # 2VL orders NULL; keep the per-row oracle
                if band_value != band_value:
                    if not three_valued:
                        # 2VL's total-order extension ranks NaN above NULL
                        # (compare keys (1, NaN) vs (0, 0)), so a NULL outer
                        # probe with >/>= would select it; the sorted band
                        # cannot carry that, so keep the per-row oracle.
                        return None
                    continue  # 3VL: NaN satisfies no ordering predicate
                key = tuple(eval_expr(expr, env) for expr in key_exprs)
                if three_valued and any(is_null(v) for v in key):
                    unknown += 1
                    continue
                args = tuple(
                    None if arg is None else eval_expr(arg, env)
                    for arg in arg_exprs
                )
                entry = (band_value, mult, args)
                bucket = groups.get(key)
                if bucket is None:
                    groups[key] = [entry]
                else:
                    bucket.append(entry)
            built = {}
            for key, entries in groups.items():
                group = _BandGroup.for_aggregates(
                    entries, self.band_op, self.band_aggs
                )
                if group is None:
                    return None
                built[key] = group
            empty_row = Tuple._adopt(
                {
                    attr: agg_lib.aggregate(func, (), conventions)
                    for attr, func, _ in self.band_aggs
                }
            )
            return BandIndex(
                built,
                self.band_op,
                aggs=self.band_aggs,
                conventions=conventions,
                empty_row=empty_row,
                tribucket=three_valued and unknown > 0,
            )

        # Non-grouped scope: the rewritten collection already carries the
        # head, equality keys, and band key per row; sort each key bucket.
        counter = evaluator._eval_collection(self.rewritten, {})
        band_attr = self.band_attr
        key_attrs = self.key_attrs
        head_attrs = self.head_attrs
        for row, mult in counter.items():
            values = row._values
            band_value = values[band_attr]
            if is_null(band_value):
                if three_valued:
                    unknown += 1
                    continue
                return None
            if band_value != band_value:
                if not three_valued:
                    return None  # 2VL ranks NaN above NULL (see above)
                continue
            key = tuple(values[a] for a in key_attrs)
            if three_valued and any(is_null(v) for v in key):
                unknown += 1
                continue
            entry = (band_value, row.project(head_attrs), mult)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [entry]
            else:
                bucket.append(entry)
        built = {}
        for key, entries in groups.items():
            group = _BandGroup.for_rows(entries, self.band_op)
            if group is None:
                return None
            built[key] = group
        return BandIndex(
            built,
            self.band_op,
            aggs=None,
            conventions=conventions,
            empty_row=None,
            tribucket=three_valued and unknown > 0,
        )


class FioIndex:
    """Materialized equality-FIO index: TRUE buckets + UNKNOWN tally.

    ``tribucket`` marks an index whose build segregated UNKNOWN candidates
    (3VL, NULL keys present) — probes against it count ``tribucket_probes``.
    ``empty_group_items`` is the domain-join γ∅ compensation: the shared
    empty-group frame every missing outer key maps to.
    """

    __slots__ = ("buckets", "unknown_count", "tribucket", "_empty_items")

    def __init__(self, buckets, unknown_count, tribucket):
        self.buckets = buckets
        self.unknown_count = unknown_count
        self.tribucket = tribucket
        self._empty_items = None

    def get(self, key):
        return self.buckets.get(key)

    def empty_group_items(self, evaluator, source, env, stats):
        """The γ∅ empty-group frame, synthesized once per index.

        An accepted γ∅ spec's head assignments cannot reference the outer
        row, so the frame is identical for every probe miss: one anti-join
        of the outer key domain against the index keyset, batched into a
        single synthesis (Fig. 21c) instead of a per-frame re-evaluation.
        """
        items = self._empty_items
        if items is None:
            items = list(evaluator._eval_collection(source, env).items())
            self._empty_items = items
            stats.domain_join_compensations += 1
        return items


class _BandGroup:
    """One equality-key group of a band index: sorted keys + payload.

    ``vals`` is ascending; ``payload`` is ordered in *selection order* —
    ascending for ``<``/``<=`` (the probe takes a prefix), descending for
    ``>``/``>=`` (the probe takes a suffix, i.e. a prefix of the reversed
    order) — so a probe is one bisect plus an O(1) array read (aggregates)
    or a slice (rows).
    """

    __slots__ = ("vals", "kind", "payload")

    _NUM = (bool, int, float)

    def __init__(self, vals, kind, payload):
        self.vals = vals
        self.kind = kind
        self.payload = payload

    @staticmethod
    def _kind_of(entries):
        """Homogeneous orderable kind of the band values, or None (mixed)."""
        kind = None
        for entry in entries:
            value = entry[0]
            if isinstance(value, _BandGroup._NUM):
                value_kind = "num"
            elif isinstance(value, str):
                value_kind = "str"
            else:
                return None
            if kind is None:
                kind = value_kind
            elif kind != value_kind:
                # Mixed kinds have no total order consistent with the
                # comparison semantics (str vs int orders FALSE both ways).
                return None
        return kind

    @classmethod
    def for_rows(cls, entries, op):
        kind = cls._kind_of(entries)
        if kind is None:
            return None
        entries.sort(key=lambda entry: entry[0])
        vals = [entry[0] for entry in entries]
        rows = [(entry[1], entry[2]) for entry in entries]
        if op in (">", ">="):
            rows.reverse()
        return cls(vals, kind, rows)

    @classmethod
    def for_aggregates(cls, entries, op, agg_specs):
        kind = cls._kind_of(entries)
        if kind is None:
            return None
        entries.sort(key=lambda entry: entry[0])
        vals = [entry[0] for entry in entries]
        selected = entries if op in ("<", "<=") else list(reversed(entries))
        arrays = []
        try:
            for position, (_, func, arg) in enumerate(agg_specs):
                counts = [0]
                sums = [0] if func in ("sum", "avg") else None
                runs = [None] if func in ("min", "max") else None
                count = 0
                total = 0
                extreme = None
                pick = min if func == "min" else max
                for _, mult, args in selected:
                    if arg is None:  # count(*): NULLs included
                        count += mult
                    else:
                        value = args[position]
                        if not is_null(value):
                            count += mult
                            if sums is not None:
                                total = total + value * mult
                            if runs is not None:
                                extreme = (
                                    value
                                    if extreme is None
                                    else pick(extreme, value)
                                )
                    counts.append(count)
                    if sums is not None:
                        sums.append(total)
                    if runs is not None:
                        runs.append(extreme)
                arrays.append((counts, sums, runs))
        except TypeError:
            # Heterogeneous argument values: the running fold cannot be
            # computed; per-row evaluation surfaces the exact behaviour.
            return None
        return cls(vals, kind, tuple(arrays))

    def count_for(self, op, value, three_valued):
        """How many entries (in selection order) satisfy ``entry OP value``."""
        if is_null(value):
            if three_valued:
                return 0  # every comparison with NULL is UNKNOWN
            # 2VL total-order extension: NULL sorts before everything, and
            # band entries are never NULL (the build refuses), so only the
            # suffix operators match.
            return len(self.vals) if op in (">", ">=") else 0
        if value != value:
            return 0  # NaN satisfies no ordering predicate
        if isinstance(value, self._NUM):
            value_kind = "num"
        elif isinstance(value, str):
            value_kind = "str"
        else:
            value_kind = None
        if value_kind != self.kind:
            return 0  # heterogeneous ordering comparisons are FALSE
        vals = self.vals
        if op == "<":
            return bisect_left(vals, value)
        if op == "<=":
            return bisect_right(vals, value)
        if op == ">":
            return len(vals) - bisect_right(vals, value)
        return len(vals) - bisect_left(vals, value)


class BandIndex:
    """Materialized θ-band index: equality-key groups of sorted entries."""

    __slots__ = (
        "groups",
        "op",
        "aggs",
        "conventions",
        "empty_row",
        "tribucket",
    )

    def __init__(self, groups, op, *, aggs, conventions, empty_row, tribucket):
        self.groups = groups
        self.op = op
        self.aggs = aggs
        self.conventions = conventions
        self.empty_row = empty_row
        self.tribucket = tribucket

    def probe(self, key, value, is_set):
        """Bucket of ``(row, mult)`` for one outer frame.

        *key* is the evaluated equality-key tuple (None when the equality
        can never be TRUE: NULL under 3VL, NaN); *value* is the evaluated
        θ operand.  γ∅ aggregate mode always yields exactly one row (the
        count-bug contract); non-grouped mode yields the sorted slice with
        multiplicities merged per distinct head row.
        """
        group = None if key is None else self.groups.get(key)
        three_valued = self.conventions.three_valued
        selected = (
            0 if group is None else group.count_for(self.op, value, three_valued)
        )
        if self.aggs is not None:
            if not selected:
                return ((self.empty_row, 1),)
            assigns = {}
            for position, (attr, func, arg) in enumerate(self.aggs):
                counts, sums, runs = group.payload[position]
                count = counts[selected]
                if func == "count":
                    value_out = count
                elif not count:
                    value_out = agg_lib.aggregate(func, (), self.conventions)
                elif func == "sum":
                    value_out = sums[selected]
                elif func == "avg":
                    value_out = sums[selected] / count
                else:
                    value_out = runs[selected]
                assigns[attr] = value_out
            return ((Tuple._adopt(assigns), 1),)
        if not selected:
            return ()
        merged = {}
        for row, mult in group.payload[:selected]:
            if is_set:
                merged[row] = 1
            else:
                merged[row] = merged.get(row, 0) + mult
        return list(merged.items())


_SPECS = weakref.WeakKeyDictionary()


def analyze(collection):
    """The (weakly cached) :class:`CorrelationSpec` for a nested collection."""
    spec = _SPECS.get(collection)
    if spec is None:
        spec = _analyze(collection)
        _SPECS[collection] = spec
    return spec


def _band_shape_reason(body, head, label):
    """Why a θ-band candidate's *scope shape* refuses (None = band applies).

    The message always names the predicate (op + inner operand), so callers
    can tell band-eligible shapes refused for shape reasons apart from
    truly unsafe correlations.
    """
    if body.grouping is not None and body.grouping.keys:
        return (
            f"correlates through the non-equality predicate ({label}) under "
            "grouping keys — folding an order key into the grouping would "
            "split the groups, so θ-band indexes apply only to γ∅ and "
            "non-grouped scopes"
        )
    if body.grouping is None:
        return None  # non-grouped: sorted-slice probes handle any head
    assignments, agg_assignments, agg_comparisons, _ = split_scope(head, body)
    if assignments:
        return (
            f"correlates through the non-equality predicate ({label}) in a "
            "γ∅ scope with non-aggregate head assignments"
        )
    if agg_comparisons:
        return (
            f"correlates through the non-equality predicate ({label}) in a "
            "γ∅ scope with aggregate comparisons (the group may be filtered "
            "away)"
        )
    assigned = {}
    for attr, expr in agg_assignments:
        if attr in assigned:
            return (
                f"correlates through the non-equality predicate ({label}) "
                "with a duplicate head assignment"
            )
        assigned[attr] = expr
    for attr in head.attrs:
        expr = assigned.get(attr)
        if expr is None:
            return (
                f"correlates through the non-equality predicate ({label}) "
                f"and head attribute {attr!r} has no aggregate assignment"
            )
        if not isinstance(expr, n.AggCall) or expr.func not in _BAND_AGGS:
            what = expr.func if isinstance(expr, n.AggCall) else "an expression"
            return (
                f"correlates through the non-equality predicate ({label}) "
                f"with a non-prefix-foldable aggregate assignment ({what})"
            )
    return None


def _analyze(collection):
    free = frozenset(free_variables(collection))
    body = collection.body
    if isinstance(body, n.Or):
        return CorrelationSpec("inner body is a disjunction")
    if not isinstance(body, n.Quantifier):
        return CorrelationSpec(
            f"inner body is a {type(body).__name__}, not a quantifier scope"
        )
    if body.join is not None:
        return CorrelationSpec("inner scope carries a join annotation")
    inner_vars = {b.var for b in body.bindings}
    for binding in body.bindings:
        if n.vars_used(binding.source) & free:
            return CorrelationSpec(
                f"nested lateral binding {binding.var!r} references the outer "
                "correlation variables"
            )
    if body.grouping is not None:
        for key in body.grouping.keys:
            if n.vars_used(key) & free:
                return CorrelationSpec(
                    "grouping key references outer variables"
                )
    head = collection.head
    conjunct_list = n.conjuncts(body.body)
    correlated = []  # conjunct positions consumed by equality pairs
    pairs = []  # (inner side, outer side) in the original tree
    orientations = []  # True when the inner side is the left operand
    band = None  # (position, inner, outer, normalized op, label)
    for index, conjunct in enumerate(conjunct_list):
        used = n.vars_used(conjunct)
        if not used & free:
            continue
        if head.name in used:
            return CorrelationSpec(
                "outer variables appear in a head assignment"
            )
        if any(
            isinstance(sub, (n.Quantifier, n.Collection)) for sub in conjunct.walk()
        ):
            return CorrelationSpec(
                "outer variables are referenced inside a nested scope"
            )
        if not used - free:
            return CorrelationSpec(
                "correlates through an outer-only predicate (γ membership "
                "depends on the outer row beyond an equality key)"
            )
        if not isinstance(conjunct, n.Comparison):
            return CorrelationSpec(
                f"correlates through a non-comparison predicate "
                f"({type(conjunct).__name__})"
            )
        if conjunct.has_aggregate():
            return CorrelationSpec(
                "correlation predicate contains an aggregate"
            )
        pair = None
        left_inner = True
        for side, other, side_is_left in (
            (conjunct.left, conjunct.right, True),
            (conjunct.right, conjunct.left, False),
        ):
            side_vars = n.vars_used(side)
            other_vars = n.vars_used(other)
            if (
                side_vars
                and side_vars <= inner_vars
                and other_vars
                and other_vars <= free
            ):
                pair = (side, other)
                left_inner = side_is_left
                break
        if pair is None:
            return CorrelationSpec(
                "correlation equality mixes inner and outer variables in one "
                "operand"
            )
        if conjunct.op == "=":
            correlated.append(index)
            pairs.append(pair)
            orientations.append(left_inner)
            continue
        # θ candidate: normalize the operator to *inner OP outer*.
        op = conjunct.op if left_inner else _FLIP[conjunct.op]
        label = f"{op} on {_expr_text(pair[0])}"
        if op not in BAND_OPS:
            return CorrelationSpec(
                f"correlates through the non-equality predicate ({label}); "
                "only <, <=, >, >= are θ-band-indexable"
            )
        if band is not None:
            return CorrelationSpec(
                f"correlates through two non-equality predicates "
                f"({band[4]} and {label}); a θ-band index handles exactly one"
            )
        band = (index, pair[0], pair[1], op, label)
    relation_names = tuple(
        sorted(
            {sub.name for sub in collection.walk() if isinstance(sub, n.RelationRef)}
        )
    )
    if not relation_names:
        return CorrelationSpec(
            "inner scope references no stored relation to anchor the "
            "materialization"
        )
    if band is not None:
        shape_reason = _band_shape_reason(body, head, band[4])
        if shape_reason is not None:
            return CorrelationSpec(shape_reason)

    spec = CorrelationSpec()
    spec.outer_exprs = tuple(outer for _, outer in pairs)
    spec.key_inner_exprs = tuple(n.clone(inner) for inner, _ in pairs)
    spec.relation_names = relation_names
    spec.head_attrs = tuple(head.attrs)
    spec.empty_group = body.grouping is not None and not body.grouping.keys
    spec.grouped = body.grouping is not None and bool(body.grouping.keys)
    if band is not None:
        spec.strategy = "band"
        spec.band_op = band[3]
        spec.band_inner_expr = n.clone(band[1])
        spec.band_outer_expr = band[2]

    # Fresh key attributes (avoiding the head's own names).
    taken = set(head.attrs)
    key_attrs = []
    counter = 0
    wanted = len(pairs) + (1 if band is not None and not spec.empty_group else 0)
    for _ in range(wanted):
        while f"_ck{counter}" in taken:
            counter += 1
        name = f"_ck{counter}"
        taken.add(name)
        key_attrs.append(name)
        counter += 1
    if band is not None and not spec.empty_group:
        spec.band_attr = key_attrs.pop()
    spec.key_attrs = tuple(key_attrs)

    if spec.strategy == "band" and spec.empty_group:
        # γ∅ band: the probe folds prefix arrays, so materialization needs
        # the *raw* row stream — bindings plus the residual row formulas,
        # with the correlation predicates and aggregate assignments
        # stripped out.
        consumed = set(correlated)
        consumed.add(band[0])
        kept = [
            n.clone(conjunct)
            for position, conjunct in enumerate(conjunct_list)
            if position not in consumed
            and not (
                isinstance(conjunct, n.Comparison)
                and assignment_of(conjunct, head) is not None
            )
        ]
        spec.stripped = (
            tuple(n.clone(binding) for binding in body.bindings),
            tuple(kept),
        )
        agg_specs = []
        assignments = dict(split_scope(head, body)[1])
        for attr in head.attrs:
            call = assignments[attr]
            agg_specs.append(
                (attr, call.func, None if call.arg is None else n.clone(call.arg))
            )
        spec.band_aggs = tuple(agg_specs)
        return spec

    # The FIO rewrite: drop the correlated predicates, project their inner
    # sides as key attributes, and (for grouped scopes) fold the equality
    # keys into the grouping keys — γ∅ becomes γ keys; the count-bug
    # compensation happens at probe time.
    clone = n.clone(collection)
    cbody = clone.body
    cconjuncts = n.conjuncts(cbody.body)
    consumed = set(correlated)
    inner_keys = [
        (cconjuncts[i].left if left_inner else cconjuncts[i].right)
        for i, left_inner in zip(correlated, orientations)
    ]
    extra_attrs = list(spec.key_attrs)
    if band is not None:
        consumed.add(band[0])
        band_conjunct = cconjuncts[band[0]]
        band_inner = (
            band_conjunct.left
            if band_conjunct.op == band[3]
            else band_conjunct.right
        )
        inner_keys.append(band_inner)
        extra_attrs.append(spec.band_attr)
    kept = [c for i, c in enumerate(cconjuncts) if i not in consumed]
    assignments = [
        n.Comparison(n.Attr(head.name, ck), "=", expr)
        for ck, expr in zip(extra_attrs, inner_keys)
    ]
    cbody.body = n.make_and(kept + assignments)
    if cbody.grouping is not None:
        keys = list(cbody.grouping.keys)
        for expr in inner_keys:
            if not any(n.structurally_equal(expr, key) for key in keys):
                keys.append(n.clone(expr))
        cbody.grouping = n.Grouping(tuple(keys))
    clone.head = n.Head(head.name, tuple(head.attrs) + tuple(extra_attrs))
    spec.rewritten = clone
    return spec


# ---------------------------------------------------------------------------
# Plan-level decision (per evaluator: flags, conventions, catalog)
# ---------------------------------------------------------------------------


def plan_for(evaluator, source):
    """Decide decorrelation of a lateral *source* under *evaluator*.

    Returns ``(spec, None)`` when the FIO rewrite applies, else
    ``(None, reason)``.  The decision layers the evaluator-dependent checks
    (escape hatch, stored relations) on top of the cached structural
    analysis.  NULL-able correlation keys under three-valued logic no
    longer refuse: the materialized index is UNKNOWN-aware (tri-bucket), so
    the decision is data-independent — data the *band* build cannot order
    exactly still falls back per catalog state inside ``materialize``.
    """
    if not getattr(evaluator, "decorrelate", True):
        return None, "decorrelation disabled (decorrelate=False)"
    spec = analyze(source)
    if spec.reason is not None:
        return None, spec.reason
    for name in spec.relation_names:
        if name not in evaluator.defined and name not in evaluator.database:
            return None, f"inner relation {name!r} has no stored extension"
    return spec, None


def probe_binding(evaluator, binding):
    """Decorrelation probe for one binding: ``(spec, reason)`` (tests/tools)."""
    if not isinstance(binding.source, n.Collection):
        return None, "binding ranges over a stored relation (nothing to decorrelate)"
    return plan_for(evaluator, binding.source)


# ---------------------------------------------------------------------------
# SQL-level rewrite (bag semantics; used by the SQLite backend)
# ---------------------------------------------------------------------------

_SQL_REWRITES = weakref.WeakKeyDictionary()


def rewrite_for_sql(node):
    """Decorrelate *node* for SQL rendering; ``(rewritten, leftovers)``.

    Sound under bag semantics (the only conventions the SQLite backend
    accepts): equality-correlated grouped/non-grouped laterals become plain
    ``group by`` derived tables joined on the projected key columns,
    non-grouped correlated collections are unnested into the outer scope,
    and non-grouped θ-correlated collections that resist unnesting become
    uncorrelated derived tables joined through the projected band key with
    the original inequality (the band shape's native rendering).  γ∅ scopes
    are never group-by-rewritten (the count bug: an empty group must still
    emit a row); the aggregate-only ones — including θ-correlated bands —
    render as correlated scalar subqueries instead, which SQLite executes
    natively.

    *leftovers* lists ``(var, reason)`` for bindings that remain correlated
    and will need the ``lateral`` keyword — the backend's capability probe
    turns each into a specific fallback message.
    """
    cached = _SQL_REWRITES.get(node)
    if cached is None:
        leftovers = []
        rewritten = n.transform(node, lambda sub: _fix_quantifier(sub, leftovers))
        cached = (rewritten, tuple(leftovers))
        _SQL_REWRITES[node] = cached
    return cached


def _fio_join_conjuncts(spec, var):
    """Key-join conjuncts tying the FIO derived table back to the outer row."""
    extra = [
        n.Comparison(n.Attr(var, ck), "=", n.clone(outer))
        for ck, outer in zip(spec.key_attrs, spec.outer_exprs)
    ]
    if spec.strategy == "band":
        extra.append(
            n.Comparison(
                n.Attr(var, spec.band_attr),
                spec.band_op,
                n.clone(spec.band_outer_expr),
            )
        )
    return extra


def _fix_quantifier(node, leftovers):
    if not isinstance(node, n.Quantifier):
        return node
    bindings = list(node.bindings)
    extra = []  # join conjuncts added by FIO rewrites
    substitutions = {}  # (var, attr) -> replacement expr, from unnesting
    spliced = False
    out = []
    for binding in bindings:
        source = binding.source
        if not isinstance(source, n.Collection) or not free_variables(
            source
        ):
            out.append(binding)
            continue
        spec = analyze(source)
        if (
            spec.reason is None
            and not spec.empty_group
            and spec.strategy == "eq"
        ):
            # FIO: uncorrelated grouped derived table + key-equality join.
            out.append(n.Binding(binding.var, n.clone(spec.rewritten)))
            extra.extend(_fio_join_conjuncts(spec, binding.var))
            continue
        unnested = _try_unnest(node, binding)
        if unnested is not None:
            inner_bindings, moved, mapping = unnested
            out.extend(inner_bindings)
            extra.extend(moved)
            substitutions.update(mapping)
            spliced = True
            continue
        scalar_reason = _scalar_inlinable(node, binding)
        if scalar_reason is None:
            out.append(binding)  # the renderer inlines it as scalar subqueries
            continue
        if (
            spec.reason is None
            and not spec.empty_group
            and spec.strategy == "band"
        ):
            # Band FIO: uncorrelated derived table carrying the band key,
            # joined back through the original inequality — no LATERAL.
            out.append(n.Binding(binding.var, n.clone(spec.rewritten)))
            extra.extend(_fio_join_conjuncts(spec, binding.var))
            continue
        fio_reason = spec.reason or (
            "γ∅ scope must emit a row even over an empty group (the count "
            "bug forbids a group-by rewrite)"
        )
        leftovers.append(
            (
                binding.var,
                f"cannot decorrelate ({fio_reason}) nor inline as a scalar "
                f"subquery ({scalar_reason})",
            )
        )
        out.append(binding)
    if not extra and not spliced:
        return node
    body = n.make_and(n.conjuncts(node.body) + extra)
    rebuilt = n.Quantifier(out, body, node.grouping, node.join)
    if substitutions:
        rebuilt = _substitute_attrs(rebuilt, substitutions)
    return rebuilt


def _substitute_attrs(node, mapping):
    """Replace ``Attr(var, attr)`` references per *mapping* (cloning values)."""

    def swap(sub):
        if isinstance(sub, n.Attr):
            replacement = mapping.get((sub.var, sub.attr))
            if replacement is not None:
                return n.clone(replacement)
        return sub

    return n.transform(node, swap)


def _binder_names(node, *, skip=None):
    """Every variable bound (bindings, collection heads) in the subtree."""
    names = set()

    def scan(sub):
        if sub is skip:
            return
        if isinstance(sub, n.Binding):
            names.add(sub.var)
        elif isinstance(sub, n.Collection):
            names.add(sub.head.name)
        for child in sub.children():
            scan(child)

    scan(node)
    return names


def _vars_used_skipping(node, skip):
    """Attr variable names referenced outside the *skip* subtree."""
    names = set()

    def scan(sub):
        if sub is skip:
            return
        if isinstance(sub, n.Attr):
            names.add(sub.var)
        for child in sub.children():
            scan(child)

    scan(node)
    return names


def _try_unnest(quant, binding):
    """Unnest a non-grouped correlated collection into the outer scope.

    Returns ``(inner bindings, moved row formulas, substitution map)`` or
    None when the shape is unsafe.  Sound under bag semantics: a non-grouped
    collection emits one head tuple per satisfying inner combination, so
    binding the inner rows directly (with the head assignments substituted
    for ``var.attr`` references) preserves multiplicities for *any*
    correlation predicate — this is what makes eq2's ``<``-correlated
    lateral executable on engines without LATERAL.
    """
    source = binding.source
    body = source.body
    if not isinstance(body, n.Quantifier):
        return None
    if body.grouping is not None or body.join is not None:
        return None
    if not all(isinstance(b.source, n.RelationRef) for b in body.bindings):
        return None
    if quant.join is not None and any(
        isinstance(sub, n.JoinVar) and sub.var == binding.var
        for sub in quant.join.walk()
    ):
        return None
    if shadows_binding(quant, binding):
        return None
    head = source.head
    assignments = {}
    row_formulas = []
    for conjunct in n.conjuncts(body.body):
        target = None
        if isinstance(conjunct, n.Comparison) and conjunct.op == "=":
            for side, other in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if (
                    isinstance(side, n.Attr)
                    and side.var == head.name
                    and side.attr in head.attrs
                    and head.name not in n.vars_used(other)
                    and not any(
                        isinstance(sub, n.AggCall) for sub in other.walk()
                    )
                ):
                    target = (side.attr, other)
                    break
        if target is not None:
            if target[0] in assignments:
                return None  # duplicate head assignment: keep the lateral
            assignments[target[0]] = target[1]
            continue
        if head.name in n.vars_used(conjunct) or (
            isinstance(conjunct, n.Comparison) and conjunct.has_aggregate()
        ):
            return None
        row_formulas.append(conjunct)
    if set(head.attrs) - set(assignments):
        return None

    # Variable hygiene: inner variables colliding with names visible in the
    # outer scope are renamed; shadowing inside nested binders would make
    # the rename unsound, so those shapes keep the lateral.
    outer_names = (
        _binder_names(quant, skip=source)
        | _vars_used_skipping(quant, source)
        | {b.var for b in quant.bindings}
    )
    inner_vars = [b.var for b in body.bindings]
    collisions = set(inner_vars) & outer_names
    if collisions and any(
        isinstance(sub, (n.Quantifier, n.Collection)) for sub in body.body.walk()
    ):
        # A nested scope could shadow a variable being renamed.
        return None
    renames = {}
    if collisions:
        taken = set(outer_names) | set(inner_vars)
        for var in inner_vars:
            if var in collisions:
                counter = 0
                while f"{var}__u{counter}" in taken:
                    counter += 1
                renames[var] = f"{var}__u{counter}"
                taken.add(renames[var])

    def rename(sub):
        if isinstance(sub, n.Attr) and sub.var in renames:
            return n.Attr(renames[sub.var], sub.attr)
        if isinstance(sub, n.Binding) and sub.var in renames:
            return n.Binding(renames[sub.var], sub.source)
        return sub

    inner_bindings = [n.transform(n.clone(b), rename) for b in body.bindings]
    moved = [n.transform(n.clone(f), rename) for f in row_formulas]
    mapping = {
        (binding.var, attr): n.transform(n.clone(expr), rename)
        for attr, expr in assignments.items()
    }
    return inner_bindings, moved, mapping
