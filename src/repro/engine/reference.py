"""A brute-force reference evaluator for differential testing.

This module re-implements ARC's semantics for the first-order fragment
(conjunction, disjunction, negation, nested existentials — no grouping, no
join annotations, no externals) in the most direct way possible: full
cartesian enumeration of all binding environments with no short-circuiting,
no deferred resolution, and no structural cleverness.

It exists purely as an *oracle*: the production evaluator
(:mod:`repro.engine.evaluator`) is checked against it on randomized
queries and instances (``tests/test_differential.py``).  Keeping the two
implementations as different as possible maximizes the chance that a bug
in either is caught by disagreement.
"""

from __future__ import annotations

from itertools import product

from ..core import nodes as n
from ..core.conventions import SET_CONVENTIONS
from ..data.relation import Relation, Tuple
from ..data.values import Truth, arithmetic, compare, is_null, t_and, t_not, t_or
from ..errors import EvaluationError


def reference_evaluate(node, database, conventions=SET_CONVENTIONS):
    """Evaluate *node* (Collection or Sentence) by exhaustive enumeration.

    Restricted to the first-order fragment; raises
    :class:`~repro.errors.EvaluationError` on grouping operators, join
    annotations, aggregates, or relation references that are not base
    tables.
    """
    oracle = _Oracle(database, conventions)
    if isinstance(node, n.Collection):
        return oracle.collection(node, {})
    if isinstance(node, n.Sentence):
        return oracle.truth(node.body, {})
    raise EvaluationError(f"reference evaluator cannot handle {type(node).__name__}")


class _Oracle:
    def __init__(self, database, conventions):
        self._db = database
        self._conventions = conventions

    def collection(self, coll, env):
        self._check_supported(coll)
        relation = Relation(coll.head.name, coll.head.attrs)
        for assigns, mult in self._solutions(coll.body, env, coll.head):
            relation.add(Tuple(assigns), mult)
        if self._conventions.is_set:
            return relation.distinct()
        return relation

    # -- enumeration -----------------------------------------------------------

    def _rows(self, source, env):
        if isinstance(source, n.Collection):
            nested = self.collection(source, env)
            if self._conventions.is_set:
                return [(row, 1) for row in nested.iter_distinct()]
            return list(nested.counter().items())
        relation = self._db[source.name]
        if self._conventions.is_set:
            return [(row, 1) for row in relation.iter_distinct()]
        return list(relation.counter().items())

    def _environments(self, bindings, env):
        """All full environments for *bindings*, eagerly materialized.

        Lateral semantics: later sources are evaluated under each earlier
        partial environment (so nested collections may correlate).
        """
        partials = [(dict(env), 1)]
        for binding in bindings:
            extended = []
            for partial_env, mult in partials:
                for row, row_mult in self._rows(binding.source, partial_env):
                    new_env = dict(partial_env)
                    new_env[binding.var] = row
                    extended.append((new_env, mult * row_mult))
            partials = extended
        return partials

    def _solutions(self, formula, env, head):
        if isinstance(formula, n.Or):
            for child in formula.children_list:
                yield from self._solutions(child, env, head)
            return
        if isinstance(formula, n.Quantifier):
            conjuncts = n.conjuncts(formula.body)
            assignments = []
            rest = []
            for conjunct in conjuncts:
                target = self._assignment(conjunct, head)
                if target is not None:
                    assignments.append(target)
                else:
                    rest.append(conjunct)
            emitters = [c for c in rest if self._contains_assignment(c, head)]
            booleans = [c for c in rest if c not in emitters]
            for env2, mult in self._environments(formula.bindings, env):
                truth = Truth.TRUE
                for conjunct in booleans:
                    truth = t_and(truth, self.truth(conjunct, env2))
                if truth is not Truth.TRUE:
                    continue
                base = {}
                consistent = True
                for attr, expr in assignments:
                    value = self._expr(expr, env2)
                    if attr in base and base[attr] != value:
                        consistent = False
                        break
                    base[attr] = value
                if not consistent:
                    continue
                if emitters:
                    witnesses = set()
                    for emitter in emitters:
                        for sub, _ in self._solutions(emitter, env2, head):
                            merged = dict(base)
                            ok = True
                            for key, value in sub.items():
                                if key in merged and merged[key] != value:
                                    ok = False
                                    break
                                merged[key] = value
                            if ok:
                                witnesses.add(Tuple(merged))
                    for witness in witnesses:
                        yield witness.as_dict(), mult
                else:
                    yield base, mult
            return
        raise EvaluationError(
            f"reference evaluator: unsupported solution node {type(formula).__name__}"
        )

    # -- booleans ------------------------------------------------------------------

    def truth(self, formula, env):
        if isinstance(formula, n.Comparison):
            return compare(
                self._expr(formula.left, env),
                formula.op,
                self._expr(formula.right, env),
                three_valued=self._conventions.three_valued,
            )
        if isinstance(formula, n.IsNull):
            result = Truth.of(is_null(self._expr(formula.expr, env)))
            return t_not(result) if formula.negated else result
        if isinstance(formula, n.BoolConst):
            return Truth.TRUE if formula.value else Truth.FALSE
        if isinstance(formula, n.And):
            result = Truth.TRUE
            for child in formula.children_list:
                result = t_and(result, self.truth(child, env))
            return result
        if isinstance(formula, n.Or):
            result = Truth.FALSE
            for child in formula.children_list:
                result = t_or(result, self.truth(child, env))
            return result
        if isinstance(formula, n.Not):
            return t_not(self.truth(formula.child, env))
        if isinstance(formula, n.Quantifier):
            result = Truth.FALSE
            for env2, _ in self._environments(formula.bindings, env):
                result = t_or(result, self.truth(formula.body, env2))
            return result
        raise EvaluationError(
            f"reference evaluator: unsupported boolean node {type(formula).__name__}"
        )

    # -- expressions -----------------------------------------------------------------

    def _expr(self, expr, env):
        if isinstance(expr, n.Const):
            return expr.value
        if isinstance(expr, n.Attr):
            if expr.var not in env:
                raise EvaluationError(f"unbound variable {expr.var!r}")
            return env[expr.var][expr.attr]
        if isinstance(expr, n.Arith):
            return arithmetic(
                expr.op, self._expr(expr.left, env), self._expr(expr.right, env)
            )
        raise EvaluationError(
            f"reference evaluator: unsupported expression {type(expr).__name__}"
        )

    # -- helpers -------------------------------------------------------------------------

    @staticmethod
    def _assignment(conjunct, head):
        if not isinstance(conjunct, n.Comparison) or conjunct.op != "=":
            return None
        for side, other in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if (
                isinstance(side, n.Attr)
                and side.var == head.name
                and side.attr in head.attrs
                and not (
                    isinstance(other, n.Attr)
                    and other.var == head.name
                )
            ):
                return (side.attr, other)
        return None

    def _contains_assignment(self, formula, head):
        def walk(node, negated):
            if isinstance(node, n.Comparison):
                return not negated and self._assignment(node, head) is not None
            if isinstance(node, (n.And, n.Or)):
                return any(walk(c, negated) for c in node.children_list)
            if isinstance(node, n.Not):
                return walk(node.child, True)
            if isinstance(node, n.Quantifier):
                return walk(node.body, negated)
            return False

        return walk(formula, False)

    @staticmethod
    def _check_supported(coll):
        for node in coll.walk():
            if isinstance(node, n.Grouping):
                raise EvaluationError("reference evaluator: no grouping support")
            if isinstance(node, n.JoinExpr):
                raise EvaluationError("reference evaluator: no join annotations")
            if isinstance(node, n.AggCall):
                raise EvaluationError("reference evaluator: no aggregates")
