"""Evaluation of join annotations (outer joins), Section 2.11 of the paper.

A quantifier may carry a join-annotation tree such as
``left(r, inner(11, s))``: interior nodes are ``inner`` (k-ary) or
``left``/``full`` (binary); leaves are the scope's range variables or
literal constants (virtual singleton tables, the Fig. 12 device).

**Condition assignment.**  Each row-level conjunct of the scope is assigned
to the *lowest* annotation node that covers all the leaves it references,
where a constant in the conjunct matches a ``JoinConst`` leaf of the same
value.  Conjuncts covered by a single leaf act as enumeration filters for
that leaf's relation; conjuncts covering an interior node become that
node's join condition (the ``ON`` clause); conjuncts referencing no
annotation leaf at all (e.g. correlations to outer scopes only) remain
residual filters applied after enumeration.

**Null padding.**  An unmatched row on the preserved side of a ``left`` or
``full`` node is padded with :data:`NULL_ROW` bindings for every variable
of the unmatched subtree, mirroring SQL outer-join semantics.
"""

from __future__ import annotations

import weakref

from ..core import nodes as n
from ..data.values import NULL, Truth, t_and
from ..errors import EvaluationError


class _NullRow:
    """A row whose every attribute is NULL (outer-join padding)."""

    __slots__ = ()

    def __getitem__(self, attr):
        return NULL

    def get(self, attr, default=None):
        return NULL

    def attributes(self):
        return set()

    def __repr__(self):
        return "NullRow()"


NULL_ROW = _NullRow()


# Annotation trees are immutable once built, and ConditionAssignment walks
# them once per conjunct per node — memoize the leaf sets per subtree
# (weakly, so temporary trees do not leak).
_VARS_CACHE = weakref.WeakKeyDictionary()
_CONSTS_CACHE = weakref.WeakKeyDictionary()


def annotation_vars(join):
    """All range-variable names under an annotation subtree (memoized)."""
    cached = _VARS_CACHE.get(join)
    if cached is None:
        cached = frozenset(
            node.var for node in join.walk() if isinstance(node, n.JoinVar)
        )
        _VARS_CACHE[join] = cached
    return cached


def annotation_consts(join):
    """All literal leaf values under an annotation subtree (memoized)."""
    cached = _CONSTS_CACHE.get(join)
    if cached is None:
        cached = frozenset(
            node.value for node in join.walk() if isinstance(node, n.JoinConst)
        )
        _CONSTS_CACHE[join] = cached
    return cached


class ConditionAssignment:
    """Partition of a scope's row conjuncts across an annotation tree."""

    def __init__(self, join, conjunct_list):
        self.join = join
        self.node_conditions = {}  # id(node) -> [formula]
        self.leaf_filters = {}  # var name -> [formula]
        self.residual = []
        self._assign(conjunct_list)

    def conditions(self, node):
        return self.node_conditions.get(id(node), [])

    def filters(self, var):
        return self.leaf_filters.get(var, [])

    def _assign(self, conjunct_list):
        all_vars = annotation_vars(self.join)
        for conjunct in conjunct_list:
            used_vars = {v for v in n.vars_used(conjunct) if v in all_vars}
            used_consts = {
                node.value
                for node in conjunct.walk()
                if isinstance(node, n.Const)
            }
            target = self._lowest_covering(self.join, used_vars, used_consts)
            if target is None:
                self.residual.append(conjunct)
            elif isinstance(target, n.JoinVar):
                self.leaf_filters.setdefault(target.var, []).append(conjunct)
            elif isinstance(target, n.JoinConst):
                self.residual.append(conjunct)
            else:
                self.node_conditions.setdefault(id(target), []).append(conjunct)

    def _lowest_covering(self, root, used_vars, used_consts):
        """Lowest annotation node whose leaves cover the conjunct's
        references; None when the conjunct touches no annotation leaf.

        A constant in the conjunct is *relevant* only when it also appears
        as a literal leaf of the annotation (the ``inner(11, s)`` device:
        ``r.h = 11`` must be covered by the node containing both the leaf
        ``r`` and the literal leaf ``11``).
        """
        if not used_vars:
            return None
        relevant_consts = used_consts & annotation_consts(root)

        def covers(node):
            return used_vars <= annotation_vars(node) and relevant_consts <= annotation_consts(node)

        node = root
        while isinstance(node, n.Join):
            covering_children = [c for c in node.children_list if covers(c)]
            if len(covering_children) == 1:
                node = covering_children[0]
            else:
                break
        return node


def enumerate_annotation(join, env, ctx, assignment):
    """Yield (env_delta, multiplicity) for one annotation tree.

    ``ctx`` supplies the evaluator callbacks:

    * ``ctx.rows(var, env)`` -> iterable of (row, mult) for the variable's
      binding, evaluated laterally under *env*;
    * ``ctx.truth(formula, env)`` -> :class:`~repro.data.values.Truth`.

    Join conditions must evaluate to TRUE for a match (UNKNOWN behaves like
    FALSE, as in SQL ``ON``).
    """
    if isinstance(join, n.JoinVar):
        for row, mult in ctx.rows(join.var, env):
            delta = {join.var: row}
            if all(
                ctx.truth(f, {**env, **delta}) is Truth.TRUE
                for f in assignment.filters(join.var)
            ):
                yield delta, mult
        return
    if isinstance(join, n.JoinConst):
        yield {}, 1
        return
    if join.kind == "inner":
        yield from _inner(join, env, ctx, assignment)
        return
    if join.kind == "left":
        yield from _outer(join, env, ctx, assignment, full=False)
        return
    if join.kind == "full":
        yield from _outer(join, env, ctx, assignment, full=True)
        return
    raise EvaluationError(f"unknown join kind {join.kind!r}")


def _inner(join, env, ctx, assignment):
    conditions = assignment.conditions(join)

    def recurse(index, delta, mult):
        if index == len(join.children_list):
            combined = {**env, **delta}
            if all(ctx.truth(f, combined) is Truth.TRUE for f in conditions):
                yield dict(delta), mult
            return
        child = join.children_list[index]
        for child_delta, child_mult in enumerate_annotation(
            child, {**env, **delta}, ctx, assignment
        ):
            yield from recurse(index + 1, {**delta, **child_delta}, mult * child_mult)

    yield from recurse(0, {}, 1)


def _null_pad(join):
    return {var: NULL_ROW for var in annotation_vars(join)}


def _outer(join, env, ctx, assignment, *, full):
    left_child, right_child = join.children_list
    conditions = assignment.conditions(join)

    right_rows_matched = set()  # indexes into the right enumeration
    left_results = []

    # Materialize the right side only for FULL joins (it must be enumerated
    # independently of the left rows to find right-unmatched rows).  For
    # LEFT joins the right side is enumerated laterally per left row, which
    # also supports correlated right sides.
    for left_delta, left_mult in enumerate_annotation(left_child, env, ctx, assignment):
        env_left = {**env, **left_delta}
        matched = False
        for right_index, (right_delta, right_mult) in enumerate(
            enumerate_annotation(right_child, env_left, ctx, assignment)
        ):
            combined_delta = {**left_delta, **right_delta}
            combined_env = {**env, **combined_delta}
            if all(ctx.truth(f, combined_env) is Truth.TRUE for f in conditions):
                matched = True
                right_rows_matched.add(right_index)
                left_results.append((combined_delta, left_mult * right_mult))
        if not matched:
            left_results.append(({**left_delta, **_null_pad(right_child)}, left_mult))

    yield from left_results

    if full:
        for right_index, (right_delta, right_mult) in enumerate(
            enumerate_annotation(right_child, env, ctx, assignment)
        ):
            if right_index not in right_rows_matched:
                yield {**_null_pad(left_child), **right_delta}, right_mult
