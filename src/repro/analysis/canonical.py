"""Canonicalization of ARC queries for pattern comparison.

Semantically equivalent queries can differ in inessential details: range
variable names, the order of conjuncts, the orientation of symmetric
comparisons.  The paper's machine-facing use cases (intent-based similarity,
NL2SQL validation, Sections 1 and 4) need a normal form that removes them:

* **variable renaming** — range variables are renamed ``v1, v2, ...`` in
  deterministic traversal order (binding order within a scope, outer before
  inner);
* **conjunct/disjunct sorting** — the children of ``∧``/``∨`` are sorted by
  a structural key (the paper: "the order of shown predicates does not
  matter; what matters are the well-defined scopes");
* **comparison orientation** — symmetric operators put the structurally
  smaller side first; ``>``/``>=`` become flipped ``<``/``<=``; head
  assignments keep the head on the left;
* binding lists within a quantifier are sorted by source name (and
  renaming is recomputed afterwards so the normal form is stable).
"""

from __future__ import annotations

from itertools import count as _counter

from ..core import nodes as n

_FLIP = {">": "<", ">=": "<=", "<": "<", "<=": "<=", "=": "=", "<>": "<>", "!=": "<>"}
_SYMMETRIC = {"=", "<>", "!="}


def canonicalize(node, *, rename=True, anonymize_relations=False):
    """Return a canonical structural clone of *node*.

    ``anonymize_relations=True`` additionally replaces relation names by
    positional placeholders (``rel1``, ``rel2``, ... assigned per first
    occurrence), producing a pure *shape* fingerprint: two queries agree
    iff they have the same relational pattern regardless of the schema.
    """
    if (
        isinstance(node, n.Program)
        and len(node.definitions) == 1
        and isinstance(node.main, str)
        and node.main in node.definitions
    ):
        # A single-definition program is the same query as its definition
        # (frontends like Datalog always produce the Program wrapper).
        node = node.definitions[node.main]
    cloned = n.clone(node)
    if anonymize_relations:
        cloned = _anonymize_relations(cloned)
    if not rename:
        return _sort_structure(_normalize_comparisons(cloned))
    # Orientation, sorting, and renaming are interdependent (each uses the
    # names the previous one produced); iterate to a fixed point.
    from ..backends.comprehension import render

    previous = None
    for _ in range(6):
        cloned = _normalize_comparisons(cloned)
        cloned = _sort_structure(cloned)
        cloned = _rename_vars(cloned)
        current = render(cloned)
        if current == previous:
            break
        previous = current
    return cloned


def canonical_text(node, **kwargs):
    """The canonical rendering of *node* (comprehension syntax)."""
    from ..backends.comprehension import render

    return render(canonicalize(node, **kwargs))


# ---------------------------------------------------------------------------
# Comparison orientation
# ---------------------------------------------------------------------------


def _normalize_comparisons(node):
    def fix(item):
        if not isinstance(item, n.Comparison):
            return item
        left, op, right = item.left, item.op, item.right
        if op in (">", ">="):
            left, right = right, left
            op = _FLIP[item.op]
        if op == "!=":
            op = "<>"
        if op in _SYMMETRIC:
            # Head-assignment sides first, otherwise structural order.
            left_key = _expr_key(left)
            right_key = _expr_key(right)
            if right_key < left_key:
                left, right = right, left
        return n.Comparison(left, op, right)

    return n.transform(node, fix)


def _expr_key(expr):
    if isinstance(expr, n.AggCall):
        return (3, expr.func, _expr_key(expr.arg) if expr.arg else ())
    if isinstance(expr, n.Arith):
        return (2, expr.op, _expr_key(expr.left), _expr_key(expr.right))
    if isinstance(expr, n.Const):
        return (1, "", str(expr.value))
    if isinstance(expr, n.Attr):
        return (0, expr.var, expr.attr)
    return (4, type(expr).__name__, "")


# ---------------------------------------------------------------------------
# Structural sorting
# ---------------------------------------------------------------------------


def _sort_structure(node):
    def fix(item):
        if isinstance(item, (n.And, n.Or)):
            children = sorted(item.children_list, key=_structure_key)
            return type(item)(children)
        if isinstance(item, n.Quantifier):
            bindings = sorted(item.bindings, key=_binding_key)
            grouping = item.grouping
            if grouping is not None and grouping.keys:
                keys = tuple(sorted(grouping.keys, key=_expr_key))
                grouping = n.Grouping(keys)
            return n.Quantifier(bindings, item.body, grouping, item.join)
        return item

    return n.transform(node, fix)


def _binding_key(binding):
    if isinstance(binding.source, n.RelationRef):
        return (0, binding.source.name, binding.var)
    return (1, _structure_key(binding.source), binding.var)


def _structure_key(item):
    """A deterministic, content-based sort key for any node."""
    if isinstance(item, n.Comparison):
        return ("cmp", item.op, _expr_key(item.left), _expr_key(item.right))
    if isinstance(item, n.IsNull):
        return ("isnull", str(item.negated), _expr_key(item.expr))
    if isinstance(item, n.BoolConst):
        return ("bool", str(item.value))
    if isinstance(item, n.Not):
        return ("not",) + tuple([_structure_key(item.child)])
    if isinstance(item, n.Quantifier):
        return (
            "quant",
            tuple(_binding_key(b) for b in item.bindings),
            "γ" if item.grouping is not None else "",
            _structure_key(item.body),
        )
    if isinstance(item, (n.And, n.Or)):
        tag = "and" if isinstance(item, n.And) else "or"
        return (tag, tuple(sorted(_structure_key(c) for c in item.children_list)))
    if isinstance(item, n.Collection):
        return ("coll", item.head.name, tuple(item.head.attrs), _structure_key(item.body))
    return (type(item).__name__,)


# ---------------------------------------------------------------------------
# Variable renaming
# ---------------------------------------------------------------------------


def _rename_vars(node):
    counter = _counter(1)
    head_counter = _counter(1)
    renaming = {}
    attr_renaming = {}  # var-or-head-name -> {old attr: new attr}

    def assign_names(item, *, nested_head=False, bound_var=None):
        if isinstance(item, n.Quantifier):
            for binding in item.bindings:
                renaming[binding.var] = f"v{next(counter)}"
                if isinstance(binding.source, n.Collection):
                    assign_names(
                        binding.source, nested_head=True, bound_var=binding.var
                    )
            assign_names(item.body)
            return
        if isinstance(item, n.Collection):
            if nested_head:
                # Nested heads and their attributes are internal names;
                # anonymize both so queries differing only in derived-table
                # naming agree on their canonical form.
                renaming[item.head.name] = f"W{next(head_counter)}"
                attr_map = {
                    attr: f"c{index}"
                    for index, attr in enumerate(item.head.attrs, start=1)
                }
                attr_renaming[item.head.name] = attr_map
                if bound_var is not None:
                    attr_renaming[bound_var] = attr_map
            assign_names(item.body)
            return
        if isinstance(item, (n.And, n.Or)):
            for child in item.children_list:
                assign_names(child)
            return
        if isinstance(item, n.Not):
            assign_names(item.child)

    if isinstance(node, n.Program):
        for definition in node.definitions.values():
            assign_names(definition)
        main = node.resolve_main()
        if isinstance(main, n.Node) and main not in set(node.definitions.values()):
            assign_names(main)
    elif isinstance(node, n.Sentence):
        assign_names(node.body)
    else:
        assign_names(node)

    def apply(item):
        if isinstance(item, n.Binding):
            return n.Binding(renaming.get(item.var, item.var), item.source)
        if isinstance(item, n.Attr):
            attr = attr_renaming.get(item.var, {}).get(item.attr, item.attr)
            return n.Attr(renaming.get(item.var, item.var), attr)
        if isinstance(item, n.JoinVar):
            return n.JoinVar(renaming.get(item.var, item.var))
        if isinstance(item, n.Head) and item.name in renaming:
            attr_map = attr_renaming.get(item.name, {})
            attrs = tuple(attr_map.get(a, a) for a in item.attrs)
            return n.Head(renaming[item.name], attrs)
        return item

    return n.transform(node, apply)


def _anonymize_relations(node):
    mapping = {}

    def apply(item):
        if isinstance(item, n.RelationRef):
            if item.name not in mapping:
                mapping[item.name] = f"rel{len(mapping) + 1}"
            return n.RelationRef(mapping[item.name])
        return item

    return n.transform(node, apply)
