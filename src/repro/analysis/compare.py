"""Intent-based similarity between relational queries.

The NL2SQL community's benchmarks score generated queries by exact string
match or execution match; the paper argues for "a shift towards intent-based
benchmarking frameworks" (Section 1, question 3).  This module scores
similarity at the level of **relational patterns**:

* identical canonical form  -> similarity 1.0 (pattern-equal);
* otherwise 1 - normalized tree edit distance over canonical ALTs,
  optionally blended with feature-vector overlap.

Compare :func:`surface_similarity` (normalized string edit distance over
SQL text) to see the paper's point quantitatively: pattern-equal queries
can have low surface similarity and vice versa (experiment E19).
"""

from __future__ import annotations

from .canonical import canonical_text
from .fingerprint import fingerprint, pattern_summary
from .tree_edit import arc_distance, from_arc


def pattern_equal(node_a, node_b, *, anonymize_relations=False):
    """Exact relational-pattern equality (canonical forms agree)."""
    return fingerprint(node_a, anonymize_relations=anonymize_relations) == fingerprint(
        node_b, anonymize_relations=anonymize_relations
    )


def similarity(node_a, node_b, *, anonymize_relations=False):
    """Intent similarity in [0, 1]: 1 - normalized ALT edit distance."""
    if pattern_equal(node_a, node_b, anonymize_relations=anonymize_relations):
        return 1.0
    from .canonical import canonicalize

    canonical_a = canonicalize(node_a, anonymize_relations=anonymize_relations)
    canonical_b = canonicalize(node_b, anonymize_relations=anonymize_relations)
    tree_a = from_arc(canonical_a)
    tree_b = from_arc(canonical_b)
    distance = arc_distance(canonical_a, canonical_b, canonical=False)
    bound = tree_a.size() + tree_b.size()
    if bound == 0:
        return 1.0
    return max(0.0, 1.0 - distance / bound)


def feature_similarity(node_a, node_b):
    """Cheap similarity from pattern feature vectors (pre-filter)."""
    features_a = pattern_summary(node_a)
    features_b = pattern_summary(node_b)
    keys = sorted(set(features_a) | set(features_b))
    overlap = 0.0
    total = 0.0
    for key in keys:
        value_a = features_a.get(key, 0)
        value_b = features_b.get(key, 0)
        overlap += min(value_a, value_b)
        total += max(value_a, value_b)
    if total == 0:
        return 1.0
    return overlap / total


def surface_similarity(text_a, text_b):
    """Normalized Levenshtein similarity over surface text (the baseline
    the paper criticizes)."""
    distance = _levenshtein(text_a, text_b)
    bound = max(len(text_a), len(text_b))
    if bound == 0:
        return 1.0
    return 1.0 - distance / bound


def _levenshtein(a, b):
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def similarity_report(node_a, node_b, *, sql_a=None, sql_b=None):
    """A structured comparison used by examples and benchmarks."""
    report = {
        "pattern_equal": pattern_equal(node_a, node_b),
        "shape_equal": pattern_equal(node_a, node_b, anonymize_relations=True),
        "intent_similarity": similarity(node_a, node_b),
        "feature_similarity": feature_similarity(node_a, node_b),
        "canonical_a": canonical_text(node_a),
        "canonical_b": canonical_text(node_b),
    }
    if sql_a is not None and sql_b is not None:
        report["surface_similarity"] = surface_similarity(sql_a, sql_b)
    return report
