"""Corpus-level pattern analysis: the intent-based benchmarking toolkit.

Floratou et al. (cited in Section 1 of the paper) call for "a shift
towards intent-based benchmarking frameworks" for NL2SQL.  This module
provides the corpus-side machinery such a framework needs:

* :class:`QueryCorpus` — a named collection of ARC queries (from any
  frontend) with cached canonical forms and fingerprints;
* equivalence classes by exact pattern (and by shape, ignoring relation
  names);
* a pattern-vocabulary histogram over the corpus;
* pairwise intent-similarity matrices and nearest-neighbour lookup —
  the "semantic similarity search and retrieval" use case of Section 1;
* scoring a *candidate* query against a *gold* query the way an
  intent-based NL2SQL benchmark would (exact pattern, shape, graded
  similarity), instead of string or execution match.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .canonical import canonical_text
from .compare import similarity
from .detectors import detect_patterns
from .fingerprint import fingerprint, pattern_summary


@dataclass
class CorpusEntry:
    name: str
    query: object
    fingerprint: str
    shape: str
    canonical: str
    patterns: frozenset


class QueryCorpus:
    """A corpus of ARC queries with cached pattern metadata."""

    def __init__(self):
        self._entries = {}

    def add(self, name, query):
        if name in self._entries:
            raise ValueError(f"duplicate corpus entry {name!r}")
        entry = CorpusEntry(
            name=name,
            query=query,
            fingerprint=fingerprint(query),
            shape=fingerprint(query, anonymize_relations=True),
            canonical=canonical_text(query),
            patterns=frozenset(detect_patterns(query)),
        )
        self._entries[name] = entry
        return entry

    def __len__(self):
        return len(self._entries)

    def __contains__(self, name):
        return name in self._entries

    def names(self):
        return sorted(self._entries)

    def entry(self, name):
        return self._entries[name]

    # -- equivalence classes ----------------------------------------------------

    def pattern_classes(self):
        """Groups of names sharing the exact relational pattern."""
        groups = {}
        for entry in self._entries.values():
            groups.setdefault(entry.fingerprint, []).append(entry.name)
        return sorted(sorted(group) for group in groups.values())

    def shape_classes(self):
        """Groups sharing the pattern up to relation renaming."""
        groups = {}
        for entry in self._entries.values():
            groups.setdefault(entry.shape, []).append(entry.name)
        return sorted(sorted(group) for group in groups.values())

    # -- statistics -----------------------------------------------------------------

    def pattern_histogram(self):
        """Occurrences of each named pattern across the corpus."""
        histogram = {}
        for entry in self._entries.values():
            for pattern in entry.patterns:
                histogram[pattern] = histogram.get(pattern, 0) + 1
        return dict(sorted(histogram.items()))

    def feature_table(self):
        """name -> pattern_summary feature dict, for corpus statistics."""
        return {
            name: pattern_summary(entry.query)
            for name, entry in sorted(self._entries.items())
        }

    # -- similarity ---------------------------------------------------------------------

    def similarity_matrix(self, *, anonymize_relations=False):
        """Symmetric name-indexed intent-similarity matrix."""
        names = self.names()
        matrix = {}
        for i, a in enumerate(names):
            for b in names[i:]:
                if a == b:
                    score = 1.0
                else:
                    score = similarity(
                        self._entries[a].query,
                        self._entries[b].query,
                        anonymize_relations=anonymize_relations,
                    )
                matrix[(a, b)] = score
                matrix[(b, a)] = score
        return matrix

    def nearest(self, query, *, k=3, anonymize_relations=False):
        """The k corpus entries most intent-similar to *query*."""
        scored = [
            (
                similarity(
                    query, entry.query, anonymize_relations=anonymize_relations
                ),
                name,
            )
            for name, entry in self._entries.items()
        ]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [(name, score) for score, name in scored[:k]]


@dataclass
class BenchmarkScore:
    """Intent-based grading of a candidate against a gold query."""

    exact_pattern: bool
    same_shape: bool
    intent_similarity: float
    missing_patterns: frozenset = field(default_factory=frozenset)
    spurious_patterns: frozenset = field(default_factory=frozenset)

    @property
    def grade(self):
        """A coarse grade in the spirit of intent-based benchmarking:
        'exact' > 'pattern' (same shape, renamed schema) > 'partial' >
        'miss'."""
        if self.exact_pattern:
            return "exact"
        if self.same_shape:
            return "pattern"
        if self.intent_similarity >= 0.7:
            return "partial"
        return "miss"


def score_candidate(gold, candidate):
    """Grade *candidate* against *gold* at the semantic-structure level.

    This is the evaluation primitive the paper proposes for NL2SQL
    benchmarks (Section 4): compare scopes, joins, and relational
    patterns rather than SQL strings or result sets.
    """
    gold_patterns = frozenset(detect_patterns(gold))
    candidate_patterns = frozenset(detect_patterns(candidate))
    return BenchmarkScore(
        exact_pattern=fingerprint(gold) == fingerprint(candidate),
        same_shape=(
            fingerprint(gold, anonymize_relations=True)
            == fingerprint(candidate, anonymize_relations=True)
        ),
        intent_similarity=similarity(gold, candidate),
        missing_patterns=gold_patterns - candidate_patterns,
        spurious_patterns=candidate_patterns - gold_patterns,
    )
