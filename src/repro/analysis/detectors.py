"""Named relational-pattern detectors.

The paper's stated goal is a *shared vocabulary*: "It lets us point at a
query in Soufflé and say 'FOI aggregation'" (Section 4).  These detectors
implement that vocabulary over linked ARC queries:

* **FIO aggregation** — grouping and aggregation in the same scope as the
  head assignments (SQL GROUP BY, Fig. 4);
* **FOI aggregation** — a correlated nested collection with a grouping
  scope whose keys come *from the outside in* (Klug/Hella/Soufflé, Fig. 5);
* **semijoin** — a nested existential scope with no head assignments;
* **antijoin** — a negated existential scope (NOT EXISTS / NOT IN);
* **division** — doubly nested negation (the relational division /
  unique-set family, Fig. 17);
* **correlated lateral** — a nested collection referencing outer bindings;
* **aggregate test** — an aggregation *comparison* predicate (an aggregate
  used as a test rather than a value, the count-bug diagnostic).
"""

from __future__ import annotations

from ..core import nodes as n


def detect_patterns(root):
    """Return the set of pattern names present in *root*."""
    found = set()
    head_names = set()
    if isinstance(root, n.Program):
        for definition in root.definitions.values():
            found |= detect_patterns(definition)
        main = root.resolve_main()
        if isinstance(main, n.Node) and main not in set(root.definitions.values()):
            found |= detect_patterns(main)
        return found
    if isinstance(root, n.Collection):
        head_names.add(root.head.name)
        _scan(root.body, found, head_names, negation_depth=0, in_nested=False)
        if _is_recursive(root):
            found.add("recursion")
    elif isinstance(root, n.Sentence):
        _scan(root.body, found, head_names, negation_depth=0, in_nested=False)
    return found


def _scan(formula, found, head_names, *, negation_depth, in_nested):
    if formula is None:
        return
    if isinstance(formula, n.Quantifier):
        _scan_quantifier(formula, found, head_names, negation_depth, in_nested)
        return
    if isinstance(formula, (n.And, n.Or)):
        if isinstance(formula, n.Or):
            found.add("disjunction")
        for child in formula.children_list:
            _scan(child, found, head_names, negation_depth=negation_depth, in_nested=in_nested)
        return
    if isinstance(formula, n.Not):
        if isinstance(formula.child, n.Quantifier):
            found.add("antijoin")
        if negation_depth >= 1:
            found.add("division")
        _scan(
            formula.child,
            found,
            head_names,
            negation_depth=negation_depth + 1,
            in_nested=in_nested,
        )
        return
    if isinstance(formula, n.Comparison):
        if formula.has_aggregate():
            assigns = any(
                isinstance(side, n.Attr) and side.var in head_names
                for side in (formula.left, formula.right)
            )
            if not assigns:
                found.add("aggregate-test")
        return
    if isinstance(formula, n.Collection):
        head_names = head_names | {formula.head.name}
        _scan(formula.body, found, head_names, negation_depth=negation_depth, in_nested=True)


def _scan_quantifier(quant, found, head_names, negation_depth, in_nested):
    has_aggregate = any(
        isinstance(c, n.Comparison) and c.has_aggregate()
        for c in n.conjuncts(quant.body)
    )
    if quant.grouping is not None and has_aggregate:
        if in_nested and _is_correlated(quant, head_names):
            found.add("foi-aggregation")
        else:
            found.add("fio-aggregation")
    if quant.join is not None:
        if any(
            isinstance(j, n.Join) and j.kind in ("left", "full")
            for j in quant.join.walk()
        ):
            found.add("outer-join")
    for binding in quant.bindings:
        if isinstance(binding.source, n.Collection):
            found.add("lateral")
            if _references_outside(binding.source, _own_heads(binding.source)):
                found.add("correlated-lateral")
            nested_heads = head_names | {binding.source.head.name}
            _scan(
                binding.source.body,
                found,
                nested_heads,
                negation_depth=negation_depth,
                in_nested=True,
            )
    for conjunct in n.conjuncts(quant.body):
        if isinstance(conjunct, n.Quantifier):
            if not _assigns_any_head(conjunct, head_names):
                found.add("semijoin")
            _scan_quantifier(conjunct, found, head_names, negation_depth, in_nested)
        else:
            _scan(
                conjunct,
                found,
                head_names,
                negation_depth=negation_depth,
                in_nested=in_nested,
            )


def _assigns_any_head(quant, head_names):
    for node in quant.walk():
        if isinstance(node, n.Comparison) and node.op == "=":
            for side in (node.left, node.right):
                if isinstance(side, n.Attr) and side.var in head_names:
                    return True
    return False


def _is_correlated(quant, head_names=()):
    bound = {b.var for b in quant.bindings} | set(head_names)
    for node in quant.walk():
        if isinstance(node, n.Attr) and node.var not in bound:
            return True
    return False


def _own_heads(collection):
    return {
        node.head.name for node in collection.walk() if isinstance(node, n.Collection)
    }


def _references_outside(collection, internal_names):
    bound = set(internal_names)
    for node in collection.walk():
        if isinstance(node, n.Binding):
            bound.add(node.var)
    for node in collection.walk():
        if isinstance(node, n.Attr) and node.var not in bound:
            return True
    return False


def _is_recursive(collection):
    name = collection.head.name
    return any(
        isinstance(node, n.RelationRef) and node.name == name
        for node in collection.walk()
    )
