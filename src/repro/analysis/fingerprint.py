"""Pattern fingerprints: compact identifiers for relational patterns.

A fingerprint is a stable hash of a query's canonical form.  Two queries
share a fingerprint iff their relational patterns are identical up to
variable naming, conjunct order, and comparison orientation — the paper's
notion of the *relational pattern* of a query (Section 1).

The ``anonymize_relations`` flag produces shape fingerprints that also
ignore relation names, so the same pattern over different schemas matches
(e.g. recognizing "FOI aggregation" regardless of the tables involved).
"""

from __future__ import annotations

import hashlib

from .canonical import canonical_text


def fingerprint(node, *, anonymize_relations=False):
    """A 16-hex-digit stable fingerprint of the query's relational pattern."""
    text = canonical_text(node, anonymize_relations=anonymize_relations)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def same_pattern(node_a, node_b, *, anonymize_relations=False):
    """True when the two queries have the identical relational pattern."""
    return fingerprint(node_a, anonymize_relations=anonymize_relations) == fingerprint(
        node_b, anonymize_relations=anonymize_relations
    )


def pattern_summary(node):
    """Human-readable feature summary of the query's pattern.

    Counts the pattern-relevant features: scopes, bindings, nesting depth,
    grouping scopes, negations, disjunctions, aggregates, outer joins.
    Useful as a cheap similarity pre-filter and for corpus statistics.
    """
    from ..core import nodes as n

    features = {
        "scopes": 0,
        "bindings": 0,
        "nested_collections": 0,
        "grouping_scopes": 0,
        "empty_groupings": 0,
        "negations": 0,
        "disjunctions": 0,
        "aggregates": 0,
        "outer_joins": 0,
        "comparisons": 0,
        "max_depth": 0,
    }

    def visit(item, depth):
        features["max_depth"] = max(features["max_depth"], depth)
        if isinstance(item, n.Quantifier):
            features["scopes"] += 1
            features["bindings"] += len(item.bindings)
            if item.grouping is not None:
                features["grouping_scopes"] += 1
                if not item.grouping.keys:
                    features["empty_groupings"] += 1
            if item.join is not None:
                features["outer_joins"] += sum(
                    1
                    for j in item.join.walk()
                    if isinstance(j, n.Join) and j.kind in ("left", "full")
                )
            for binding in item.bindings:
                if isinstance(binding.source, n.Collection):
                    features["nested_collections"] += 1
                    visit(binding.source.body, depth + 1)
            visit(item.body, depth + 1)
            return
        if isinstance(item, n.Not):
            features["negations"] += 1
            visit(item.child, depth + 1)
            return
        if isinstance(item, n.Or):
            features["disjunctions"] += 1
            for child in item.children_list:
                visit(child, depth)
            return
        if isinstance(item, n.And):
            for child in item.children_list:
                visit(child, depth)
            return
        if isinstance(item, n.Comparison):
            features["comparisons"] += 1
            features["aggregates"] += sum(
                1 for x in item.walk() if isinstance(x, n.AggCall)
            )
            return
        if isinstance(item, n.Collection):
            visit(item.body, depth)

    root = node
    if isinstance(node, n.Program):
        for definition in node.definitions.values():
            visit(definition.body, 0)
        main = node.resolve_main()
        if isinstance(main, n.Node) and main not in set(node.definitions.values()):
            root = main
        else:
            return features
    if isinstance(root, n.Collection):
        visit(root.body, 0)
    elif isinstance(root, n.Sentence):
        visit(root.body, 0)
    else:
        visit(root, 0)
    return features
