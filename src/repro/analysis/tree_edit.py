"""Zhang–Shasha ordered tree edit distance over ALT label trees.

Surface syntax is a poor proxy for intent (Section 1 of the paper):
semantically close queries can be syntactically far apart and vice versa.
The ALT makes semantic structure explicit, so a *tree* distance over linked
ALTs approximates intent distance far better than string distance over SQL.

This module implements the classic Zhang–Shasha algorithm (1989) for
ordered labeled trees with unit costs, plus helpers to convert ARC nodes to
label trees (via the ALT rendering labels).
"""

from __future__ import annotations

from ..core import nodes as n


class LabelTree:
    """An ordered labeled tree node."""

    __slots__ = ("label", "children")

    def __init__(self, label, children=()):
        self.label = label
        self.children = list(children)

    def size(self):
        return 1 + sum(child.size() for child in self.children)

    def __repr__(self):
        return f"LabelTree({self.label!r}, {len(self.children)} children)"


def from_arc(node):
    """Convert an ARC node into a LabelTree using ALT-style labels."""
    from ..core.alt import _alt_lines

    def convert(line):
        return LabelTree(line.label, [convert(child) for child in line.children])

    return convert(_alt_lines(node))


def tree_edit_distance(tree_a, tree_b, *, insert_cost=1, delete_cost=1, relabel_cost=1):
    """Zhang–Shasha edit distance between two ordered labeled trees."""
    a_nodes = _postorder(tree_a)
    b_nodes = _postorder(tree_b)
    a_leftmost = _leftmost_leaves(tree_a, a_nodes)
    b_leftmost = _leftmost_leaves(tree_b, b_nodes)
    a_keyroots = _keyroots(a_leftmost)
    b_keyroots = _keyroots(b_leftmost)

    size_a, size_b = len(a_nodes), len(b_nodes)
    distance = [[0] * size_b for _ in range(size_a)]

    for key_a in a_keyroots:
        for key_b in b_keyroots:
            _compute_forest(
                key_a,
                key_b,
                a_nodes,
                b_nodes,
                a_leftmost,
                b_leftmost,
                distance,
                insert_cost,
                delete_cost,
                relabel_cost,
            )
    return distance[size_a - 1][size_b - 1]


def _compute_forest(
    key_a,
    key_b,
    a_nodes,
    b_nodes,
    a_leftmost,
    b_leftmost,
    distance,
    insert_cost,
    delete_cost,
    relabel_cost,
):
    la, lb = a_leftmost[key_a], b_leftmost[key_b]
    rows = key_a - la + 2
    cols = key_b - lb + 2
    forest = [[0] * cols for _ in range(rows)]
    for i in range(1, rows):
        forest[i][0] = forest[i - 1][0] + delete_cost
    for j in range(1, cols):
        forest[0][j] = forest[0][j - 1] + insert_cost
    for i in range(1, rows):
        for j in range(1, cols):
            node_a = la + i - 1
            node_b = lb + j - 1
            if a_leftmost[node_a] == la and b_leftmost[node_b] == lb:
                cost = 0 if a_nodes[node_a].label == b_nodes[node_b].label else relabel_cost
                forest[i][j] = min(
                    forest[i - 1][j] + delete_cost,
                    forest[i][j - 1] + insert_cost,
                    forest[i - 1][j - 1] + cost,
                )
                distance[node_a][node_b] = forest[i][j]
            else:
                i_prefix = a_leftmost[node_a] - la
                j_prefix = b_leftmost[node_b] - lb
                forest[i][j] = min(
                    forest[i - 1][j] + delete_cost,
                    forest[i][j - 1] + insert_cost,
                    forest[i_prefix][j_prefix] + distance[node_a][node_b],
                )


def _postorder(tree):
    result = []

    def visit(node):
        for child in node.children:
            visit(child)
        result.append(node)

    visit(tree)
    return result


def _leftmost_leaves(tree, postorder_nodes):
    index_of = {id(node): index for index, node in enumerate(postorder_nodes)}
    leftmost = [0] * len(postorder_nodes)

    def visit(node):
        current = node
        while current.children:
            current = current.children[0]
        leftmost[index_of[id(node)]] = index_of[id(current)]
        for child in node.children:
            visit(child)

    visit(tree)
    return leftmost


def _keyroots(leftmost):
    seen = {}
    for index, left in enumerate(leftmost):
        seen[left] = index  # the last (highest) node with this leftmost leaf
    return sorted(seen.values())


def arc_distance(node_a, node_b, *, canonical=True, anonymize_relations=False):
    """Tree edit distance between two ARC queries' ALTs.

    With ``canonical=True`` both queries are canonicalized first, so
    variable names and conjunct order do not contribute to the distance.
    """
    if canonical:
        from .canonical import canonicalize

        node_a = canonicalize(node_a, anonymize_relations=anonymize_relations)
        node_b = canonicalize(node_b, anonymize_relations=anonymize_relations)
    return tree_edit_distance(from_arc(node_a), from_arc(node_b))
