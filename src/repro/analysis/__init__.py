"""Pattern analysis: canonicalization, fingerprints, similarity, detectors."""

from .canonical import canonicalize, canonical_text
from .fingerprint import fingerprint, same_pattern, pattern_summary
from .tree_edit import tree_edit_distance, arc_distance, from_arc, LabelTree
from .detectors import detect_patterns
from .compare import (
    pattern_equal,
    similarity,
    feature_similarity,
    surface_similarity,
    similarity_report,
)
from .corpus import QueryCorpus, BenchmarkScore, score_candidate

__all__ = [
    "canonicalize",
    "canonical_text",
    "fingerprint",
    "same_pattern",
    "pattern_summary",
    "tree_edit_distance",
    "arc_distance",
    "from_arc",
    "LabelTree",
    "detect_patterns",
    "pattern_equal",
    "similarity",
    "feature_similarity",
    "surface_similarity",
    "similarity_report",
    "QueryCorpus",
    "BenchmarkScore",
    "score_candidate",
]
