"""The NL2SQL architecture the paper proposes, end-to-end.

    natural language --generate--> ARC --validate--> --render--> SQL
                                    |                    |
                                    +---- ALT / higraph modalities for
                                          human verification

Every stage is observable: the :class:`PipelineResult` carries the ARC
query, the validation report, the ALT text a machine would diff, the
higraph a human would inspect, the rendered SQL, and (when a database is
supplied) the executed result — so "intent-based evaluation" (Section 4)
can compare at the semantic-structure level rather than the string level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..backends.comprehension import render as render_comprehension
from ..backends.sql_render import to_sql
from ..core.alt import render_alt
from ..core.conventions import SQL_CONVENTIONS
from ..core.higraph import build_higraph, render_ascii
from ..core.validator import validate
from ..engine import evaluate
from .templates import default_grammar


@dataclass
class PipelineResult:
    request: str
    matched_rule: str | None = None
    arc: object = None
    comprehension: str | None = None
    alt: str | None = None
    higraph: str | None = None
    sql: str | None = None
    validation: object = None
    result: object = None
    error: str | None = None

    @property
    def ok(self):
        return self.error is None and (self.validation is None or self.validation.ok)


class Nl2ArcPipeline:
    """Generate -> validate -> render -> (optionally) execute."""

    def __init__(self, grammar=None, database=None, conventions=SQL_CONVENTIONS):
        self.grammar = grammar or default_grammar()
        self.database = database
        self.conventions = conventions

    def run(self, request, *, execute=True):
        result = PipelineResult(request)
        try:
            arc, rule = self.grammar.generate(request)
        except LookupError as exc:
            result.error = str(exc)
            return result
        result.matched_rule = rule
        result.arc = arc
        result.comprehension = render_comprehension(arc)
        result.alt = render_alt(arc, include_links=True)
        result.higraph = render_ascii(build_higraph(arc, database=self.database))
        result.validation = validate(arc, database=self.database)
        if not result.validation.ok:
            result.error = "validation failed: " + "; ".join(
                str(issue) for issue in result.validation.errors()
            )
            return result
        result.sql = to_sql(arc)
        if execute and self.database is not None:
            result.result = evaluate(arc, self.database, self.conventions)
        return result

    def batch(self, requests, *, execute=True):
        return [self.run(request, execute=execute) for request in requests]
