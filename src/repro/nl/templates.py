"""Template grammar mapping natural-language requests to ARC builders.

The paper proposes that NL2SQL systems should "generate a structurally
constrained representation, which can be validated (well-scoped variables,
grouping legality, correlation shape) and then rendered to SQL" (Section 4).
The environment here is offline, so the *generator* stage is a deterministic
template grammar rather than an LLM — the substitution is documented in
DESIGN.md §5; the pipeline stages downstream of generation (validate ->
render) are exactly the ones the paper describes, and they are what the
architecture claim is about.

A :class:`TemplateGrammar` holds rules: a matcher over a normalized token
sequence plus a builder producing an ARC collection against a schema
description.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..core import builder as b
from ..core import nodes as n


@dataclass
class SchemaInfo:
    """Minimal semantic annotations the templates need.

    Attributes
    ----------
    fact_table / fact_alias:
        The main entity table (e.g. employees).
    group_attr:
        The categorical attribute used by "per <group>" requests.
    measure_attr:
        The numeric attribute used by aggregates.
    entity_attr:
        The attribute naming the entity (e.g. employee name).
    """

    fact_table: str
    group_attr: str
    measure_attr: str
    entity_attr: str
    fact_alias: str = "t"


class TemplateGrammar:
    def __init__(self, schema):
        self.schema = schema
        self.rules = []  # (regex, builder fn, description)

    def add(self, pattern, build, description):
        self.rules.append((re.compile(pattern, re.IGNORECASE), build, description))

    def generate(self, text):
        """Return (collection, rule description) for the first matching rule.

        Raises LookupError when no template matches — the pipeline surfaces
        this as a generation failure (the NL2SQL analogue of an LLM refusing
        or producing unparseable output).
        """
        normalized = " ".join(text.lower().split())
        for regex, build, description in self.rules:
            match = regex.search(normalized)
            if match:
                return build(self.schema, match), description
        raise LookupError(f"no template matches request: {text!r}")


AGG_WORDS = {
    "average": "avg",
    "avg": "avg",
    "mean": "avg",
    "total": "sum",
    "sum": "sum",
    "maximum": "max",
    "max": "max",
    "highest": "max",
    "minimum": "min",
    "min": "min",
    "lowest": "min",
    "number": "count",
    "count": "count",
}

_AGG_PATTERN = "|".join(sorted(AGG_WORDS))


def _agg_per_group(schema, match):
    """"average salary per department" -> FIO grouped aggregate (Fig. 4)."""
    func = AGG_WORDS[match.group(1)]
    var = schema.fact_alias
    agg_arg = b.attr2(var, schema.measure_attr)
    agg = n.AggCall(func, agg_arg) if func != "count" else n.AggCall("count", agg_arg)
    return b.collection(
        "Q",
        [schema.group_attr, "value"],
        b.exists(
            [b.bind(var, schema.fact_table)],
            b.conj(
                b.eq(b.attr2("Q", schema.group_attr), b.attr2(var, schema.group_attr)),
                n.Comparison(n.Attr("Q", "value"), "=", agg),
            ),
            grouping=b.grouping(b.attr2(var, schema.group_attr)),
        ),
    )


def _groups_with_total_at_least(schema, match):
    """"departments with total salary at least 100" -> grouped + HAVING
    (the paper's running example, Fig. 6)."""
    threshold = float(match.group(2)) if "." in match.group(2) else int(match.group(2))
    func = AGG_WORDS[match.group(1)]
    var = schema.fact_alias
    inner_name = "X"
    agg = n.AggCall(func, b.attr2(var, schema.measure_attr))
    inner = b.collection(
        inner_name,
        [schema.group_attr, "sm"],
        b.exists(
            [b.bind(var, schema.fact_table)],
            b.conj(
                b.eq(
                    b.attr2(inner_name, schema.group_attr),
                    b.attr2(var, schema.group_attr),
                ),
                n.Comparison(n.Attr(inner_name, "sm"), "=", agg),
            ),
            grouping=b.grouping(b.attr2(var, schema.group_attr)),
        ),
    )
    return b.collection(
        "Q",
        [schema.group_attr],
        b.exists(
            [n.Binding("x", inner)],
            b.conj(
                b.eq(b.attr2("Q", schema.group_attr), b.attr2("x", schema.group_attr)),
                b.gte(b.attr2("x", "sm"), b.const(threshold)),
            ),
        ),
    )


def _entities_above_group_average(schema, match):
    """"employees earning more than their department average" -> correlated
    FOI aggregate (the paper's nested-correlation family)."""
    var = schema.fact_alias
    inner_name = "X"
    inner_var = f"{var}2"
    inner = b.collection(
        inner_name,
        ["av"],
        b.exists(
            [b.bind(inner_var, schema.fact_table)],
            b.conj(
                b.eq(
                    b.attr2(inner_var, schema.group_attr),
                    b.attr2(var, schema.group_attr),
                ),
                n.Comparison(
                    n.Attr(inner_name, "av"),
                    "=",
                    n.AggCall("avg", b.attr2(inner_var, schema.measure_attr)),
                ),
            ),
            grouping=b.grouping(),
        ),
    )
    return b.collection(
        "Q",
        [schema.entity_attr],
        b.exists(
            [b.bind(var, schema.fact_table), n.Binding("x", inner)],
            b.conj(
                b.eq(b.attr2("Q", schema.entity_attr), b.attr2(var, schema.entity_attr)),
                b.gt(b.attr2(var, schema.measure_attr), b.attr2("x", "av")),
            ),
        ),
    )


def _entities_in_group(schema, match):
    """"employees in the marketing department" -> selection."""
    value = match.group(1).strip()
    var = schema.fact_alias
    return b.collection(
        "Q",
        [schema.entity_attr],
        b.exists(
            [b.bind(var, schema.fact_table)],
            b.conj(
                b.eq(b.attr2("Q", schema.entity_attr), b.attr2(var, schema.entity_attr)),
                b.eq(b.attr2(var, schema.group_attr), b.const(value)),
            ),
        ),
    )


def _entities_without_match(schema, match):
    """"departments without any employee earning over 100" -> antijoin."""
    threshold = float(match.group(1)) if "." in match.group(1) else int(match.group(1))
    var = schema.fact_alias
    other = f"{var}2"
    return b.collection(
        "Q",
        [schema.group_attr],
        b.exists(
            [b.bind(var, schema.fact_table)],
            b.conj(
                b.eq(b.attr2("Q", schema.group_attr), b.attr2(var, schema.group_attr)),
                b.neg(
                    b.exists(
                        [b.bind(other, schema.fact_table)],
                        b.conj(
                            b.eq(
                                b.attr2(other, schema.group_attr),
                                b.attr2(var, schema.group_attr),
                            ),
                            b.gt(
                                b.attr2(other, schema.measure_attr),
                                b.const(threshold),
                            ),
                        ),
                    )
                ),
            ),
            grouping=b.grouping(b.attr2(var, schema.group_attr)),
        ),
    )


def _count_all(schema, match):
    var = schema.fact_alias
    return b.collection(
        "Q",
        ["ct"],
        b.exists(
            [b.bind(var, schema.fact_table)],
            n.Comparison(n.Attr("Q", "ct"), "=", n.AggCall("count", None)),
            grouping=b.grouping(),
        ),
    )


def default_grammar(schema=None):
    """The demo grammar over an employees(name, dept, salary) schema."""
    schema = schema or SchemaInfo(
        fact_table="Employee",
        group_attr="dept",
        measure_attr="salary",
        entity_attr="name",
        fact_alias="e",
    )
    grammar = TemplateGrammar(schema)
    grammar.add(
        rf"({_AGG_PATTERN}) (?:of )?\w+ (?:per|by|for each) \w+",
        _agg_per_group,
        "grouped aggregate (FIO)",
    )
    grammar.add(
        rf"\w+ with ({_AGG_PATTERN}) \w+ (?:at least|of at least|>=) (\d+(?:\.\d+)?)",
        _groups_with_total_at_least,
        "grouped aggregate with HAVING",
    )
    grammar.add(
        r"(?:earning|paid|making) (?:more|higher) than their \w+ average",
        _entities_above_group_average,
        "correlated FOI aggregate",
    )
    grammar.add(
        r"without any \w+ (?:earning|paid|making) (?:over|more than) (\d+(?:\.\d+)?)",
        _entities_without_match,
        "antijoin",
    )
    grammar.add(
        r"in the (\w+) (?:department|group|team)",
        _entities_in_group,
        "selection",
    )
    grammar.add(
        r"how many \w+|count (?:of|all) \w+",
        _count_all,
        "count over all rows",
    )
    return grammar
