"""NL -> ARC -> SQL pipeline (the paper's proposed NL2SQL architecture)."""

from .pipeline import Nl2ArcPipeline, PipelineResult
from .templates import TemplateGrammar, default_grammar

__all__ = ["Nl2ArcPipeline", "PipelineResult", "TemplateGrammar", "default_grammar"]
