"""Value domain for the relational substrate.

The ARC evaluator works over ordinary Python scalars (``int``, ``float``,
``str``, ``bool``) extended with a single missing-value marker ``NULL`` and a
three-valued logic (Kleene) used wherever the active conventions say
comparisons involving ``NULL`` are *unknown* rather than false.

The paper treats null handling as a *convention* (Section 2.6/2.10): the same
relational pattern can be interpreted under SQL-style three-valued logic or
under a two-valued logic with explicit ``IS NULL`` predicates.  This module
supplies both the marker and the truth algebra so the evaluator can honour
either convention.
"""

from __future__ import annotations

import enum
from functools import total_ordering


class _NullType:
    """Singleton marker for a missing value (SQL ``NULL``).

    ``NULL`` is distinct from Python ``None`` so that ``None`` can keep its
    usual "no argument" meaning in APIs.  ``NULL`` compares equal only to
    itself at the *Python* level (so relations can be hashed and dedupe
    correctly, mirroring SQL's grouping behaviour where NULLs fall into one
    group), while *query-level* comparisons go through :func:`compare` and
    return :data:`Truth.UNKNOWN`.
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "NULL"

    def __bool__(self):
        return False

    def __hash__(self):
        return hash("__arc_null__")

    def __eq__(self, other):
        return isinstance(other, _NullType)

    def __reduce__(self):
        return (_NullType, ())


NULL = _NullType()


def is_null(value):
    """Return True when *value* is the SQL-style ``NULL`` marker."""
    return isinstance(value, _NullType)


@total_ordering
class Truth(enum.Enum):
    """Kleene three-valued truth values, ordered FALSE < UNKNOWN < TRUE.

    The ordering makes the fold for quantifiers natural: existential
    quantification is a ``max`` over rows and universal quantification a
    ``min`` (Section 2.10 of the paper; standard SQL semantics).
    """

    FALSE = 0
    UNKNOWN = 1
    TRUE = 2

    def __lt__(self, other):
        if not isinstance(other, Truth):
            return NotImplemented
        return self.value < other.value

    def __bool__(self):
        """Truthiness collapses to two-valued logic: only TRUE is truthy.

        This mirrors SQL's rule that a WHERE clause keeps a row only when the
        condition is TRUE (UNKNOWN filters the row out).
        """
        return self is Truth.TRUE

    @staticmethod
    def of(value):
        """Lift a Python bool (or NULL) into the three-valued domain."""
        if is_null(value):
            return Truth.UNKNOWN
        return Truth.TRUE if value else Truth.FALSE


TRUE = Truth.TRUE
FALSE = Truth.FALSE
UNKNOWN = Truth.UNKNOWN


def t_not(t):
    """Kleene negation."""
    if t is Truth.TRUE:
        return Truth.FALSE
    if t is Truth.FALSE:
        return Truth.TRUE
    return Truth.UNKNOWN


def t_and(*ts):
    """Kleene conjunction of any number of truth values (min)."""
    result = Truth.TRUE
    for t in ts:
        if t is Truth.FALSE:
            return Truth.FALSE
        if t is Truth.UNKNOWN:
            result = Truth.UNKNOWN
    return result


def t_or(*ts):
    """Kleene disjunction of any number of truth values (max)."""
    result = Truth.FALSE
    for t in ts:
        if t is Truth.TRUE:
            return Truth.TRUE
        if t is Truth.UNKNOWN:
            result = Truth.UNKNOWN
    return result


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def compare(left, op, right, *, three_valued=True):
    """Compare two values under the given operator, yielding a :class:`Truth`.

    Under three-valued logic (the SQL convention) any comparison touching
    ``NULL`` is UNKNOWN.  Under two-valued logic, ``NULL`` participates as an
    ordinary domain value: ``NULL = NULL`` is TRUE and ``NULL`` is distinct
    from every other value (the convention used by null-free languages such
    as Soufflé, and by the paper's two-valued rewrite in Fig. 11).
    """
    if op not in _COMPARATORS:
        raise ValueError(f"unknown comparison operator {op!r}")
    if is_null(left) or is_null(right):
        if three_valued:
            return Truth.UNKNOWN
        if op in ("=",):
            return Truth.of(is_null(left) and is_null(right))
        if op in ("<>", "!="):
            return Truth.of(not (is_null(left) and is_null(right)))
        # Ordering against NULL in two-valued mode: NULL sorts before
        # everything, mirroring a total order extension.
        left_key = (0, 0) if is_null(left) else (1, left)
        right_key = (0, 0) if is_null(right) else (1, right)
        try:
            return Truth.of(_COMPARATORS[op](left_key, right_key))
        except TypeError:
            return Truth.FALSE
    try:
        return Truth.of(_COMPARATORS[op](left, right))
    except TypeError:
        # Heterogeneous comparisons (e.g. str vs int) are FALSE for ordering
        # and handled structurally for (in)equality.
        if op == "=":
            return Truth.FALSE
        if op in ("<>", "!="):
            return Truth.TRUE
        return Truth.FALSE


def arithmetic(op, left, right):
    """Evaluate a binary arithmetic operator; NULL propagates (SQL convention)."""
    if is_null(left) or is_null(right):
        return NULL
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return NULL
        result = left / right
        return result
    if op == "%":
        if right == 0:
            return NULL
        return left % right
    raise ValueError(f"unknown arithmetic operator {op!r}")


def sort_key(value):
    """Total-order key over the heterogeneous value domain (NULL first)."""
    if is_null(value):
        return (0, "", 0)
    if isinstance(value, bool):
        return (1, "", int(value))
    if isinstance(value, (int, float)):
        return (2, "", value)
    return (3, str(value), 0)
