"""Deterministic workload generators for tests and benchmarks.

All generators take an explicit ``seed`` so every experiment is reproducible.
They produce the kinds of instances the paper's examples assume: generic
binary/ternary relations, employee/department payrolls (Fig. 6),
drinker/beer preference tables (Example 2), parent edges for recursion
(Fig. 10), and sparse matrices (Section 3.1).
"""

from __future__ import annotations

import random
import string

from .relation import Relation
from .values import NULL
from .database import Database


def binary_relation(name, n_rows, *, domain=20, seed=0, attrs=("A", "B"), null_rate=0.0):
    """Random binary relation over an integer domain, optionally with NULLs."""
    rng = random.Random(seed)
    rel = Relation(name, attrs)
    for _ in range(n_rows):
        row = []
        for _attr in attrs:
            if null_rate and rng.random() < null_rate:
                row.append(NULL)
            else:
                row.append(rng.randrange(domain))
        rel.add(tuple(row))
    return rel


def chain_database(n_relations, rows_per_relation, *, domain=50, seed=0):
    """Database of relations R0(A,B), R1(B,C), ... forming a join chain."""
    rng = random.Random(seed)
    db = Database()
    attr_names = string.ascii_uppercase
    for i in range(n_relations):
        attrs = (attr_names[i % 26], attr_names[(i + 1) % 26])
        rel = Relation(f"R{i}", attrs)
        for _ in range(rows_per_relation):
            rel.add((rng.randrange(domain), rng.randrange(domain)))
        db.add(rel)
    return db


def payroll_database(n_employees, n_departments, *, seed=0, max_salary=100):
    """R(empl, dept) and S(empl, sal): the running example of Fig. 6."""
    rng = random.Random(seed)
    r = Relation("R", ("empl", "dept"))
    s = Relation("S", ("empl", "sal"))
    for e in range(n_employees):
        empl = f"e{e}"
        r.add((empl, f"d{rng.randrange(n_departments)}"))
        s.add((empl, rng.randrange(1, max_salary + 1)))
    return Database([r, s])


def likes_database(n_drinkers, n_beers, *, seed=0, like_probability=0.4):
    """Likes(drinker, beer) preference table for the unique-set query (Example 2)."""
    rng = random.Random(seed)
    likes = Relation("Likes", ("drinker", "beer"))
    for d in range(n_drinkers):
        drinker = f"drinker{d}"
        liked_any = False
        for b in range(n_beers):
            if rng.random() < like_probability:
                likes.add((drinker, f"beer{b}"))
                liked_any = True
        if not liked_any:
            likes.add((drinker, f"beer{rng.randrange(n_beers)}"))
    return Database([likes])


def parent_edges(n_nodes, *, seed=0, extra_edges=0, name="P"):
    """A forest of parent edges P(s, t) plus optional random extra edges.

    Guaranteed acyclic (edges go from lower to higher node ids), so the
    ancestor fixpoint (Fig. 10) terminates quickly and can be checked against
    networkx's transitive closure.
    """
    rng = random.Random(seed)
    rel = Relation(name, ("s", "t"))
    for node in range(1, n_nodes):
        rel.add((f"n{rng.randrange(node)}", f"n{node}"))
    for _ in range(extra_edges):
        a = rng.randrange(n_nodes - 1)
        b = rng.randrange(a + 1, n_nodes)
        rel.add((f"n{a}", f"n{b}"))
    return Database([rel.distinct()])


def sparse_matrix(name, n_rows, n_cols, *, density=0.3, seed=0, max_value=9):
    """Sparse matrix in the paper's (row, col, val) relational encoding."""
    rng = random.Random(seed)
    rel = Relation(name, ("row", "col", "val"))
    for i in range(n_rows):
        for j in range(n_cols):
            if rng.random() < density:
                rel.add((i, j, rng.randrange(1, max_value + 1)))
    return rel


def matrix_to_dense(relation, n_rows, n_cols):
    """Materialize a (row, col, val) relation as a list-of-lists dense matrix."""
    dense = [[0] * n_cols for _ in range(n_rows)]
    for row in relation:
        dense[row["row"]][row["col"]] += row["val"]
    return dense
