"""Relational substrate: values, tuples, relations, catalogs, generators."""

from .values import (
    NULL,
    Truth,
    TRUE,
    FALSE,
    UNKNOWN,
    is_null,
    t_and,
    t_not,
    t_or,
    compare,
    arithmetic,
)
from .relation import Relation, Tuple
from .database import Database
from . import generators, csvio

__all__ = [
    "NULL",
    "Truth",
    "TRUE",
    "FALSE",
    "UNKNOWN",
    "is_null",
    "t_and",
    "t_not",
    "t_or",
    "compare",
    "arithmetic",
    "Relation",
    "Tuple",
    "Database",
    "generators",
    "csvio",
]
