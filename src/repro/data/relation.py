"""Named-schema relations with set/bag duality.

The paper insists on the *named perspective* (Codd's "totally associative
addressing", Section 2.1): tuples are accessed by attribute name, never by
position, and whether a relation is a set or a bag is a *convention*, not a
property of the query language (Section 2.7).  A :class:`Relation` therefore
always stores tuples with multiplicities; ``distinct()`` and the evaluator's
conventions decide when duplicates are collapsed.
"""

from __future__ import annotations

import weakref
from collections import Counter

from ..errors import SchemaError
from .values import NULL, sort_key


class Tuple:
    """An immutable named tuple of values: attribute name -> value.

    Hashable so relations can be stored as Counters.  Attribute order is
    normalized to the schema order of the owning relation for display, but
    equality is name-based (logical independence from column order).
    """

    __slots__ = ("_values", "_hash")

    def __init__(self, values):
        self._values = dict(values)
        self._hash = hash(frozenset(self._values.items()))

    def __getitem__(self, attr):
        try:
            return self._values[attr]
        except KeyError:
            raise SchemaError(f"tuple has no attribute {attr!r}; has {sorted(self._values)}") from None

    def get(self, attr, default=None):
        return self._values.get(attr, default)

    def attributes(self):
        return set(self._values)

    def as_dict(self):
        return dict(self._values)

    def project(self, attrs):
        """Return a new tuple restricted to *attrs*."""
        if len(attrs) == len(self._values) and self._values.keys() == set(attrs):
            return self
        return Tuple({a: self[a] for a in attrs})

    @classmethod
    def _adopt(cls, values):
        """Fast constructor taking ownership of *values* (no copy).

        Internal: callers must not mutate *values* afterwards.
        """
        tup = cls.__new__(cls)
        tup._values = values
        tup._hash = hash(frozenset(values.items()))
        return tup

    def rename(self, mapping):
        """Return a new tuple with attributes renamed per *mapping* (old -> new)."""
        return Tuple({mapping.get(a, a): v for a, v in self._values.items()})

    def merged(self, other):
        """Return the union of two tuples (attribute-disjoint or agreeing)."""
        combined = dict(self._values)
        combined.update(other._values if isinstance(other, Tuple) else other)
        return Tuple(combined)

    def __eq__(self, other):
        if not isinstance(other, Tuple):
            return NotImplemented
        return self._values == other._values

    def __hash__(self):
        return self._hash

    def __repr__(self):
        inner = ", ".join(f"{a}={v!r}" for a, v in sorted(self._values.items()))
        return f"Tuple({inner})"


class Relation:
    """A multiset of :class:`Tuple` values over a fixed named schema.

    Parameters
    ----------
    name:
        Relation name (used in error messages and rendering).
    schema:
        Ordered attribute names.
    rows:
        Iterable of tuples; each row may be a dict, a :class:`Tuple`, or a
        positional sequence matched against *schema*.
    """

    def __init__(self, name, schema, rows=()):
        self.name = name
        self.schema = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise SchemaError(f"relation {name!r} has duplicate attributes {self.schema}")
        self._schema_set = frozenset(self.schema)
        self._rows = Counter()
        self._indexes = {}  # attrs tuple -> {key tuple: [(Tuple, mult), ...]}
        self.index_builds = 0  # full index (re)builds; probes of a maintained index are free
        # Derived results (e.g. materialized aggregates) keyed weakly by the
        # owning plan object; invalidated together with the indexes.
        self._derived = weakref.WeakKeyDictionary()
        for row in rows:
            self.add(row)

    # -- construction -----------------------------------------------------

    def _coerce(self, row):
        if isinstance(row, Tuple):
            values = row._values
            if values.keys() == self._schema_set:
                return row
            missing = self._schema_set - values.keys()
            if missing:
                raise SchemaError(f"row for {self.name!r} missing attributes {sorted(missing)}")
            return row.project(self.schema)
        if isinstance(row, dict):
            missing = set(self.schema) - set(row)
            if missing:
                raise SchemaError(f"row for {self.name!r} missing attributes {sorted(missing)}")
            return Tuple({a: row[a] for a in self.schema})
        row = tuple(row)
        if len(row) != len(self.schema):
            raise SchemaError(
                f"row {row!r} has {len(row)} values but {self.name!r} has arity {len(self.schema)}"
            )
        return Tuple(dict(zip(self.schema, row)))

    def add(self, row, multiplicity=1):
        """Insert *row* with the given multiplicity (invalidates cached indexes)."""
        if multiplicity < 0:
            raise ValueError("multiplicity must be non-negative")
        coerced = self._coerce(row)
        if multiplicity:
            self._rows[coerced] += multiplicity
            if self._indexes:
                self._indexes.clear()
            if len(self._derived):
                self._derived.clear()
        return coerced

    @classmethod
    def from_counter(cls, name, schema, counter):
        rel = cls(name, schema)
        for row, mult in counter.items():
            rel.add(row, mult)
        return rel

    def extend_new(self, rows, multiplicity=1):
        """Bulk-insert rows while *maintaining* cached hash indexes.

        Unlike :meth:`add`, which invalidates every cached index, this
        appends each new row to the matching index buckets in place — the
        semi-naive fixpoint grows its full relations once per round, and
        rebuilding their indexes each round would erase the benefit of
        probing delta→full.  Rows already present fall back to plain
        :meth:`add` (an extra bucket entry for an existing tuple would
        double-count it), and derived-result caches are always dropped.
        """
        if multiplicity < 0:
            raise ValueError("multiplicity must be non-negative")
        coerced = [self._coerce(row) for row in rows]
        if not coerced or not multiplicity:
            return
        if len(set(coerced)) != len(coerced) or any(
            row in self._rows for row in coerced
        ):
            # Duplicates (within the batch or against stored rows) must
            # *accumulate*; take the invalidating add() path.
            for row in coerced:
                self.add(row, multiplicity)
            return
        for row in coerced:
            self._rows[row] = multiplicity
        for attrs, index in self._indexes.items():
            for row in coerced:
                values = row._values
                key = tuple(values[a] for a in attrs)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [(row, multiplicity)]
                else:
                    bucket.append((row, multiplicity))
        if len(self._derived):
            self._derived.clear()

    @classmethod
    def _adopt_counter(cls, name, schema, counter):
        """Take ownership of a Tuple -> multiplicity Counter without coercion.

        Internal fast path: every key must already be a :class:`Tuple` whose
        attributes exactly match *schema* (the evaluator's head-built rows
        satisfy this by construction).
        """
        rel = cls(name, schema)
        rel._rows = counter
        return rel

    # -- hash indexes ------------------------------------------------------

    def index_on(self, attrs):
        """Return (building and caching on demand) a hash index over *attrs*.

        The index maps a tuple of attribute values to the list of
        ``(row, multiplicity)`` pairs sharing those values, enabling O(1)
        equality probes instead of full scans.  Indexes are invalidated by
        :meth:`add` and lazily rebuilt on the next probe.
        """
        attrs = tuple(attrs)
        index = self._indexes.get(attrs)
        if index is None:
            self.index_builds += 1
            unknown = set(attrs) - self._schema_set
            if unknown:
                raise SchemaError(
                    f"cannot index {self.name!r} on {sorted(unknown)}; "
                    f"schema is {self.schema}"
                )
            index = {}
            if len(attrs) == 1:
                attr = attrs[0]
                for row, mult in self._rows.items():
                    key = (row._values[attr],)
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = [(row, mult)]
                    else:
                        bucket.append((row, mult))
            else:
                for row, mult in self._rows.items():
                    values = row._values
                    key = tuple(values[a] for a in attrs)
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = [(row, mult)]
                    else:
                        bucket.append((row, mult))
            self._indexes[attrs] = index
        return index

    def derived_get(self, owner, tag):
        """A cached derived result for *owner* (a plan object), or None."""
        per_owner = self._derived.get(owner)
        return None if per_owner is None else per_owner.get(tag)

    def derived_put(self, owner, tag, value):
        """Cache a derived result; dropped when the relation changes."""
        self._derived.setdefault(owner, {})[tag] = value
        return value

    @staticmethod
    def derived_get_shared(relations, owner, tag):
        """A derived result cached consistently on *all* of *relations*.

        Used for results computed over several relations at once (e.g. a
        decorrelated scope's grouped index): the value is stored on every
        participating relation, and a mutation of *any* of them drops its
        copy — so the shared lookup only succeeds while every input is
        unchanged.  Returns None on any miss or disagreement.
        """
        if not relations:
            return None
        first = relations[0].derived_get(owner, tag)
        if first is None:
            return None
        for relation in relations[1:]:
            if relation.derived_get(owner, tag) is not first:
                return None
        return first

    @staticmethod
    def derived_put_shared(relations, owner, tag, value):
        """Cache *value* on every relation (see :meth:`derived_get_shared`)."""
        for relation in relations:
            relation.derived_put(owner, tag, value)
        return value

    # -- inspection --------------------------------------------------------

    def __iter__(self):
        """Iterate tuples with multiplicity (bag iteration)."""
        for row, mult in self._rows.items():
            for _ in range(mult):
                yield row

    def iter_distinct(self):
        """Iterate distinct tuples once each."""
        return iter(self._rows)

    def counter(self):
        """Return a copy of the underlying tuple -> multiplicity Counter."""
        return Counter(self._rows)

    def multiplicity(self, row):
        return self._rows.get(self._coerce(row), 0)

    def __len__(self):
        """Bag cardinality (total number of tuples, counting duplicates)."""
        return sum(self._rows.values())

    def distinct_count(self):
        return len(self._rows)

    def is_empty(self):
        return not self._rows

    def __contains__(self, row):
        return self.multiplicity(row) > 0

    # -- comparisons -------------------------------------------------------

    def __eq__(self, other):
        """Bag equality: same schema set and same tuple multiplicities."""
        if not isinstance(other, Relation):
            return NotImplemented
        return set(self.schema) == set(other.schema) and self._rows == other._rows

    def __hash__(self):  # pragma: no cover - relations are not hashed in practice
        return hash((frozenset(self.schema), frozenset(self._rows.items())))

    def set_equal(self, other):
        """Set equality: same schema set and same distinct tuples."""
        return set(self.schema) == set(other.schema) and set(self._rows) == set(other._rows)

    # -- derivations ---------------------------------------------------------

    def distinct(self, name=None):
        """Return the deduplicated (set-semantics) version of this relation."""
        return Relation._adopt_counter(
            name or self.name, self.schema, Counter(dict.fromkeys(self._rows, 1))
        )

    def rename(self, mapping, name=None):
        new_schema = [mapping.get(a, a) for a in self.schema]
        rel = Relation(name or self.name, new_schema)
        for row, mult in self._rows.items():
            rel.add(row.rename(mapping), mult)
        return rel

    def project(self, attrs, name=None, *, dedupe=False):
        if set(attrs) == self._schema_set:
            # Attribute-preserving projection: rows are unchanged (access is
            # name-based), only the display schema order may differ.
            rel = Relation._adopt_counter(name or self.name, attrs, Counter(self._rows))
            return rel.distinct() if dedupe else rel
        rel = Relation(name or self.name, attrs)
        for row, mult in self._rows.items():
            rel.add(row.project(attrs), 1 if dedupe else mult)
        return rel if not dedupe else rel.distinct()

    def select(self, predicate, name=None):
        """Keep rows where *predicate* (a Python callable on Tuple) is truthy."""
        rel = Relation(name or self.name, self.schema)
        for row, mult in self._rows.items():
            if predicate(row):
                rel.add(row, mult)
        return rel

    def union(self, other, name=None, *, all=True):
        if set(self.schema) != set(other.schema):
            raise SchemaError(
                f"union schema mismatch: {self.schema} vs {other.schema}"
            )
        rel = Relation(name or self.name, self.schema)
        for row, mult in self._rows.items():
            rel.add(row, mult)
        for row, mult in other._rows.items():
            rel.add(row.project(self.schema), mult)
        return rel if all else rel.distinct()

    # -- display -------------------------------------------------------------

    def sorted_rows(self):
        """Rows in a deterministic order (for tests and display)."""
        return sorted(
            self,
            key=lambda row: tuple(sort_key(row[a]) for a in self.schema),
        )

    def to_table(self, *, max_rows=50):
        """Render an ASCII table (deterministic order)."""
        header = list(self.schema)
        body = [
            ["NULL" if v is NULL else str(v) for v in (row[a] for a in header)]
            for row in self.sorted_rows()[:max_rows]
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        def fmt(cells):
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))
        lines = [fmt(header), "-+-".join("-" * w for w in widths)]
        lines.extend(fmt(r) for r in body)
        if len(self) > max_rows:
            lines.append(f"... ({len(self) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self):
        return f"Relation({self.name!r}, schema={self.schema}, rows={len(self)})"
