"""Database catalog: a named collection of base relations.

Base relations are given extensionally (Fig. 14 of the paper).  Defined,
external, and abstract relations live in the ARC program / engine layers; the
catalog only stores what a Datalog person would call the EDB.
"""

from __future__ import annotations

from ..errors import SchemaError
from .relation import Relation


class Database:
    """A mutable catalog mapping relation names to :class:`Relation` objects."""

    def __init__(self, relations=()):
        self._relations = {}
        for rel in relations:
            self.add(rel)

    def add(self, relation):
        """Register *relation*; replaces any previous relation of the same name."""
        if not isinstance(relation, Relation):
            raise SchemaError(f"expected a Relation, got {type(relation).__name__}")
        self._relations[relation.name] = relation
        return relation

    def create(self, name, schema, rows=()):
        """Create, register, and return a new relation."""
        return self.add(Relation(name, schema, rows))

    def get(self, name):
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"unknown relation {name!r}; catalog has {sorted(self._relations)}"
            ) from None

    def __contains__(self, name):
        return name in self._relations

    def __getitem__(self, name):
        return self.get(name)

    def names(self):
        return sorted(self._relations)

    def relations(self):
        return [self._relations[n] for n in self.names()]

    def copy(self):
        """Shallow copy of the catalog (relations shared)."""
        return Database(self._relations.values())

    def drop(self, name):
        self._relations.pop(name, None)

    def __repr__(self):
        return f"Database({self.names()})"
