"""CSV import/export for relations.

A deliberately small, dependency-free IO layer: enough to move instances in
and out of the substrate for examples and ad-hoc experiments.  Empty cells
are read as ``NULL``; numbers are inferred when every non-null cell of a
column parses as int/float.
"""

from __future__ import annotations

import csv
import io

from .relation import Relation
from .values import NULL, is_null


def _infer_column(values):
    """Choose int, float, or str for a column of raw strings (NULLs ignored)."""
    def try_cast(cast):
        out = []
        for v in values:
            if is_null(v):
                out.append(v)
                continue
            try:
                out.append(cast(v))
            except (TypeError, ValueError):
                return None
        return out

    for cast in (int, float):
        result = try_cast(cast)
        if result is not None:
            return result
    return values


def read_csv(source, name, *, delimiter=","):
    """Read a relation from a path or file-like object.

    The first row is the header (attribute names).  Empty strings become
    ``NULL``.  Column types are inferred (int, then float, else str).
    """
    if isinstance(source, (str, bytes)):
        with open(source, newline="") as handle:
            return read_csv(handle, name, delimiter=delimiter)
    reader = csv.reader(source, delimiter=delimiter)
    rows = list(reader)
    if not rows:
        raise ValueError("CSV input has no header row")
    header = [h.strip() for h in rows[0]]
    raw_columns = [[] for _ in header]
    for row in rows[1:]:
        for i in range(len(header)):
            cell = row[i].strip() if i < len(row) else ""
            raw_columns[i].append(NULL if cell == "" else cell)
    columns = [_infer_column(col) for col in raw_columns]
    relation = Relation(name, header)
    for i in range(len(rows) - 1):
        relation.add(tuple(col[i] for col in columns))
    return relation


def write_csv(relation, target=None, *, delimiter=","):
    """Write *relation* to a path/file-like object, or return CSV text."""
    buffer = None
    if target is None:
        buffer = io.StringIO()
        handle = buffer
    elif isinstance(target, (str, bytes)):
        with open(target, "w", newline="") as handle:
            write_csv(relation, handle, delimiter=delimiter)
        return None
    else:
        handle = target
    writer = csv.writer(handle, delimiter=delimiter)
    writer.writerow(relation.schema)
    for row in relation.sorted_rows():
        writer.writerow(["" if is_null(row[a]) else row[a] for a in relation.schema])
    if buffer is not None:
        return buffer.getvalue()
    return None
