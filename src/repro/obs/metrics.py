"""Counters and bucketed latency histograms for the serving path.

A tiny, dependency-free metrics model shaped after the Prometheus client
data model — just enough for ``GET /metrics`` (rendered by
:func:`repro.obs.exporters.render_prometheus`) and the quantile summaries
``GET /stats`` embeds:

* :class:`Counter` — monotonically increasing, labelled totals;
* :class:`Gauge` — a labelled value that can move both ways (queue
  estimates, EWMA summaries), last-write-wins;
* :class:`Histogram` — fixed cumulative buckets per label set with
  ``sum``/``count``, plus interpolated p50/p95/p99 estimates;
* :class:`MetricsRegistry` — get-or-create by name, iteration in
  registration order (stable ``/metrics`` output).

Label values are stringified at observation time; label *names* are fixed
per metric at creation (a mismatch raises, matching Prometheus semantics).
All operations are dict updates under a per-metric lock — cheap enough to
sit on the span-finish path of every request phase, and safe under the
serve worker pool: ``counter.inc()`` / ``histogram.observe()`` are
read-modify-write sequences that would lose increments if two workers
interleaved (pinned by ``tests/serve/test_thread_safety.py``).  Readers
(``/metrics`` scrapes, ``/stats`` summaries) snapshot under the same lock
so they never observe a half-applied update.
"""

from __future__ import annotations

import threading

#: Default latency buckets, in seconds: 100 µs .. 10 s, roughly 1-2.5-5
#: per decade.  Warm serve phases land in the sub-millisecond buckets;
#: cold catalog loads and pathological queries land near the top.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

_QUANTILES = (0.5, 0.95, 0.99)


def _label_key(label_names, labels):
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {sorted(label_names)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in label_names)


class Counter:
    """A monotonically increasing total, optionally labelled."""

    kind = "counter"

    __slots__ = ("name", "help_text", "label_names", "_values", "_lock")

    def __init__(self, name, help_text="", labels=()):
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(labels)
        self._values = {}
        self._lock = threading.Lock()

    def inc(self, n=1, **labels):
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + n

    def value(self, **labels):
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._values.get(key, 0)

    def samples(self):
        """Yield ``(labels dict, value)`` per label set (zero sets = empty)."""
        with self._lock:
            items = list(self._values.items())
        for key, value in items:
            yield dict(zip(self.label_names, key)), value


class Gauge:
    """A point-in-time value that can rise and fall, optionally labelled.

    ``set`` is last-write-wins under the metric lock; readers snapshot
    under the same lock.  Used for values the serving pool maintains as
    it goes (the rolling service-time EWMA behind load shedding) rather
    than values computed at scrape time, which ride the ``extra`` rows of
    :func:`repro.obs.exporters.render_prometheus` instead.
    """

    kind = "gauge"

    __slots__ = ("name", "help_text", "label_names", "_values", "_lock")

    def __init__(self, name, help_text="", labels=()):
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(labels)
        self._values = {}
        self._lock = threading.Lock()

    def set(self, value, **labels):
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = value

    def value(self, **labels):
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._values.get(key)

    def samples(self):
        """Yield ``(labels dict, value)`` per label set (zero sets = empty)."""
        with self._lock:
            items = list(self._values.items())
        for key, value in items:
            yield dict(zip(self.label_names, key)), value


class Histogram:
    """Cumulative fixed-bucket histogram with quantile interpolation."""

    kind = "histogram"

    __slots__ = (
        "name", "help_text", "label_names", "buckets", "_series", "_lock",
    )

    def __init__(self, name, help_text="", labels=(), buckets=DEFAULT_BUCKETS):
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(labels)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self._series = {}  # label key -> [counts per bucket + inf, sum, count]
        self._lock = threading.Lock()

    def _entry(self, key):
        entry = self._series.get(key)
        if entry is None:
            entry = self._series[key] = [[0] * (len(self.buckets) + 1), 0.0, 0]
        return entry

    def observe(self, value, **labels):
        key = _label_key(self.label_names, labels)
        with self._lock:
            entry = self._entry(key)
            counts = entry[0]
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1  # the +Inf bucket
            entry[1] += value
            entry[2] += 1

    # -- reading -------------------------------------------------------------

    def _snapshot_entry(self, key):
        """A copy of (counts, sum, count) for *key*, or None — lock-consistent."""
        with self._lock:
            entry = self._series.get(key)
            if entry is None:
                return None
            return list(entry[0]), entry[1], entry[2]

    def count(self, **labels):
        entry = self._snapshot_entry(_label_key(self.label_names, labels))
        return 0 if entry is None else entry[2]

    def sum(self, **labels):
        entry = self._snapshot_entry(_label_key(self.label_names, labels))
        return 0.0 if entry is None else entry[1]

    def quantile(self, q, **labels):
        """Estimate the q-quantile by linear interpolation within buckets.

        Observations past the last finite bound are clamped to it (the
        histogram does not track a max), matching Prometheus's
        ``histogram_quantile`` behaviour on the +Inf bucket.
        """
        entry = self._snapshot_entry(_label_key(self.label_names, labels))
        if entry is None or entry[2] == 0:
            return None
        counts, _, total = entry
        rank = q * total
        cumulative = 0
        lower = 0.0
        for index, bound in enumerate(self.buckets):
            previous = cumulative
            cumulative += counts[index]
            if cumulative >= rank:
                if counts[index] == 0:  # pragma: no cover - rank on boundary
                    return bound
                fraction = (rank - previous) / counts[index]
                return lower + (bound - lower) * min(1.0, max(0.0, fraction))
            lower = bound
        return self.buckets[-1]

    def snapshot(self, **labels):
        """JSON-friendly summary (count, sum, p50/p95/p99) for ``/stats``."""
        summary = {
            "count": self.count(**labels),
            "sum_s": round(self.sum(**labels), 6),
        }
        for q in _QUANTILES:
            value = self.quantile(q, **labels)
            summary[f"p{int(q * 100)}_ms"] = (
                None if value is None else round(value * 1e3, 3)
            )
        return summary

    def label_sets(self):
        """The label dicts observed so far, in first-seen order."""
        with self._lock:
            keys = list(self._series)
        return [dict(zip(self.label_names, key)) for key in keys]

    def samples(self):
        """Yield ``(labels, cumulative bucket counts, sum, count)`` rows."""
        with self._lock:
            series = [
                (key, list(entry[0]), entry[1], entry[2])
                for key, entry in self._series.items()
            ]
        for key, counts, total_sum, total in series:
            cumulative = []
            running = 0
            for index in range(len(self.buckets)):
                running += counts[index]
                cumulative.append(running)
            yield dict(zip(self.label_names, key)), cumulative, total_sum, total


class MetricsRegistry:
    """Named metrics, get-or-create, iterated in registration order.

    Get-or-create is atomic (registry lock), so two pool workers racing to
    register the same name always share one metric object.
    """

    def __init__(self):
        self._metrics = {}
        self._lock = threading.Lock()

    def counter(self, name, help_text="", labels=()):
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(self, name, help_text="", labels=()):
        return self._get_or_create(Gauge, name, help_text, labels)

    def histogram(self, name, help_text="", labels=(), buckets=DEFAULT_BUCKETS):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = Histogram(
                    name, help_text, labels, buckets
                )
        self._check(metric, Histogram, labels)
        return metric

    def _get_or_create(self, cls, name, help_text, labels):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help_text, labels)
        self._check(metric, cls, labels)
        return metric

    @staticmethod
    def _check(metric, cls, labels):
        if not isinstance(metric, cls) or metric.label_names != tuple(labels):
            raise ValueError(
                f"metric {metric.name!r} already registered as "
                f"{metric.kind} with labels {metric.label_names}"
            )

    def get(self, name):
        with self._lock:
            return self._metrics.get(name)

    def __iter__(self):
        with self._lock:
            return iter(list(self._metrics.values()))

    def __len__(self):
        with self._lock:
            return len(self._metrics)

    def latency_summary(self):
        """Per-phase / per-backend quantile summaries for ``GET /stats``."""
        summary = {}
        for metric in self:
            if not isinstance(metric, Histogram):
                continue
            if metric.label_names:
                series = {}
                for labels in metric.label_sets():
                    key = ",".join(labels[n] for n in metric.label_names)
                    series[key] = metric.snapshot(**labels)
                summary[metric.name] = series
            elif metric.count():
                summary[metric.name] = metric.snapshot()
        return summary
