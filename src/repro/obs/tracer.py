"""Query-lifecycle span tracing: where a run actually spent its time.

A :class:`Tracer` records *spans* — named, timed, strictly nested intervals
covering one phase of a query's life (``frontend.parse``,
``probe.capabilities``, ``plan.compile``, ``decorr.index.build``,
``scope.execute``, ``fixpoint.round``, ``backend.dispatch``,
``sqlite.execute``, …) — plus zero-duration *events* (a retry, a breaker
skip, an LRU hit).  Every instrumentation site in the engine is gated on
``tracer is not None``, so the disabled path adds **zero** per-row work and
at most one attribute test per coarse phase; the perf-smoke suite pins this
with counters and the E23 gate bounds the armed cost below 5 %.

Three consumers, one record shape:

* ``repro eval --explain`` / ``Prepared.explain()`` render the span tree
  with timings, tags (which decorrelation strategy fired, why a backend
  fell back) and the run's :class:`~repro.engine.planner.ExecutionStats`
  counter deltas (captured per span when the tracer holds a ``stats``);
* ``--trace-out FILE`` exports Chrome-trace-viewer JSON
  (:func:`repro.obs.exporters.chrome_trace`), one timeline row per query id;
* ``repro serve`` runs a *metrics-only* tracer (``keep_spans=False``): span
  durations feed the per-phase latency histograms behind ``GET /metrics``
  and the spans themselves are dropped, so a long-lived server never
  accumulates trace memory.

The clock is injectable (like :mod:`repro.util.deadline`) so tests drive
span timings deterministically.  A tracer is **not** thread-safe — it
belongs to a Session, which is itself single-threaded by contract.
"""

from __future__ import annotations

import time

#: Hard cap on retained spans/events per tracer: a runaway fixpoint under
#: tracing degrades to dropped spans (counted), never to unbounded memory.
DEFAULT_MAX_SPANS = 50_000

#: ExecutionStats counters worth carrying on spans (all of them; the delta
#: only stores the ones that actually moved during the span).
_MISSING = object()


class Span:
    """One timed phase of a query run (also its own context manager)."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "query_id",
        "start",
        "end",
        "tags",
        "stats_delta",
        "_tracer",
        "_stats_before",
    )

    def __init__(self, tracer, name, span_id, parent_id, query_id, start, tags):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.query_id = query_id
        self.start = start
        self.end = None
        self.tags = tags
        self.stats_delta = {}
        self._stats_before = None

    @property
    def duration_s(self):
        return 0.0 if self.end is None else self.end - self.start

    def tag(self, **tags):
        """Attach *tags* to the span (chainable); see also ``NULL_SPAN``."""
        self.tags.update(tags)
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None and "error" not in self.tags:
            self.tags["error"] = exc_type.__name__
        self._tracer._finish(self)
        return False

    def __repr__(self):
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.3f} ms, "
            f"tags={self.tags}, query_id={self.query_id})"
        )


class _NullSpan:
    """The no-op span: instrumentation sites tag it freely, nothing sticks.

    ``NULL_SPAN if tracer is None else tracer.span(...)`` keeps every
    ``with``-site branch-free beyond one identity test; the singleton has
    no state, so tagging it is a constant-time no-op.
    """

    __slots__ = ()

    def tag(self, **tags):
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


#: Shared no-op span for the ``tracer is None`` branch of every site.
NULL_SPAN = _NullSpan()


class Event:
    """A zero-duration occurrence attached to the span open at the time."""

    __slots__ = ("name", "ts", "parent_id", "query_id", "tags")

    def __init__(self, name, ts, parent_id, query_id, tags):
        self.name = name
        self.ts = ts
        self.parent_id = parent_id
        self.query_id = query_id
        self.tags = tags

    def __repr__(self):
        return f"Event({self.name!r}, tags={self.tags})"


class Tracer:
    """Span recorder for one Session (see the module docstring).

    Parameters
    ----------
    clock:
        Monotonic seconds; injectable for deterministic tests.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry`; when present, every
        finished span observes ``arc_phase_seconds{phase=<name>}`` (and a
        ``backend.dispatch`` span additionally feeds
        ``arc_backend_seconds{backend=...}``), and :meth:`count` increments
        named counters.
    stats:
        An :class:`~repro.engine.planner.ExecutionStats` to snapshot around
        each span; the span's ``stats_delta`` keeps the counters that moved.
    keep_spans:
        False runs metrics-only: durations feed the registry, span/event
        records are dropped immediately (the ``repro serve`` mode).
    """

    def __init__(self, *, clock=time.perf_counter, metrics=None, stats=None,
                 keep_spans=True, max_spans=DEFAULT_MAX_SPANS):
        self._clock = clock
        self.metrics = metrics
        self.stats = stats
        self.keep_spans = keep_spans
        self.max_spans = max_spans
        self.finished = []
        self.events = []
        self.spans_started = 0
        self.spans_dropped = 0
        self._stack = []
        self._seq = 0
        self._root_seq = 0
        self.query_id = None
        self._pinned_query_id = None

    # -- query identity ------------------------------------------------------

    def begin(self, query_id=None):
        """Pin the query id the next root spans carry (``repro serve`` sets
        its per-request id here); returns the id in effect."""
        if query_id is None:
            self._root_seq += 1
            query_id = f"q{self._root_seq:04d}"
        self._pinned_query_id = query_id
        self.query_id = query_id
        return query_id

    # -- recording -----------------------------------------------------------

    def span(self, name, **tags):
        """Open a span; use as ``with tracer.span("plan.compile") as sp:``."""
        self.spans_started += 1
        if not self._stack:
            # A fresh root: queries traced without an explicit begin() get
            # sequential auto ids, one per root, so Chrome-trace rows and
            # the explain tree group runs correctly.
            if self._pinned_query_id is None:
                self._root_seq += 1
                self.query_id = f"q{self._root_seq:04d}"
        self._seq += 1
        span = Span(
            self,
            name,
            span_id=self._seq,
            parent_id=self._stack[-1].span_id if self._stack else None,
            query_id=self.query_id,
            start=self._clock(),
            tags=tags,
        )
        if self.stats is not None:
            span._stats_before = self.stats.as_dict()
        self._stack.append(span)
        return span

    def _finish(self, span):
        span.end = self._clock()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive unwind
            self._stack.remove(span)
        if span._stats_before is not None:
            after = self.stats.as_dict()
            before = span._stats_before
            span.stats_delta = {
                key: after[key] - before[key]
                for key in after
                if after[key] != before[key]
            }
            span._stats_before = None
        if self.metrics is not None:
            duration = span.duration_s
            self.metrics.histogram(
                "arc_phase_seconds",
                "Latency of each query-lifecycle phase.",
                labels=("phase",),
            ).observe(duration, phase=span.name)
            backend = span.tags.get("backend")
            # Only the dispatch span feeds the backend histogram: the root
            # ``query`` span carries a ``backend`` tag too (for explain),
            # and counting both would double every request.
            if backend is not None and span.name == "backend.dispatch":
                self.metrics.histogram(
                    "arc_backend_seconds",
                    "Latency of backend dispatch per backend.",
                    labels=("backend",),
                ).observe(duration, backend=str(backend))
        if self.keep_spans:
            if len(self.finished) < self.max_spans:
                self.finished.append(span)
            else:
                self.spans_dropped += 1

    def event(self, name, **tags):
        """Record a zero-duration event under the currently open span."""
        if not self.keep_spans:
            return None
        if len(self.events) >= self.max_spans:
            self.spans_dropped += 1
            return None
        event = Event(
            name,
            ts=self._clock(),
            parent_id=self._stack[-1].span_id if self._stack else None,
            query_id=self.query_id,
            tags=tags,
        )
        self.events.append(event)
        return event

    def count(self, name, n=1, help_text="", **labels):
        """Increment a metrics counter when a registry is attached."""
        if self.metrics is not None:
            self.metrics.counter(
                name, help_text, labels=tuple(sorted(labels))
            ).inc(n, **labels)

    # -- draining ------------------------------------------------------------

    def take(self):
        """Drain and return ``(spans, events)`` recorded so far.

        Open spans stay on the stack (they finish into the next batch), so
        draining between runs splits traces cleanly.
        """
        spans, self.finished = self.finished, []
        events, self.events = self.events, []
        return spans, events

    def __repr__(self):
        return (
            f"Tracer(open={len(self._stack)}, finished={len(self.finished)}, "
            f"events={len(self.events)}, started={self.spans_started})"
        )
