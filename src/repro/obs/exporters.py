"""Exporters: Prometheus text, Chrome-trace JSON, and the explain tree.

Three serializations of the same observability records:

* :func:`render_prometheus` — the registry (plus ad-hoc counter/gauge rows
  for :class:`~repro.engine.planner.ExecutionStats` and breaker states) in
  the Prometheus text exposition format v0.0.4, served by ``GET /metrics``;
* :func:`chrome_trace` / :func:`write_chrome_trace` — finished spans as
  ``chrome://tracing`` / Perfetto "trace event" JSON, one timeline row per
  query id, with tags and stats deltas in ``args`` (the ``--trace-out``
  artifact CI archives per benchmark run);
* :func:`render_span_tree` — the human tree ``repro eval --explain`` and
  ``Prepared.explain()`` print: durations, per-child share of the root,
  tags (strategy decisions, fallback reasons) and counter deltas.
"""

from __future__ import annotations

import json

from .metrics import Counter, Gauge, Histogram


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------


def _escape_label(value):
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(labels):
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value):
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _bound_label(bound):
    text = repr(float(bound))
    return text[:-2] if text.endswith(".0") else text


def render_prometheus(registry, extra=()):
    """Render *registry* (and *extra* rows) as Prometheus text v0.0.4.

    *extra* is an iterable of ``(name, kind, help, samples)`` where *kind*
    is ``"counter"`` or ``"gauge"`` and *samples* is a list of
    ``(labels dict, value)`` — how ``GET /metrics`` exports the engine's
    :class:`~repro.engine.planner.ExecutionStats` counters and the
    circuit-breaker states without forcing them through the registry.
    """
    lines = []
    for metric in registry:
        lines.append(f"# HELP {metric.name} {metric.help_text}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for labels, value in metric.samples():
                lines.append(
                    f"{metric.name}{_format_labels(labels)} {_format_value(value)}"
                )
        elif isinstance(metric, Histogram):
            for labels, cumulative, total_sum, total in metric.samples():
                for bound, count in zip(metric.buckets, cumulative):
                    bucket_labels = dict(labels, le=_bound_label(bound))
                    lines.append(
                        f"{metric.name}_bucket{_format_labels(bucket_labels)} "
                        f"{count}"
                    )
                inf_labels = dict(labels, le="+Inf")
                lines.append(
                    f"{metric.name}_bucket{_format_labels(inf_labels)} {total}"
                )
                lines.append(
                    f"{metric.name}_sum{_format_labels(labels)} "
                    f"{_format_value(total_sum)}"
                )
                lines.append(
                    f"{metric.name}_count{_format_labels(labels)} {total}"
                )
    for name, kind, help_text, samples in extra:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            lines.append(f"{name}{_format_labels(labels)} {_format_value(value)}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------


def chrome_trace(spans, events=()):
    """Spans/events as a Chrome trace-viewer ``traceEvents`` document.

    Load the written file in ``chrome://tracing`` or https://ui.perfetto.dev.
    Each query id gets its own ``tid`` (timeline row); spans are complete
    ("X") events with microsecond timestamps relative to the earliest span,
    and tracer events are instant ("i") marks.  Tags and stats deltas ride
    the ``args`` payload.
    """
    tids = {}

    def tid_for(query_id):
        key = query_id or "-"
        if key not in tids:
            tids[key] = len(tids) + 1
        return tids[key]

    base = min(
        [span.start for span in spans] + [event.ts for event in events],
        default=0.0,
    )
    trace_events = []
    for span in spans:
        args = {"span_id": span.span_id, "parent_id": span.parent_id}
        if span.query_id is not None:
            args["query_id"] = span.query_id
        if span.tags:
            args.update(span.tags)
        if span.stats_delta:
            args["stats"] = dict(span.stats_delta)
        trace_events.append(
            {
                "name": span.name,
                "cat": "arc",
                "ph": "X",
                "ts": round((span.start - base) * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "pid": 1,
                "tid": tid_for(span.query_id),
                "args": args,
            }
        )
    for event in events:
        args = {"parent_id": event.parent_id}
        if event.query_id is not None:
            args["query_id"] = event.query_id
        if event.tags:
            args.update(event.tags)
        trace_events.append(
            {
                "name": event.name,
                "cat": "arc",
                "ph": "i",
                "s": "t",
                "ts": round((event.ts - base) * 1e6, 3),
                "pid": 1,
                "tid": tid_for(event.query_id),
                "args": args,
            }
        )
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": f"query {query_id}"},
        }
        for query_id, tid in tids.items()
    ]
    return {"traceEvents": metadata + trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, spans, events=()):
    """Serialize :func:`chrome_trace` to *path*; returns the document."""
    document = chrome_trace(spans, events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
    return document


# ---------------------------------------------------------------------------
# Explain tree
# ---------------------------------------------------------------------------


def _format_tags(tags):
    return " ".join(f"{key}={value}" for key, value in tags.items())


def _format_delta(delta):
    inner = " ".join(f"{key}=+{value}" for key, value in sorted(delta.items()))
    return f"[{inner}]"


def render_span_tree(spans, events=(), *, file=None):
    """The explain tree: one block per root span, box-drawing children.

    Each line shows the phase, its duration, its share of the root span's
    wall time, its tags, and the ExecutionStats counters that moved inside
    it.  Events render as ``·`` marks under their parent span.
    """
    by_id = {span.span_id: span for span in spans}
    children = {}
    roots = []
    for span in spans:
        if span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    for event in events:
        if event.parent_id in by_id:
            children.setdefault(event.parent_id, []).append(event)

    def start_of(record):
        return record.start if isinstance(record, type(spans[0])) else record.ts

    lines = []

    def describe(record, root_duration):
        if hasattr(record, "duration_s"):  # a Span
            parts = [record.name, f"{record.duration_s * 1e3:.2f} ms"]
            if root_duration > 0 and record.duration_s is not None:
                parts.append(f"{record.duration_s / root_duration * 100:.0f}%")
            if record.tags:
                parts.append(_format_tags(record.tags))
            if record.stats_delta:
                parts.append(_format_delta(record.stats_delta))
            return "  ".join(parts)
        parts = [f"· {record.name}"]
        if record.tags:
            parts.append(_format_tags(record.tags))
        return "  ".join(parts)

    def walk(record, prefix, is_last, root_duration):
        connector = "└─ " if is_last else "├─ "
        lines.append(prefix + connector + describe(record, root_duration))
        kids = sorted(
            children.get(getattr(record, "span_id", None), []),
            key=lambda r: getattr(r, "start", getattr(r, "ts", 0.0)),
        )
        child_prefix = prefix + ("   " if is_last else "│  ")
        for index, kid in enumerate(kids):
            walk(kid, child_prefix, index == len(kids) - 1, root_duration)

    for root in sorted(roots, key=lambda s: s.start):
        header = [root.name, f"{root.duration_s * 1e3:.2f} ms"]
        if root.query_id is not None:
            header.append(f"query_id={root.query_id}")
        if root.tags:
            header.append(_format_tags(root.tags))
        if root.stats_delta:
            header.append(_format_delta(root.stats_delta))
        lines.append("  ".join(header))
        kids = sorted(
            children.get(root.span_id, []),
            key=lambda r: getattr(r, "start", getattr(r, "ts", 0.0)),
        )
        for index, kid in enumerate(kids):
            walk(kid, "", index == len(kids) - 1, root.duration_s)
    text = "\n".join(lines)
    if file is not None:
        print(text, file=file)
    return text
