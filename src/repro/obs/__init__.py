"""Observability: span tracing, phase metrics, and their exporters.

The package is dependency-free (stdlib only) and import-light so the
engine can be instrumented without cycles: engine and backend modules
duck-type ``evaluator.tracer`` / ``context.tracer`` (importing at most
the :data:`NULL_SPAN` no-op singleton) and guard every site with
``tracer is not None``.  Only the API layer (Session, serve, cli)
constructs :class:`Tracer` instances and calls the exporters.
"""

from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .tracer import DEFAULT_MAX_SPANS, NULL_SPAN, Event, Span, Tracer
from .exporters import (
    chrome_trace,
    render_prometheus,
    render_span_tree,
    write_chrome_trace,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_SPANS",
    "Counter",
    "Gauge",
    "Event",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "chrome_trace",
    "render_prometheus",
    "render_span_tree",
    "write_chrome_trace",
]
