"""Exception hierarchy for the ARC reference implementation.

Every user-visible failure raises a subclass of :class:`ArcError` so that
applications embedding the library can catch one base class.  The hierarchy
mirrors the pipeline stages: parsing, linking (name resolution), validation
(scoping / grouping / safety rules), and evaluation.
"""

from __future__ import annotations


class ArcError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ParseError(ArcError):
    """A textual modality (comprehension syntax, SQL, Datalog, ...) failed to parse.

    Attributes
    ----------
    message:
        Human-readable description of the failure.
    line, column:
        1-based position of the offending token when available.
    """

    def __init__(self, message, line=None, column=None):
        self.message = message
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(f"{message}{location}")


class LinkError(ArcError):
    """Name resolution failed: an identifier has no binding in any enclosing scope."""


class ValidationError(ArcError):
    """A structurally well-formed query violates ARC's semantic rules.

    Examples: a head attribute never assigned, an aggregation predicate in a
    scope without a grouping operator, an unsafe (non-range-restricted)
    query, or recursion through negation/aggregation.
    """


class EvaluationError(ArcError):
    """The evaluator could not compute a result (e.g. an external relation's
    access patterns cannot be satisfied from the bound attributes)."""


class SchemaError(ArcError):
    """A relation was used with the wrong attributes or a catalog lookup failed."""


class ConventionError(ArcError):
    """An operation is undefined under the active :class:`~repro.core.conventions.Conventions`."""


class OptionsError(ArcError):
    """Contradictory or malformed evaluation options.

    Raised by :class:`repro.api.EvalOptions` when a combination of options
    cannot be honored faithfully (e.g. ``planner=False`` together with
    ``backend=...`` — each selects an engine) instead of silently ignoring
    one of them.
    """


class RewriteError(ArcError):
    """A rewrite was requested that is not applicable (or not semantics-preserving)
    for the given query and conventions."""


class ResourceError(ArcError):
    """An execution resource limit (deadline or budget) was exceeded.

    Raised by the stride-counted checks the evaluation tiers perform when a
    :class:`repro.util.deadline.Deadline` is armed.  The limit is a policy
    the caller configured (:class:`repro.api.EvalOptions` ``timeout_ms`` /
    ``max_rows``), so hitting it is a *bounded-failure answer*, not an
    engine defect — ``repro serve`` maps the two subclasses onto
    408/413-style JSON responses.
    """


class QueryTimeout(ResourceError):
    """The query ran past its configured deadline (``timeout_ms``)."""


class BudgetExceeded(ResourceError):
    """The query produced more rows than its budget allows (``max_rows``)."""


class WorkerCrash(ArcError):
    """A pool worker thread died while executing this request.

    Raised *to the waiting caller* by the worker pool's supervisor when an
    exception escapes a worker's job loop (e.g. an injected
    ``pool.worker`` failpoint).  The pool respawns the worker with a fresh
    Session, so the crash costs one request, never capacity — ``repro
    serve`` maps this to a 500 and keeps serving.
    """


class PoisonQuery(ArcError):
    """A request fingerprint is quarantined after killing too many workers.

    The worker pool attributes each worker death to the request that was
    executing; a fingerprint that reaches the configured kill threshold is
    refused at admission for a TTL instead of taking down more capacity.
    ``repro serve`` maps this to a typed 422; ``retry_after_s`` (when set)
    is the remaining quarantine TTL the response advertises.
    """

    def __init__(self, message, *, retry_after_s=None):
        super().__init__(message)
        self.retry_after_s = retry_after_s
