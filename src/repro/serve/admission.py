"""Admission control: the typed refusal a saturated server answers with.

The worker pool bounds its job queue; when the queue is full the server
must refuse *immediately* with a retriable, typed error instead of
buffering unboundedly (which converts overload into latency for every
queued client and memory growth for the server).  The HTTP front end maps
:class:`AdmissionError` to its :attr:`~AdmissionError.status` — **429**
with a ``Retry-After`` header for a full queue, **503** while draining —
and the JSON body carries ``error_type: "AdmissionError"`` so clients can
branch on it the same way they do for ``QueryTimeout``/``BudgetExceeded``.
"""

from __future__ import annotations

from ..errors import ResourceError

#: Seconds a 429 response advises the client to wait before retrying.
#: Deliberately small: admission refusals are instantaneous (nothing was
#: executed), so a refused client re-enters the queue race quickly.
RETRY_AFTER_S = 1


class AdmissionError(ResourceError):
    """The server refused to enqueue a request (queue full or draining).

    ``status`` is the HTTP status the serving layer should answer with:
    429 (retriable; the queue may drain any moment) or 503 (the server is
    shutting down and will not accept again).  ``retriable`` mirrors that
    distinction for non-HTTP callers.
    """

    def __init__(self, message, *, status=429):
        super().__init__(message)
        self.status = status

    @property
    def retriable(self):
        return self.status == 429
