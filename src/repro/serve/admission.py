"""Admission control: the typed refusal a saturated server answers with.

The worker pool bounds its job queue; when the queue is full the server
must refuse *immediately* with a retriable, typed error instead of
buffering unboundedly (which converts overload into latency for every
queued client and memory growth for the server).  The HTTP front end maps
:class:`AdmissionError` to its :attr:`~AdmissionError.status` — **429**
for a full queue or a shed request, **503** while draining — and every
refusal carries a ``Retry-After`` header from
:attr:`~AdmissionError.retry_after_s`; the JSON body carries
``error_type: "AdmissionError"`` so clients can branch on it the same way
they do for ``QueryTimeout``/``BudgetExceeded``.

Deadline-aware shedding refines the queue-full refusal: the pool
estimates queue wait from a rolling per-worker service-time EWMA and
refuses a request whose ``timeout_ms`` budget would already be spent
before dispatch — that 429's ``retry_after_s`` is the wait estimate
itself, so well-behaved clients back off for exactly as long as the
backlog needs to clear.
"""

from __future__ import annotations

from ..errors import ResourceError

#: Seconds a 429 response advises the client to wait before retrying.
#: Deliberately small: admission refusals are instantaneous (nothing was
#: executed), so a refused client re-enters the queue race quickly.
RETRY_AFTER_S = 1


class AdmissionError(ResourceError):
    """The server refused to enqueue a request (queue full or draining).

    ``status`` is the HTTP status the serving layer should answer with:
    429 (retriable; the queue may drain any moment) or 503 (the server is
    shutting down and will not accept again).  ``retriable`` mirrors that
    distinction for non-HTTP callers.  ``retry_after_s`` is the advised
    backoff the ``Retry-After`` response header carries — the default for
    instantaneous refusals, or the pool's queue-wait estimate for shed
    requests.
    """

    def __init__(self, message, *, status=429, retry_after_s=RETRY_AFTER_S):
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s

    @property
    def retriable(self):
        return self.status == 429
