"""A closed-loop HTTP load generator for the serve benchmarks (stdlib only).

Closed-loop means each client thread keeps exactly one request in flight:
it sends, waits for the full response, records the latency, and sends the
next — so offered load self-regulates to the server's capacity and the
measured RPS *is* throughput (open-loop generators need coordinated-
omission correction; this one does not).  Clients hold persistent
``http.client`` connections (HTTP/1.1 keep-alive), start together on a
barrier, and each walks its own payload, so worker-scaling runs can give
every client a distinct query while coalescing runs give them the same
one.

Used by ``benchmarks/bench_e29_load.py`` (RPS + p50/p99 vs worker count)
and the concurrency tests; nothing here imports the engine, so the
generator can drive an out-of-process server.
"""

from __future__ import annotations

import http.client
import threading
import time
from urllib.parse import urlsplit


def percentile(sorted_values, q):
    """The q-quantile (0..1) of *sorted_values* by linear interpolation."""
    if not sorted_values:
        return None
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = q * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = rank - low
    return sorted_values[low] + (sorted_values[high] - sorted_values[low]) * fraction


class LoadSummary:
    """What one load run measured."""

    __slots__ = (
        "requests", "errors", "wall_s", "rps", "p50_ms", "p99_ms",
        "statuses", "coalesced",
    )

    def __init__(self, *, requests, errors, wall_s, latencies_s, statuses,
                 coalesced):
        self.requests = requests
        self.errors = errors
        self.wall_s = wall_s
        self.rps = requests / wall_s if wall_s > 0 else 0.0
        ordered = sorted(latencies_s)
        p50 = percentile(ordered, 0.50)
        p99 = percentile(ordered, 0.99)
        self.p50_ms = None if p50 is None else p50 * 1e3
        self.p99_ms = None if p99 is None else p99 * 1e3
        #: status code -> count across every request.
        self.statuses = statuses
        #: responses carrying ``X-Arc-Coalesced`` (answered by a leader).
        self.coalesced = coalesced

    def as_dict(self):
        return {
            "requests": self.requests,
            "errors": self.errors,
            "wall_s": round(self.wall_s, 6),
            "rps": round(self.rps, 2),
            "p50_ms": None if self.p50_ms is None else round(self.p50_ms, 3),
            "p99_ms": None if self.p99_ms is None else round(self.p99_ms, 3),
            "statuses": dict(sorted(self.statuses.items())),
            "coalesced": self.coalesced,
        }

    def __repr__(self):
        return (
            f"LoadSummary(rps={self.rps:.1f}, p50={self.p50_ms}, "
            f"p99={self.p99_ms}, errors={self.errors})"
        )


class _Client(threading.Thread):
    """One closed-loop client: send, await, record, repeat."""

    def __init__(self, index, host, port, path, payload, requests,
                 barrier, timeout_s):
        super().__init__(name=f"loadgen-{index}", daemon=True)
        self.host, self.port, self.path = host, port, path
        self.payload = payload
        self.requests = requests
        self.barrier = barrier
        self.timeout_s = timeout_s
        self.latencies = []
        self.statuses = {}
        self.coalesced = 0
        self.errors = 0
        self.started_at = None
        self.finished_at = None

    def _connect(self):
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )

    def run(self):
        conn = self._connect()
        headers = {"Content-Type": "application/json"}
        self.barrier.wait()
        self.started_at = time.perf_counter()
        for _ in range(self.requests):
            start = time.perf_counter()
            try:
                conn.request("POST", self.path, self.payload, headers)
                response = conn.getresponse()
                body = response.read()
                status = response.status
                if response.getheader("X-Arc-Coalesced"):
                    self.coalesced += 1
            except (OSError, http.client.HTTPException):
                # Count the failure, then reconnect: a broken keep-alive
                # connection must not sink the rest of the run.
                self.errors += 1
                try:
                    conn.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass
                conn = self._connect()
                continue
            self.latencies.append(time.perf_counter() - start)
            self.statuses[status] = self.statuses.get(status, 0) + 1
            if status >= 400 or not body:
                self.errors += 1
        self.finished_at = time.perf_counter()
        conn.close()


def run_load(url, payloads, *, clients=4, requests_per_client=50,
             timeout_s=30.0):
    """Drive ``POST {url}/query`` closed-loop; a :class:`LoadSummary`.

    *payloads* is a list of pre-encoded JSON request bodies; client *i*
    sends ``payloads[i % len(payloads)]`` for every one of its requests.
    Pass one payload to measure coalescing, ``clients`` distinct payloads
    to measure worker scaling.
    """
    if not payloads:
        raise ValueError("run_load needs at least one payload")
    parts = urlsplit(url)
    host, port = parts.hostname, parts.port or 80
    path = (parts.path.rstrip("/") or "") + "/query"
    barrier = threading.Barrier(clients)
    pool = [
        _Client(
            index, host, port, path,
            payloads[index % len(payloads)],
            requests_per_client, barrier, timeout_s,
        )
        for index in range(clients)
    ]
    for client in pool:
        client.start()
    for client in pool:
        client.join()
    latencies = []
    statuses = {}
    errors = coalesced = 0
    for client in pool:
        latencies.extend(client.latencies)
        errors += client.errors
        coalesced += client.coalesced
        for status, count in client.statuses.items():
            statuses[status] = statuses.get(status, 0) + count
    started = min(c.started_at for c in pool if c.started_at is not None)
    finished = max(c.finished_at for c in pool if c.finished_at is not None)
    return LoadSummary(
        requests=clients * requests_per_client,
        errors=errors,
        wall_s=finished - started,
        latencies_s=latencies,
        statuses=statuses,
        coalesced=coalesced,
    )
