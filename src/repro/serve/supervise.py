"""Poison-query quarantine: stop a worker-killing request from eating the pool.

The pool's supervisor attributes every worker death to the request that
was executing when the thread died (see
:meth:`repro.serve.pool.WorkerPool._on_worker_death`).  One crash is
noise — the worker respawns and the caller gets a typed
:class:`~repro.errors.WorkerCrash`.  But the *same request* killing
workers repeatedly is a poison query: retried by a well-meaning client it
would grind every respawned worker down in turn.  The :class:`Quarantine`
counts kills per request **fingerprint** and, at the threshold (default
2), blocks the fingerprint at admission for a TTL — the serving layer
answers a typed 422 :class:`~repro.errors.PoisonQuery` while unrelated
requests keep executing on the respawned capacity.

Fingerprints hash the semantic identity of a request — catalog, query
text, frontend, backend — and deliberately exclude the budget fields:
retrying a crasher with a different ``timeout_ms`` is the same poison.
Release is lazy: the first admission check after the TTL expires drops
the entry (and its kill count — the query earns a clean slate), so no
background thread is needed.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time

#: Worker deaths attributed to one fingerprint before it is quarantined.
DEFAULT_POISON_THRESHOLD = 2

#: Seconds a quarantined fingerprint stays blocked before lazy release.
DEFAULT_QUARANTINE_TTL_S = 300.0


def poison_fingerprint(catalog, query, frontend, backend):
    """A stable hex fingerprint of a request's semantic identity.

    Budget fields (``timeout_ms`` / ``max_rows``) are excluded on
    purpose: they change what the request is *allowed* to cost, not what
    it executes.
    """
    blob = json.dumps(
        [catalog, query, frontend, backend], sort_keys=True
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


class Quarantine:
    """Kill counts and TTL-blocked fingerprints (thread-safe).

    ``note_kill`` is called by the supervisor on the dying worker's
    thread; ``blocked`` is called at admission under the pool lock.  The
    quarantine takes only its own lock and never calls back into the
    pool, so the pool-lock → quarantine-lock order can't deadlock.
    """

    def __init__(self, threshold=DEFAULT_POISON_THRESHOLD,
                 ttl_s=DEFAULT_QUARANTINE_TTL_S, *, clock=time.monotonic):
        self.threshold = max(1, threshold)
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        self._kills = {}    # fingerprint -> worker deaths attributed
        self._blocked = {}  # fingerprint -> monotonic expiry
        #: Fingerprints ever quarantined / released (monotonic counters).
        self.quarantined_total = 0
        self.released_total = 0

    def note_kill(self, fingerprint):
        """Attribute one worker death; True when this kill quarantines."""
        if fingerprint is None:
            return False
        with self._lock:
            kills = self._kills.get(fingerprint, 0) + 1
            self._kills[fingerprint] = kills
            if kills >= self.threshold and fingerprint not in self._blocked:
                self._blocked[fingerprint] = self._clock() + self.ttl_s
                self.quarantined_total += 1
                return True
        return False

    def blocked(self, fingerprint):
        """Remaining quarantine seconds for *fingerprint*, or None.

        Expired entries release lazily here: the fingerprint and its kill
        count both drop, so a released query must re-offend
        ``threshold`` times before it is quarantined again.
        """
        if fingerprint is None:
            return None
        with self._lock:
            expiry = self._blocked.get(fingerprint)
            if expiry is None:
                return None
            remaining = expiry - self._clock()
            if remaining <= 0:
                del self._blocked[fingerprint]
                self._kills.pop(fingerprint, None)
                self.released_total += 1
                return None
            return remaining

    def snapshot(self):
        """The ``/stats`` quarantine block (lazily releasing the expired)."""
        with self._lock:
            fingerprints = list(self._blocked)
        for fingerprint in fingerprints:
            self.blocked(fingerprint)  # drop the expired
        with self._lock:
            now = self._clock()
            entries = [
                {
                    "fingerprint": fingerprint,
                    "remaining_s": round(expiry - now, 3),
                }
                for fingerprint, expiry in sorted(self._blocked.items())
            ]
            return {
                "size": len(self._blocked),
                "threshold": self.threshold,
                "ttl_s": self.ttl_s,
                "quarantined_total": self.quarantined_total,
                "released_total": self.released_total,
                "entries": entries,
            }

    def __len__(self):
        with self._lock:
            return len(self._blocked)

    def __repr__(self):
        return (
            f"Quarantine(size={len(self)}, threshold={self.threshold}, "
            f"ttl_s={self.ttl_s})"
        )
