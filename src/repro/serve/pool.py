"""The worker pool: fixed threads, each owning private warm Sessions.

A :class:`~repro.api.Session` is not thread-safe, so the pool never
shares one: each worker thread owns a bounded :class:`SessionLRU` of
Sessions (one per catalog it has served), built by a
:class:`SessionFactory` from the catalog map.  Worker Sessions use
**private** SQLite connections (``private_connections=True``) so N
workers execute on N connections instead of serializing on the
process-wide fingerprint cache; evicting a Session closes its
connections.

Jobs are plain callables ``fn(worker) -> result`` submitted through a
**bounded** queue.  :meth:`WorkerPool.submit` never blocks: a full queue
raises :class:`~repro.serve.admission.AdmissionError` (HTTP 429) and a
draining pool raises it with status 503 — overload is refused at the
door, not buffered.  :meth:`WorkerPool.drain` implements graceful
shutdown: stop admitting, let every queued and in-flight job finish,
then join the workers and close their Sessions.  The drain flag flips
under the same lock ``submit`` enqueues under and the stop sentinels go
to the queue *tail*, so no accepted job is ever abandoned behind a
sentinel.

Observability: the pool exports busy-worker and queue-depth gauges,
per-worker handled counts, and (when given a registry) an
``arc_worker_seconds`` histogram labelled by worker index.
"""

from __future__ import annotations

import queue
import threading
from collections import OrderedDict

from ..core.conventions import SET_CONVENTIONS
from .admission import AdmissionError

#: Default worker count for ``repro serve`` (the CLI flag overrides).
DEFAULT_WORKERS = 4

#: Default bound on queued-but-not-started jobs before 429 refusals.
DEFAULT_QUEUE_DEPTH = 64

#: Warm Sessions a worker retains per catalog before evicting (LRU).
DEFAULT_SESSION_LIMIT = 4

#: Default catalog name when ``POST /query`` omits the ``catalog`` field.
DEFAULT_CATALOG = "default"

_STOP = object()  # queue sentinel: one per worker, enqueued only by drain()


class Future:
    """The pending result of a submitted job (one-shot, thread-safe)."""

    __slots__ = ("_done", "_result", "_error")

    def __init__(self):
        self._done = threading.Event()
        self._result = None
        self._error = None

    def set_result(self, result):
        self._result = result
        self._done.set()

    def set_error(self, error):
        self._error = error
        self._done.set()

    def wait(self, timeout=None):
        """The job's return value; re-raises what the job raised.

        Raises :class:`TimeoutError` if the job has not finished within
        *timeout* seconds (it keeps running — the pool never abandons an
        accepted job).
        """
        if not self._done.wait(timeout):
            raise TimeoutError("job did not complete in time")
        if self._error is not None:
            raise self._error
        return self._result

    def done(self):
        return self._done.is_set()


class SessionFactory:
    """Builds warm, pool-owned Sessions from a named-catalog map.

    *catalogs* maps catalog name → :class:`~repro.data.database.Database`;
    *default* names the catalog requests get when they don't ask for one.
    Sessions built here use private SQLite connections (each worker
    executes on its own connection) and, when *metrics* is given, a
    metrics-only tracer feeding the shared registry — per-phase latency
    histograms aggregate across workers while span records are dropped.
    """

    def __init__(self, catalogs, conventions=SET_CONVENTIONS, *,
                 externals=None, options=None, default=DEFAULT_CATALOG,
                 metrics=None, private_connections=True):
        if default not in catalogs:
            raise LookupError(
                f"default catalog {default!r} missing from "
                f"{sorted(catalogs)}"
            )
        self.catalogs = dict(catalogs)
        self.conventions = conventions
        self.externals = externals
        self.options = options
        self.default = default
        self.metrics = metrics
        self.private_connections = private_connections

    @classmethod
    def from_session(cls, session, *, metrics=None, catalogs=None,
                     default=DEFAULT_CATALOG):
        """A factory whose default catalog is *session*'s database.

        Extra named *catalogs* (name → Database) extend the map for
        multi-catalog serving.
        """
        full = {default: session.database}
        if catalogs:
            full.update(catalogs)
        return cls(
            full,
            session.conventions,
            externals=session.externals,
            options=session.options,
            default=default,
            metrics=metrics,
        )

    def names(self):
        return sorted(self.catalogs)

    def has(self, name):
        return name in self.catalogs

    def build(self, catalog=None):
        """A fresh Session over *catalog* (default catalog when None)."""
        from ..api.session import Session

        name = self.default if catalog is None else catalog
        try:
            database = self.catalogs[name]
        except KeyError:
            raise LookupError(
                f"unknown catalog {name!r}; choose from {self.names()}"
            ) from None
        session = Session(
            database,
            self.conventions,
            externals=self.externals,
            options=self.options,
            private_connections=self.private_connections,
        )
        if self.metrics is not None:
            from ..obs import Tracer

            session.tracer = Tracer(metrics=self.metrics, keep_spans=False)
        return session


class SessionLRU:
    """A bounded catalog-name → Session map; eviction closes the Session.

    Owned by exactly one worker thread — lookups need no lock.  Mutations
    (insert/evict) happen under *lock* only so that observers (``/stats``
    aggregation on handler threads) can take consistent snapshots.
    """

    __slots__ = ("factory", "limit", "evicted", "_sessions", "_lock")

    def __init__(self, factory, limit=DEFAULT_SESSION_LIMIT, *, lock=None):
        self.factory = factory
        self.limit = max(1, limit)
        self.evicted = 0
        self._sessions = OrderedDict()
        self._lock = lock if lock is not None else threading.Lock()

    def get(self, catalog=None):
        """The (possibly freshly built) Session for *catalog*."""
        name = self.factory.default if catalog is None else catalog
        session = self._sessions.get(name)
        if session is not None:
            self._sessions.move_to_end(name)
            return session
        session = self.factory.build(name)
        victims = []
        with self._lock:
            self._sessions[name] = session
            while len(self._sessions) > self.limit:
                _, victim = self._sessions.popitem(last=False)
                victims.append(victim)
                self.evicted += 1
        # Closing outside the lock: eviction closes private SQLite
        # connections, which must not block snapshot readers.
        for victim in victims:
            victim.close()
        return session

    def adopt(self, name, session):
        """Install an externally built Session (the server's warm one)."""
        with self._lock:
            self._sessions[name] = session

    def snapshot(self):
        """A consistent (name, Session) list for cross-thread readers."""
        with self._lock:
            return list(self._sessions.items())

    def close(self):
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()

    def __len__(self):
        with self._lock:
            return len(self._sessions)


class Worker:
    """One pool thread's identity and warm state."""

    __slots__ = ("index", "sessions", "handled", "pool")

    def __init__(self, index, pool, session_limit):
        self.index = index
        self.pool = pool
        self.sessions = SessionLRU(
            pool.factory, session_limit, lock=pool._lock
        )
        #: Jobs this worker completed (written by the worker thread only).
        self.handled = 0

    def session_for(self, catalog=None):
        """The worker-private Session for *catalog* (LRU, builds on miss)."""
        before = self.sessions.evicted
        session = self.sessions.get(catalog)
        evicted = self.sessions.evicted - before
        if evicted:
            self.pool._note_evictions(evicted)
        return session


class WorkerPool:
    """Fixed worker threads draining a bounded job queue.

    *adopt* (optional) is a pre-built Session installed as worker 0's
    default-catalog Session — ``repro serve`` passes its warm control
    session so single-worker servers keep the exact session object tests
    and callers hold a reference to.
    """

    def __init__(self, factory, workers=1, queue_depth=DEFAULT_QUEUE_DEPTH,
                 *, session_limit=DEFAULT_SESSION_LIMIT, metrics=None,
                 adopt=None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.factory = factory
        self.queue_depth = max(1, queue_depth)
        self.queue = queue.Queue(maxsize=self.queue_depth)
        self.metrics = metrics
        self._lock = threading.Lock()
        self._draining = False
        self._drained = threading.Event()
        self.busy = 0
        self.jobs_completed = 0
        self.sessions_evicted = 0
        self.workers = [
            Worker(index, self, session_limit) for index in range(workers)
        ]
        if adopt is not None:
            self.workers[0].sessions.adopt(factory.default, adopt)
        self._histogram = None
        if metrics is not None:
            self._histogram = metrics.histogram(
                "arc_worker_seconds",
                "Job execution seconds per pool worker.",
                labels=("worker",),
            )
        self._threads = [
            threading.Thread(
                target=self._run, args=(worker,),
                name=f"repro-serve-worker-{worker.index}", daemon=True,
            )
            for worker in self.workers
        ]
        for thread in self._threads:
            thread.start()

    # -- submission --------------------------------------------------------

    def submit(self, fn):
        """Enqueue ``fn(worker)``; a :class:`Future` for its result.

        Never blocks.  Raises :class:`AdmissionError` with status 429
        when the queue is at capacity, status 503 once draining began.
        The drain check and the enqueue share one lock, so no job can
        slip in behind a stop sentinel.
        """
        future = Future()
        with self._lock:
            if self._draining:
                raise AdmissionError(
                    "server is draining and no longer accepts work",
                    status=503,
                )
            try:
                self.queue.put_nowait((fn, future))
            except queue.Full:
                raise AdmissionError(
                    f"job queue is full ({self.queue_depth} deep); "
                    "retry shortly",
                    status=429,
                ) from None
        return future

    # -- the worker loop ---------------------------------------------------

    def _run(self, worker):
        import time

        while True:
            item = self.queue.get()
            if item is _STOP:
                break
            fn, future = item
            with self._lock:
                self.busy += 1
            start = time.perf_counter()
            try:
                future.set_result(fn(worker))
            except BaseException as exc:  # noqa: BLE001 - delivered to waiter
                future.set_error(exc)
            finally:
                elapsed = time.perf_counter() - start
                worker.handled += 1
                with self._lock:
                    self.busy -= 1
                    self.jobs_completed += 1
                if self._histogram is not None:
                    self._histogram.observe(elapsed, worker=str(worker.index))

    # -- lifecycle ---------------------------------------------------------

    def drain(self):
        """Stop admitting, finish queued + in-flight jobs, stop workers.

        Blocks until every worker thread has exited and the worker
        Sessions are closed.  Idempotent: concurrent callers all block
        until the single drain completes.
        """
        with self._lock:
            first = not self._draining
            self._draining = True
        if first:
            # Sentinels go to the queue *tail*: FIFO guarantees every
            # already-accepted job runs before its worker sees one.
            for _ in self.workers:
                self.queue.put(_STOP)
            for thread in self._threads:
                thread.join()
            for worker in self.workers:
                worker.sessions.close()
            self._drained.set()
        else:
            self._drained.wait()

    @property
    def draining(self):
        with self._lock:
            return self._draining

    # -- observability -----------------------------------------------------

    def _note_evictions(self, n):
        with self._lock:
            self.sessions_evicted += n

    def depth(self):
        """Jobs queued but not yet started."""
        return self.queue.qsize()

    def saturated(self):
        """Whether a submission right now would be refused (queue full)."""
        return self.queue.qsize() >= self.queue_depth

    def snapshot(self):
        """Pool gauges for ``/stats`` and ``/healthz``."""
        with self._lock:
            busy = self.busy
            completed = self.jobs_completed
            evicted = self.sessions_evicted
        return {
            "workers": len(self.workers),
            "busy": busy,
            "queue_depth": self.queue.qsize(),
            "queue_capacity": self.queue_depth,
            "jobs_completed": completed,
            "sessions_evicted": evicted,
            "per_worker": [
                {
                    "worker": worker.index,
                    "handled": worker.handled,
                    "sessions": len(worker.sessions),
                }
                for worker in self.workers
            ],
        }

    def sessions(self):
        """Every live worker Session (for stats aggregation)."""
        result = []
        for worker in self.workers:
            for _, session in worker.sessions.snapshot():
                result.append(session)
        return result

    def __repr__(self):
        return (
            f"WorkerPool(workers={len(self.workers)}, "
            f"queue={self.queue.qsize()}/{self.queue_depth}, "
            f"busy={self.busy}, draining={self._draining})"
        )
