"""The worker pool: fixed threads, each owning private warm Sessions.

A :class:`~repro.api.Session` is not thread-safe, so the pool never
shares one: each worker thread owns a bounded :class:`SessionLRU` of
Sessions (one per catalog it has served), built by a
:class:`SessionFactory` from the catalog map.  Worker Sessions use
**private** SQLite connections (``private_connections=True``) so N
workers execute on N connections instead of serializing on the
process-wide fingerprint cache; evicting a Session closes its
connections.

Jobs are plain callables ``fn(worker) -> result`` submitted through a
**bounded** queue.  :meth:`WorkerPool.submit` never blocks: a full queue
raises :class:`~repro.serve.admission.AdmissionError` (HTTP 429) and a
draining pool raises it with status 503 — overload is refused at the
door, not buffered.  :meth:`WorkerPool.drain` implements graceful
shutdown: stop admitting, let every queued and in-flight job finish,
then join the workers and close their Sessions.  The drain flag flips
under the same lock ``submit`` enqueues under and the stop sentinels go
to the queue *tail*, so no accepted job is ever abandoned behind a
sentinel.

The pool is **self-healing** (PR 10):

* **Supervision** — an exception escaping a worker's job loop (fault
  injection: the ``pool.worker`` failpoint) no longer silently shrinks
  the pool.  The dying thread harvests its sessions' stats into the
  retired totals, answers the in-flight caller with a typed
  :class:`~repro.errors.WorkerCrash`, and respawns itself: the same
  :class:`Worker` slot gets a fresh :class:`SessionLRU` and a new
  thread, so capacity survives any crash (``workers_respawned``).
* **Poison quarantine** — each submitted job may carry a request
  *fingerprint*; a fingerprint whose jobs kill workers
  ``poison_threshold`` times is refused at admission with a typed
  :class:`~repro.errors.PoisonQuery` until its TTL lapses (see
  :mod:`repro.serve.supervise`).
* **Stuck-query watchdog** — a supervisor thread enforces each job's
  hard wall cap (``hard_timeout_ms``; default 10× the request's soft
  deadline, or :data:`DEFAULT_HARD_TIMEOUT_MS` for deadline-less
  requests) by cancelling the job's
  :class:`~repro.util.deadline.CancelToken` — cooperative interruption
  at the Deadline stride for in-process engines, and
  ``sqlite3.Connection.interrupt()`` for offloaded queries — so no
  request can pin a worker forever.
* **Deadline-aware shedding** — admission estimates queue wait from a
  rolling per-worker service-time EWMA and refuses (429) requests whose
  ``timeout_ms`` would already be spent queueing, with ``Retry-After``
  derived from the estimate; ``shed_threshold_ms`` optionally caps the
  estimated wait for deadline-less traffic too.

Observability: the pool exports busy-worker and queue-depth gauges,
per-worker handled counts, respawn/watchdog/shed counters, and (when
given a registry) an ``arc_worker_seconds`` histogram labelled by worker
index plus an ``arc_pool_service_ewma_ms`` gauge.
"""

from __future__ import annotations

import math
import queue
import threading
import time
from collections import OrderedDict

from ..core.conventions import SET_CONVENTIONS
from ..errors import PoisonQuery, WorkerCrash
from ..util import failpoints
from ..util.deadline import CancelToken
from .admission import AdmissionError
from .supervise import (
    DEFAULT_POISON_THRESHOLD,
    DEFAULT_QUARANTINE_TTL_S,
    Quarantine,
)

#: Default worker count for ``repro serve`` (the CLI flag overrides).
DEFAULT_WORKERS = 4

#: Default bound on queued-but-not-started jobs before 429 refusals.
DEFAULT_QUEUE_DEPTH = 64

#: Warm Sessions a worker retains per catalog before evicting (LRU).
DEFAULT_SESSION_LIMIT = 4

#: Default catalog name when ``POST /query`` omits the ``catalog`` field.
DEFAULT_CATALOG = "default"

#: Hard wall cap for requests with no soft deadline of their own (ms).
DEFAULT_HARD_TIMEOUT_MS = 10_000

#: Hard cap as a multiple of the request's soft deadline when no explicit
#: ``hard_timeout_ms`` is configured: the watchdog is a backstop for
#: queries that ignore their deadline, not a second, tighter deadline.
HARD_TIMEOUT_FACTOR = 10

#: How often the watchdog scans in-flight jobs for hard-cap breaches.
WATCHDOG_INTERVAL_S = 0.05

#: Smoothing factor for the rolling per-job service-time EWMA.
_EWMA_ALPHA = 0.2

_STOP = object()  # queue sentinel: one per worker, enqueued only by drain()


class Future:
    """The pending result of a submitted job (one-shot, thread-safe)."""

    __slots__ = ("_done", "_result", "_error")

    def __init__(self):
        self._done = threading.Event()
        self._result = None
        self._error = None

    def set_result(self, result):
        self._result = result
        self._done.set()

    def set_error(self, error):
        self._error = error
        self._done.set()

    def wait(self, timeout=None):
        """The job's return value; re-raises what the job raised.

        Raises :class:`TimeoutError` if the job has not finished within
        *timeout* seconds (it keeps running — the pool never abandons an
        accepted job).
        """
        if not self._done.wait(timeout):
            raise TimeoutError("job did not complete in time")
        if self._error is not None:
            raise self._error
        return self._result

    def done(self):
        return self._done.is_set()


class _Job:
    """One accepted unit of work plus the state supervision needs.

    ``fingerprint`` ties the job to the poison quarantine; ``cancel`` is
    the token the watchdog fires on a hard-cap breach; ``hard_deadline``
    (a ``time.perf_counter`` instant, set when execution starts) is what
    the watchdog compares against.
    """

    __slots__ = (
        "fn", "future", "fingerprint", "cancel",
        "hard_ms", "hard_deadline", "started",
    )

    def __init__(self, fn, future, *, fingerprint=None, cancel=None,
                 hard_ms=None):
        self.fn = fn
        self.future = future
        self.fingerprint = fingerprint
        self.cancel = cancel if cancel is not None else CancelToken()
        self.hard_ms = hard_ms
        self.hard_deadline = None  # set by the worker when the job starts
        self.started = None


class SessionFactory:
    """Builds warm, pool-owned Sessions from a named-catalog map.

    *catalogs* maps catalog name → :class:`~repro.data.database.Database`;
    *default* names the catalog requests get when they don't ask for one.
    Sessions built here use private SQLite connections (each worker
    executes on its own connection) and, when *metrics* is given, a
    metrics-only tracer feeding the shared registry — per-phase latency
    histograms aggregate across workers while span records are dropped.
    """

    def __init__(self, catalogs, conventions=SET_CONVENTIONS, *,
                 externals=None, options=None, default=DEFAULT_CATALOG,
                 metrics=None, private_connections=True):
        if default not in catalogs:
            raise LookupError(
                f"default catalog {default!r} missing from "
                f"{sorted(catalogs)}"
            )
        self.catalogs = dict(catalogs)
        self.conventions = conventions
        self.externals = externals
        self.options = options
        self.default = default
        self.metrics = metrics
        self.private_connections = private_connections

    @classmethod
    def from_session(cls, session, *, metrics=None, catalogs=None,
                     default=DEFAULT_CATALOG):
        """A factory whose default catalog is *session*'s database.

        Extra named *catalogs* (name → Database) extend the map for
        multi-catalog serving.
        """
        full = {default: session.database}
        if catalogs:
            full.update(catalogs)
        return cls(
            full,
            session.conventions,
            externals=session.externals,
            options=session.options,
            default=default,
            metrics=metrics,
        )

    def names(self):
        return sorted(self.catalogs)

    def has(self, name):
        return name in self.catalogs

    def build(self, catalog=None):
        """A fresh Session over *catalog* (default catalog when None)."""
        from ..api.session import Session

        name = self.default if catalog is None else catalog
        try:
            database = self.catalogs[name]
        except KeyError:
            raise LookupError(
                f"unknown catalog {name!r}; choose from {self.names()}"
            ) from None
        session = Session(
            database,
            self.conventions,
            externals=self.externals,
            options=self.options,
            private_connections=self.private_connections,
        )
        if self.metrics is not None:
            from ..obs import Tracer

            session.tracer = Tracer(metrics=self.metrics, keep_spans=False)
        return session


class SessionLRU:
    """A bounded catalog-name → Session map; eviction closes the Session.

    Owned by exactly one worker thread — lookups need no lock.  Mutations
    (insert/evict) happen under *lock* only so that observers (``/stats``
    aggregation on handler threads) can take consistent snapshots.
    """

    __slots__ = ("factory", "limit", "evicted", "_sessions", "_lock")

    def __init__(self, factory, limit=DEFAULT_SESSION_LIMIT, *, lock=None):
        self.factory = factory
        self.limit = max(1, limit)
        self.evicted = 0
        self._sessions = OrderedDict()
        self._lock = lock if lock is not None else threading.Lock()

    def get(self, catalog=None):
        """The (possibly freshly built) Session for *catalog*."""
        name = self.factory.default if catalog is None else catalog
        session = self._sessions.get(name)
        if session is not None:
            self._sessions.move_to_end(name)
            return session
        session = self.factory.build(name)
        victims = []
        with self._lock:
            self._sessions[name] = session
            while len(self._sessions) > self.limit:
                _, victim = self._sessions.popitem(last=False)
                victims.append(victim)
                self.evicted += 1
        # Closing outside the lock: eviction closes private SQLite
        # connections, which must not block snapshot readers.
        for victim in victims:
            victim.close()
        return session

    def adopt(self, name, session):
        """Install an externally built Session (the server's warm one)."""
        with self._lock:
            self._sessions[name] = session

    def snapshot(self):
        """A consistent (name, Session) list for cross-thread readers."""
        with self._lock:
            return list(self._sessions.items())

    def close(self):
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()

    def __len__(self):
        with self._lock:
            return len(self._sessions)


class Worker:
    """One pool thread's identity and warm state."""

    __slots__ = ("index", "sessions", "handled", "pool", "current")

    def __init__(self, index, pool, session_limit):
        self.index = index
        self.pool = pool
        self.sessions = SessionLRU(
            pool.factory, session_limit, lock=pool._lock
        )
        #: Jobs this worker completed (written by the worker thread only).
        self.handled = 0
        #: The in-flight :class:`_Job`, or None.  Written by the worker
        #: thread, read racily by the watchdog — attribute reads are
        #: atomic under the GIL, and the worst stale read cancels a token
        #: whose job already finished, which is harmless.
        self.current = None

    def session_for(self, catalog=None):
        """The worker-private Session for *catalog* (LRU, builds on miss)."""
        before = self.sessions.evicted
        session = self.sessions.get(catalog)
        evicted = self.sessions.evicted - before
        if evicted:
            self.pool._note_evictions(evicted)
        return session


class WorkerPool:
    """Fixed worker threads draining a bounded job queue.

    *adopt* (optional) is a pre-built Session installed as worker 0's
    default-catalog Session — ``repro serve`` passes its warm control
    session so single-worker servers keep the exact session object tests
    and callers hold a reference to.
    """

    def __init__(self, factory, workers=1, queue_depth=DEFAULT_QUEUE_DEPTH,
                 *, session_limit=DEFAULT_SESSION_LIMIT, metrics=None,
                 adopt=None, hard_timeout_ms=None, shed_threshold_ms=None,
                 poison_threshold=DEFAULT_POISON_THRESHOLD,
                 quarantine_ttl_s=DEFAULT_QUARANTINE_TTL_S,
                 watchdog_interval_s=WATCHDOG_INTERVAL_S):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.factory = factory
        self.queue_depth = max(1, queue_depth)
        self.queue = queue.Queue(maxsize=self.queue_depth)
        self.metrics = metrics
        self.hard_timeout_ms = hard_timeout_ms
        self.shed_threshold_ms = shed_threshold_ms
        self._lock = threading.Lock()
        self._draining = False
        self._drained = threading.Event()
        self.busy = 0
        self.jobs_completed = 0
        self.sessions_evicted = 0
        self.workers_respawned = 0
        self.watchdog_cancels = 0
        self.shed_total = 0
        #: Rolling EWMA of per-job service seconds (under ``_lock``).
        self.service_ewma_s = 0.0
        self._session_limit = session_limit
        #: Session stats harvested from crashed workers (under ``_lock``):
        #: ``{"stats": {...counter sums...}, "catalog_loads": n, ...}``.
        self._retired_stats = {}
        self._retired_cache = [0, 0, 0]  # catalog loads / hits / probe hits
        self.quarantine = Quarantine(
            threshold=poison_threshold, ttl_s=quarantine_ttl_s
        )
        self.workers = [
            Worker(index, self, session_limit) for index in range(workers)
        ]
        if adopt is not None:
            self.workers[0].sessions.adopt(factory.default, adopt)
        self._histogram = None
        self._respawn_counter = None
        self._watchdog_counter = None
        self._shed_counter = None
        self._quarantine_counter = None
        self._ewma_gauge = None
        if metrics is not None:
            self._histogram = metrics.histogram(
                "arc_worker_seconds",
                "Job execution seconds per pool worker.",
                labels=("worker",),
            )
            # inc(0) materializes a zero sample so these counters render
            # in /metrics before the first event — scrapers see the
            # series from the first scrape, not only after a crash.
            self._respawn_counter = metrics.counter(
                "arc_worker_respawns_total",
                "Pool workers respawned after a crash.",
            )
            self._respawn_counter.inc(0)
            self._watchdog_counter = metrics.counter(
                "arc_watchdog_cancels_total",
                "In-flight jobs cancelled by the hard-cap watchdog.",
            )
            self._watchdog_counter.inc(0)
            self._shed_counter = metrics.counter(
                "arc_shed_total",
                "Requests refused because the estimated queue wait "
                "exceeded their deadline budget.",
            )
            self._shed_counter.inc(0)
            self._quarantine_counter = metrics.counter(
                "arc_quarantined_total",
                "Request fingerprints quarantined as poison.",
            )
            self._quarantine_counter.inc(0)
            self._ewma_gauge = metrics.gauge(
                "arc_pool_service_ewma_ms",
                "Rolling EWMA of per-job service time, milliseconds.",
            )
            self._ewma_gauge.set(0.0)
        self._threads = [
            threading.Thread(
                target=self._run, args=(worker,),
                name=f"repro-serve-worker-{worker.index}", daemon=True,
            )
            for worker in self.workers
        ]
        for thread in self._threads:
            thread.start()
        self._watchdog_stop = threading.Event()
        self._watchdog_thread = threading.Thread(
            target=self._watchdog, args=(watchdog_interval_s,),
            name="repro-serve-watchdog", daemon=True,
        )
        self._watchdog_thread.start()

    # -- submission --------------------------------------------------------

    def submit(self, fn, *, timeout_ms=None, fingerprint=None, cancel=None):
        """Enqueue ``fn(worker)``; a :class:`Future` for its result.

        Never blocks.  Raises :class:`AdmissionError` with status 429
        when the queue is at capacity, status 503 once draining began.
        The drain check and the enqueue share one lock, so no job can
        slip in behind a stop sentinel.

        *timeout_ms* is the request's soft deadline, used twice: to size
        the job's hard wall cap (×:data:`HARD_TIMEOUT_FACTOR` unless the
        pool has an explicit ``hard_timeout_ms``) and for deadline-aware
        shedding — if the EWMA-estimated queue wait already exceeds the
        budget, the request is refused now (429 with the estimate as
        ``Retry-After``) instead of timing out after queueing.
        *fingerprint* (see :func:`~repro.serve.supervise.poison_fingerprint`)
        enables poison quarantine; a quarantined fingerprint raises
        :class:`~repro.errors.PoisonQuery`.  *cancel* lets the caller
        share the job's :class:`~repro.util.deadline.CancelToken`.
        """
        job = _Job(
            fn, Future(), fingerprint=fingerprint, cancel=cancel,
            hard_ms=self._hard_ms(timeout_ms),
        )
        with self._lock:
            if self._draining:
                raise AdmissionError(
                    "server is draining and no longer accepts work",
                    status=503,
                )
            if fingerprint is not None:
                remaining = self.quarantine.blocked(fingerprint)
                if remaining is not None:
                    raise PoisonQuery(
                        "this query is quarantined: it crashed "
                        f"{self.quarantine.threshold} worker(s); "
                        f"blocked for another {remaining:.0f} s",
                        retry_after_s=max(1, math.ceil(remaining)),
                    )
            wait_s = self._estimated_wait_locked()
            if wait_s > 0:
                if timeout_ms is not None and wait_s * 1000.0 >= timeout_ms:
                    self.shed_total += 1
                    if self._shed_counter is not None:
                        self._shed_counter.inc()
                    raise AdmissionError(
                        f"estimated queue wait {wait_s * 1000.0:.0f} ms "
                        f"exceeds the request's {timeout_ms} ms budget; "
                        "shed at admission",
                        status=429,
                        retry_after_s=max(1, math.ceil(wait_s)),
                    )
                if (timeout_ms is None and self.shed_threshold_ms is not None
                        and wait_s * 1000.0 > self.shed_threshold_ms):
                    self.shed_total += 1
                    if self._shed_counter is not None:
                        self._shed_counter.inc()
                    raise AdmissionError(
                        f"estimated queue wait {wait_s * 1000.0:.0f} ms "
                        f"exceeds the shed threshold "
                        f"({self.shed_threshold_ms} ms)",
                        status=429,
                        retry_after_s=max(1, math.ceil(wait_s)),
                    )
            try:
                self.queue.put_nowait(job)
            except queue.Full:
                raise AdmissionError(
                    f"job queue is full ({self.queue_depth} deep); "
                    "retry shortly",
                    status=429,
                ) from None
        return job.future

    def _hard_ms(self, timeout_ms):
        """The hard wall cap for a job with soft deadline *timeout_ms*."""
        if self.hard_timeout_ms is not None:
            return self.hard_timeout_ms
        if timeout_ms is not None:
            return timeout_ms * HARD_TIMEOUT_FACTOR
        return DEFAULT_HARD_TIMEOUT_MS

    def _estimated_wait_locked(self):
        """Estimated queue wait in seconds (caller holds ``_lock``)."""
        if self.service_ewma_s <= 0:
            return 0.0
        return self.queue.qsize() * self.service_ewma_s / len(self.workers)

    # -- the worker loop ---------------------------------------------------

    def _run(self, worker):
        while True:
            item = self.queue.get()
            if item is _STOP:
                break
            try:
                self._execute(worker, item)
            except BaseException as exc:  # noqa: BLE001 - worker is dying
                self._on_worker_death(worker, item, exc)
                return

    def _execute(self, worker, job):
        """Run one job.  Exceptions *from the job callable* go to its
        future; anything escaping this method is a worker crash and is
        handled by :meth:`_on_worker_death`."""
        with self._lock:
            self.busy += 1
        job.started = time.perf_counter()
        if job.hard_ms is not None:
            job.hard_deadline = job.started + job.hard_ms / 1000.0
        worker.current = job
        # The failpoint sits OUTSIDE the job's exception fence: an armed
        # ``pool.worker`` spec escapes to _run and kills this worker,
        # exactly like a real defect in the loop itself would.
        failpoints.hit("pool.worker")
        try:
            try:
                job.future.set_result(job.fn(worker))
            except BaseException as exc:  # noqa: BLE001 - to the waiter
                job.future.set_error(exc)
        finally:
            worker.current = None
        elapsed = time.perf_counter() - job.started
        worker.handled += 1
        with self._lock:
            self.busy -= 1
            self.jobs_completed += 1
            if self.service_ewma_s <= 0:
                self.service_ewma_s = elapsed
            else:
                self.service_ewma_s += _EWMA_ALPHA * (
                    elapsed - self.service_ewma_s
                )
            ewma = self.service_ewma_s
        if self._histogram is not None:
            self._histogram.observe(elapsed, worker=str(worker.index))
        if self._ewma_gauge is not None:
            self._ewma_gauge.set(round(ewma * 1e3, 3))

    def _on_worker_death(self, worker, job, exc):
        """The dying worker's last act: harvest, answer, respawn.

        Runs on the crashing thread.  Harvests the worker's session stats
        into the retired totals (so ``aggregate_stats`` never loses
        history), closes the sessions, answers the in-flight caller with
        a typed :class:`~repro.errors.WorkerCrash`, notes the kill
        against the job's fingerprint, and starts a replacement thread on
        the same :class:`Worker` slot with a fresh :class:`SessionLRU`.
        """
        worker.current = None
        harvested = []
        for name, session in worker.sessions.snapshot():
            harvested.append((name, self._harvest(session)))
        worker.sessions.close()
        worker.sessions = SessionLRU(
            self.factory, self._session_limit, lock=self._lock
        )
        with self._lock:
            self.busy -= 1  # _execute's increment; its decrement was skipped
            self.workers_respawned += 1
            for name, stats in harvested:
                self._merge_retired_locked(stats)
        if self._respawn_counter is not None:
            self._respawn_counter.inc()
        crash = WorkerCrash(
            f"worker {worker.index} died while executing this request "
            f"({type(exc).__name__}: {exc}); the pool respawned it"
        )
        crash.__cause__ = exc
        job.future.set_error(crash)
        if job.fingerprint is not None:
            if self.quarantine.note_kill(job.fingerprint):
                if self._quarantine_counter is not None:
                    self._quarantine_counter.inc()
        # The replacement thread reuses this Worker slot; during drain it
        # will consume the sentinel meant for its predecessor, so drain's
        # sentinel arithmetic still balances.  Start BEFORE registering:
        # drain() joins whatever _threads holds, and joining an unstarted
        # thread raises.  The dying thread (this one) stays alive past the
        # registration, so drain's join loop always re-snapshots and
        # picks the replacement up.
        replacement = threading.Thread(
            target=self._run, args=(worker,),
            name=f"repro-serve-worker-{worker.index}", daemon=True,
        )
        replacement.start()
        with self._lock:
            self._threads[worker.index] = replacement

    @staticmethod
    def _harvest(session):
        """A crashed worker Session's counters, as plain dicts."""
        return {
            "stats": dict(session.stats.as_dict()),
            "catalog_loads": session.catalog_loads,
            "catalog_hits": session.catalog_hits,
            "probe_hits": session.probe_hits,
        }

    def _merge_retired_locked(self, harvested):
        for key, value in harvested["stats"].items():
            self._retired_stats[key] = self._retired_stats.get(key, 0) + value
        self._retired_cache[0] += harvested["catalog_loads"]
        self._retired_cache[1] += harvested["catalog_hits"]
        self._retired_cache[2] += harvested["probe_hits"]

    def retired_stats(self):
        """Harvested (stats dict, cache triple) from crashed workers."""
        with self._lock:
            return dict(self._retired_stats), tuple(self._retired_cache)

    # -- the watchdog ------------------------------------------------------

    def _watchdog(self, interval_s):
        """Cancel any in-flight job past its hard wall cap.

        A cancelled token interrupts an armed SQLite connection
        immediately and trips the cooperative Deadline check at the next
        stride for in-process engines; the job then unwinds with
        ``QueryTimeout`` through the normal error path — the worker
        survives, only the runaway query dies.
        """
        while not self._watchdog_stop.wait(interval_s):
            now = time.perf_counter()
            for worker in self.workers:
                job = worker.current  # racy read; see Worker.current
                if job is None or job.hard_deadline is None:
                    continue
                if now < job.hard_deadline:
                    continue
                fired = job.cancel.cancel(
                    f"query exceeded the server's hard wall cap of "
                    f"{job.hard_ms} ms and was interrupted by the watchdog"
                )
                if fired:
                    with self._lock:
                        self.watchdog_cancels += 1
                    if self._watchdog_counter is not None:
                        self._watchdog_counter.inc()

    # -- lifecycle ---------------------------------------------------------

    def drain(self):
        """Stop admitting, finish queued + in-flight jobs, stop workers.

        Blocks until every worker thread has exited and the worker
        Sessions are closed.  Idempotent: concurrent callers all block
        until the single drain completes.
        """
        with self._lock:
            first = not self._draining
            self._draining = True
        if first:
            self._watchdog_stop.set()
            self._watchdog_thread.join()
            # Sentinels go to the queue *tail*: FIFO guarantees every
            # already-accepted job runs before its worker sees one.  A
            # worker that crashes mid-drain is respawned and its
            # replacement consumes the predecessor's sentinel, so one
            # sentinel per slot still stops every thread — but the
            # _threads list mutates under us, so join until stable.
            for _ in self.workers:
                self.queue.put(_STOP)
            while True:
                with self._lock:
                    threads = list(self._threads)
                for thread in threads:
                    thread.join()
                with self._lock:
                    if all(not t.is_alive() for t in self._threads):
                        break
            for worker in self.workers:
                worker.sessions.close()
            self._drained.set()
        else:
            self._drained.wait()

    @property
    def draining(self):
        with self._lock:
            return self._draining

    # -- observability -----------------------------------------------------

    def _note_evictions(self, n):
        with self._lock:
            self.sessions_evicted += n

    def depth(self):
        """Jobs queued but not yet started."""
        return self.queue.qsize()

    def saturated(self):
        """Whether a submission right now would be refused (queue full)."""
        return self.queue.qsize() >= self.queue_depth

    def snapshot(self):
        """Pool gauges for ``/stats`` and ``/healthz``."""
        with self._lock:
            busy = self.busy
            completed = self.jobs_completed
            evicted = self.sessions_evicted
            respawned = self.workers_respawned
            cancels = self.watchdog_cancels
            shed = self.shed_total
            ewma = self.service_ewma_s
            draining = self._draining
        return {
            "workers": len(self.workers),
            "busy": busy,
            "draining": draining,
            "queue_depth": self.queue.qsize(),
            "queue_capacity": self.queue_depth,
            "jobs_completed": completed,
            "sessions_evicted": evicted,
            "workers_respawned": respawned,
            "watchdog_cancels": cancels,
            "shed_total": shed,
            "service_ewma_ms": round(ewma * 1e3, 3),
            "per_worker": [
                {
                    "worker": worker.index,
                    "handled": worker.handled,
                    "sessions": len(worker.sessions),
                }
                for worker in self.workers
            ],
        }

    def sessions(self):
        """Every live worker Session (for stats aggregation)."""
        result = []
        for worker in self.workers:
            for _, session in worker.sessions.snapshot():
                result.append(session)
        return result

    def __repr__(self):
        return (
            f"WorkerPool(workers={len(self.workers)}, "
            f"queue={self.queue.qsize()}/{self.queue_depth}, "
            f"busy={self.busy}, draining={self._draining})"
        )
