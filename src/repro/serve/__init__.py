"""The concurrency subsystem behind ``repro serve``.

Four small, separately testable pieces that together turn the service
mode into a worker-pool server:

* :mod:`~repro.serve.pool` — a fixed pool of worker threads, each owning
  its own warm :class:`~repro.api.Session` state (per-worker prepared
  LRUs, private SQLite connections, stats) built by a
  :class:`~repro.serve.pool.SessionFactory`, with a bounded per-worker
  :class:`~repro.serve.pool.SessionLRU` keyed by catalog name for
  multi-catalog serving;
* :mod:`~repro.serve.coalesce` — an in-flight request coalescer
  (singleflight): N concurrent identical requests fold into one
  execution whose byte-identical response fans back out;
* :mod:`~repro.serve.admission` — typed admission-control errors
  (bounded queue full / shed → 429 + ``Retry-After``, draining → 503);
* :mod:`~repro.serve.supervise` — poison-query quarantine state (request
  fingerprints, kill counts, TTL) behind the pool's self-healing;
* :mod:`~repro.serve.loadgen` — a closed-loop HTTP load generator
  (RPS + p50/p99 latency) used by ``benchmarks/bench_e29_load.py``.

The HTTP front end itself stays in :mod:`repro.api.serve`; this package
holds the transport-agnostic machinery under it.
"""

from .admission import RETRY_AFTER_S, AdmissionError
from .coalesce import Coalescer
from .loadgen import LoadSummary, percentile, run_load
from .pool import (
    DEFAULT_HARD_TIMEOUT_MS,
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_SESSION_LIMIT,
    DEFAULT_WORKERS,
    SessionFactory,
    SessionLRU,
    Worker,
    WorkerPool,
)
from .supervise import (
    DEFAULT_POISON_THRESHOLD,
    DEFAULT_QUARANTINE_TTL_S,
    Quarantine,
    poison_fingerprint,
)

__all__ = [
    "AdmissionError",
    "Coalescer",
    "DEFAULT_HARD_TIMEOUT_MS",
    "DEFAULT_POISON_THRESHOLD",
    "DEFAULT_QUARANTINE_TTL_S",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_SESSION_LIMIT",
    "DEFAULT_WORKERS",
    "LoadSummary",
    "Quarantine",
    "RETRY_AFTER_S",
    "SessionFactory",
    "SessionLRU",
    "Worker",
    "WorkerPool",
    "percentile",
    "poison_fingerprint",
    "run_load",
]
