"""In-flight request coalescing (singleflight).

When N identical requests are in flight at once, executing the query N
times is pure waste: PR 4 made response bodies **byte-identical** for
identical requests, so one execution's serialized body can answer all N.
The :class:`Coalescer` keys in-flight work on the full request identity —
``(catalog, query, frontend, backend, timeout_ms, max_rows)`` at the HTTP
layer — and folds followers onto the leader:

* the **first** caller to :meth:`Coalescer.join` a key becomes the
  *leader*: it executes the request and MUST :meth:`Coalescer.publish`
  the outcome (success or error) exactly once, **even if it crashes** —
  the serving layer publishes in a ``finally`` and substitutes a typed
  500 when the leader died before producing an outcome (exercised by the
  ``pool.leader`` failpoint), so followers are never stranded waiting on
  a flight whose leader is gone;
* every **subsequent** caller while that key is in flight becomes a
  *follower*: it blocks on the entry and receives the leader's outcome
  verbatim (the serving layer adds an ``X-Arc-Coalesced: 1`` header).

``publish`` removes the key *before* waking followers, so a request
arriving after publication starts a fresh flight — coalescing only ever
merges genuinely concurrent work and never serves stale results.

The coalescer stores outcomes opaquely; it never inspects them.  All
state transitions happen under one lock; the uncontended ``join`` is a
dict get + insert.
"""

from __future__ import annotations

import threading


class InFlight:
    """One in-flight execution: a latch plus the outcome it publishes."""

    __slots__ = ("outcome", "followers", "_done")

    def __init__(self):
        self.outcome = None
        self.followers = 0
        self._done = threading.Event()

    def wait(self, timeout=None):
        """Block until the leader publishes; the outcome, or None on timeout."""
        if not self._done.wait(timeout):
            return None
        return self.outcome

    def resolve(self, outcome):
        self.outcome = outcome
        self._done.set()


class Coalescer:
    """Fold concurrent identical requests into one execution."""

    def __init__(self):
        self._lock = threading.Lock()
        self._inflight = {}
        #: Requests answered from another request's execution (monotonic).
        self.coalesced_total = 0
        #: Leader flights started (monotonic) — for hit-rate accounting.
        self.flights_total = 0

    def join(self, key):
        """Enter the flight for *key*: ``(entry, leader)``.

        The leader executes and must ``publish(key, outcome)`` exactly
        once (use ``try/finally``); followers ``entry.wait(timeout)``.
        """
        with self._lock:
            entry = self._inflight.get(key)
            if entry is None:
                entry = self._inflight[key] = InFlight()
                self.flights_total += 1
                return entry, True
            entry.followers += 1
            self.coalesced_total += 1
            return entry, False

    def publish(self, key, outcome):
        """Resolve the flight for *key*, waking every follower.

        The key leaves the in-flight map before followers wake, so new
        arrivals start a fresh execution instead of reading a completed
        one.
        """
        with self._lock:
            entry = self._inflight.pop(key, None)
        if entry is not None:
            entry.resolve(outcome)

    @property
    def inflight(self):
        """Distinct keys currently executing."""
        with self._lock:
            return len(self._inflight)

    def __repr__(self):
        return (
            f"Coalescer(inflight={self.inflight}, "
            f"coalesced={self.coalesced_total})"
        )
