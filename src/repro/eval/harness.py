"""Execution-based differential evaluation over the scenario corpus.

Spider-style NL2SQL evaluation learned the hard way that string-matching
predicted SQL against gold SQL mismeasures both directions; the robust
protocol *executes* both and compares answers.  This harness applies that
protocol to the whole system: every (scenario, query, frontend, backend)
cell runs through the Session API, and the cell's verdict is the executed
result differenced against the reference oracle **for the same frontend's
AST** — so a failing cell localizes to the backend, while the separate
cross-frontend comparison (same query, different surface texts, oracle
only) localizes frontend drift.

Verdict vocabulary per cell:

* ``ok`` — the backend's answer equals the oracle's (bag-exact, via
  :meth:`Relation.__eq__`), or both raised the same typed error;
* ``typed_error`` — the run raised an :class:`~repro.errors.ArcError`
  subclass (a *named* refusal: timeout, budget, unsupported, …);
* ``mismatch`` — executed fine but the answer differs (the bug class this
  harness exists to catch);
* ``error`` — an untyped exception escaped (always a bug).

Each cell also records the native-vs-fallback verdict (``run_info``'s
explicit ``fallback_reasons`` channel), the static capability-probe
prediction (:func:`repro.backends.exec.probe_capabilities`), and per-phase
span timings from the session tracer, so the report doubles as coverage
accounting: which feature classes each backend runs natively, which it
refuses, and whether the probe's promises match observed dispatch.

The nl pipeline is scored on the same corpus by execution match: the
template pipeline's executed answer set-compared against the oracle of a
gold SQL text (``gold=None`` cases must be *refused* to count as matched).
"""

from __future__ import annotations

import json
import time

from ..api import EvalOptions, Session
from ..backends.exec import probe_capabilities, reset_breakers
from ..core.conventions import (
    SET_CONVENTIONS,
    SOUFFLE_CONVENTIONS,
    SQL_CONVENTIONS,
)
from ..data import NULL, Relation
from ..data.values import sort_key
from ..errors import ArcError
from ..nl.pipeline import Nl2ArcPipeline
from ..nl.templates import default_grammar
from ..obs import Tracer
from ..workloads.scenarios import SCENARIOS, get_scenario

CONVENTIONS = {
    "set": SET_CONVENTIONS,
    "sql": SQL_CONVENTIONS,
    "souffle": SOUFFLE_CONVENTIONS,
}

#: The full backend matrix every cell runs against.
DEFAULT_BACKENDS = ("reference", "planner", "sqlite")

#: Rows persisted per cell in the JSON report (full results stay in memory).
REPORT_ROW_CAP = 20

REPORT_VERSION = 1


# -- result normalization ----------------------------------------------------


def normalize_result(result, *, compare="bag", ndigits=9):
    """A canonical, frontend-agnostic form of an evaluation result.

    Frontends disagree on column *names* (``cid`` vs ``c``) but corpus
    queries pin column *order*, so rows normalize positionally in schema
    order: NULL becomes ``None``, floats round to *ndigits* (aggregate
    arithmetic differs across engines only in the last ulps), and the rows
    sort by the same total order :meth:`Relation.sorted_rows` uses.
    ``compare="set"`` collapses multiplicities first.  Truth values (from
    sentences) normalize to ``("truth", name)``.
    """
    if not isinstance(result, Relation):
        return ("truth", getattr(result, "name", str(result)))
    source = result.iter_distinct() if compare == "set" else iter(result)
    rows = [
        tuple(_normalize_value(row[attr], ndigits) for attr in result.schema)
        for row in source
    ]
    rows.sort(key=_row_sort_key)
    return ("rows", tuple(rows))


def _normalize_value(value, ndigits):
    if value is NULL:
        return None
    if isinstance(value, float):
        return round(value, ndigits)
    return value


def _row_sort_key(row):
    return tuple(sort_key(NULL if value is None else value) for value in row)


def results_agree(left, right, *, compare="bag", ndigits=9):
    """Execution-based comparison of two results (positional, normalized)."""
    return normalize_result(left, compare=compare, ndigits=ndigits) == (
        normalize_result(right, compare=compare, ndigits=ndigits)
    )


def result_rows(result, *, cap=None):
    """JSON-able row lists (schema order, NULL → null), capped for reports."""
    if not isinstance(result, Relation):
        return [[getattr(result, "name", str(result))]]
    rows = [
        [None if row[attr] is NULL else row[attr] for attr in result.schema]
        for row in result.sorted_rows()
    ]
    return rows if cap is None else rows[:cap]


# -- the differential runner -------------------------------------------------


class _SessionPool:
    """One warm Session per (backend, conventions) pair over one catalog."""

    def __init__(self, database, backends):
        self.database = database
        self.backends = backends
        self._sessions = {}

    def get(self, backend, conventions_name):
        key = (backend, conventions_name)
        session = self._sessions.get(key)
        if session is None:
            session = Session(
                self.database,
                CONVENTIONS[conventions_name],
                options=EvalOptions(backend=backend),
            )
            session.tracer = Tracer(stats=session.stats)
            self._sessions[key] = session
        return session


def _phase_timings(tracer):
    """Drain the tracer; total seconds per span name for the last run."""
    spans, _events = tracer.take()
    phases = {}
    for span in spans:
        phases[span.name] = phases.get(span.name, 0.0) + span.duration_s
    return phases


def _run_cell(pool, query, frontend, node, backend, oracle):
    """Evaluate one (query, frontend, backend) cell and difference it."""
    session = pool.get(backend, query.conventions)
    cell = {
        "query": query.name,
        "frontend": frontend,
        "backend": backend,
        "features": sorted(query.features),
        "native": None,
        "fallback_reasons": [],
        "status": None,
        "error_type": None,
        "error": None,
        "row_count": None,
        "elapsed_ms": None,
        "phases": {},
    }
    started = time.perf_counter()
    try:
        info = session.prepare(node, frontend=frontend).run_info()
    except ArcError as exc:
        cell["status"] = (
            "ok"
            if isinstance(oracle, Exception) and type(oracle) is type(exc)
            else "typed_error"
        )
        cell["error_type"] = type(exc).__name__
        cell["error"] = str(exc)
    except Exception as exc:  # pragma: no cover - always a harness finding
        cell["status"] = "error"
        cell["error_type"] = type(exc).__name__
        cell["error"] = str(exc)
    else:
        result = info["result"]
        cell["fallback_reasons"] = list(info["fallback_reasons"])
        cell["native"] = not cell["fallback_reasons"]
        if isinstance(oracle, Exception):
            # The oracle refused but this backend answered: a mismatch
            # unless the answer channel is irrelevant (it never is today).
            cell["status"] = "mismatch"
            cell["error"] = (
                f"oracle raised {type(oracle).__name__} but "
                f"{backend} returned rows"
            )
        else:
            equal = result == oracle
            cell["status"] = "ok" if equal else "mismatch"
            if isinstance(result, Relation):
                cell["row_count"] = sum(result.counter().values())
    cell["elapsed_ms"] = round((time.perf_counter() - started) * 1e3, 3)
    cell["phases"] = {
        name: round(seconds * 1e3, 3)
        for name, seconds in _phase_timings(session.tracer).items()
    }
    return cell


def _coverage(cells):
    """Native-vs-fallback accounting per backend, with a reason histogram."""
    coverage = {}
    for cell in cells:
        entry = coverage.setdefault(
            cell["backend"],
            {"cells": 0, "native": 0, "fallback": 0, "errors": 0, "reasons": {}},
        )
        entry["cells"] += 1
        if cell["native"] is True:
            entry["native"] += 1
        elif cell["native"] is False:
            entry["fallback"] += 1
        else:
            entry["errors"] += 1
        for reason in cell["fallback_reasons"]:
            entry["reasons"][reason] = entry["reasons"].get(reason, 0) + 1
    return coverage


def score_nl(scenario, database, *, oracle_session=None):
    """Execution-match accuracy of the nl pipeline on *scenario*'s cases.

    A gold-bearing case matches when the pipeline executes and its answer
    set-equals the oracle of the gold SQL; a ``gold=None`` case matches
    when the pipeline *refuses* (LookupError surfaced as ``error``), so
    grammar gaps are measured rather than skipped.
    """
    schema = scenario.nl_schema()
    cases = scenario.nl_cases()
    if schema is None or not cases:
        return None
    if oracle_session is None:
        oracle_session = Session(
            database, SQL_CONVENTIONS, options=EvalOptions(backend="reference")
        )
    pipeline = Nl2ArcPipeline(
        default_grammar(schema), database=database, conventions=SQL_CONVENTIONS
    )
    per_case = []
    matched = 0
    for case in cases:
        entry = {
            "request": case.request,
            "expected": "refusal" if case.gold is None else "execution-match",
            "matched_rule": None,
            "matched": False,
            "detail": None,
        }
        outcome = pipeline.run(case.request, execute=True)
        entry["matched_rule"] = outcome.matched_rule
        if case.gold is None:
            entry["matched"] = not outcome.ok
            entry["detail"] = outcome.error or "pipeline answered unexpectedly"
        elif not outcome.ok or outcome.result is None:
            entry["detail"] = outcome.error or "pipeline produced no result"
        else:
            try:
                gold = oracle_session.prepare(
                    case.gold, frontend=case.gold_frontend
                ).run()
            except ArcError as exc:  # a broken gold text is a corpus bug
                entry["detail"] = f"gold failed: {type(exc).__name__}: {exc}"
            else:
                entry["matched"] = results_agree(
                    outcome.result, gold, compare="set"
                )
                if not entry["matched"]:
                    entry["detail"] = "executed answer differs from gold"
        matched += entry["matched"]
        per_case.append(entry)
    gold_cases = [c for c in per_case if c["expected"] == "execution-match"]
    refusal_cases = [c for c in per_case if c["expected"] == "refusal"]
    gold_matched = sum(c["matched"] for c in gold_cases)
    return {
        "cases": len(cases),
        "matched": matched,
        "gold_cases": len(gold_cases),
        "gold_matched": gold_matched,
        # Execution-match accuracy counts only gold-bearing cases; expected
        # refusals are tracked separately so they cannot inflate it.
        "accuracy": (
            round(gold_matched / len(gold_cases), 4) if gold_cases else None
        ),
        "expected_refusals": len(refusal_cases),
        "refused_as_expected": sum(c["matched"] for c in refusal_cases),
        "per_case": per_case,
    }


def run_scenario(
    scenario,
    *,
    size="small",
    seed=0,
    backends=DEFAULT_BACKENDS,
    frontends=None,
    run_nl=True,
):
    """Run one scenario's full (query × frontend × backend) cell matrix."""
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    database = scenario.catalog(size=size, seed=seed)
    pool = _SessionPool(database, backends)
    cells = []
    queries = {}
    for query in scenario.queries():
        conventions = CONVENTIONS[query.conventions]
        oracle_session = pool.get("reference", query.conventions)
        per_frontend = {}
        parse_ms = {}
        probes = {}
        for frontend in query.frontends:
            if frontends is not None and frontend not in frontends:
                continue
            text = query.texts[frontend]
            started = time.perf_counter()
            node = oracle_session.prepare(text, frontend=frontend).node
            parse_ms[frontend] = round((time.perf_counter() - started) * 1e3, 3)
            try:
                oracle = oracle_session.prepare(node, frontend=frontend).run()
            except ArcError as exc:
                oracle = exc
            per_frontend[frontend] = oracle
            probes[frontend] = {
                name: list(reasons)
                for name, reasons in probe_capabilities(
                    node, database, conventions, backends=backends
                ).items()
            }
            _phase_timings(oracle_session.tracer)  # drain oracle spans
            for backend in backends:
                cells.append(
                    _run_cell(pool, query, frontend, node, backend, oracle)
                )
        # Cross-frontend equivalence under the oracle, normalized
        # positionally (column names differ by design across frontends).
        executed = {
            fe: normalize_result(res, compare=query.compare)
            for fe, res in per_frontend.items()
            if not isinstance(res, Exception)
        }
        forms = list(executed.values())
        agree = bool(forms) and all(form == forms[0] for form in forms)
        reference = next(iter(per_frontend.values()), None)
        queries[query.name] = {
            "description": query.description,
            "features": sorted(query.features),
            "frontends": sorted(per_frontend),
            "conventions": query.conventions,
            "compare": query.compare,
            "cross_frontend_agree": agree,
            "parse_ms": parse_ms,
            "probe_reasons": probes,
            "oracle_rows": (
                None
                if isinstance(reference, Exception)
                else result_rows(reference, cap=REPORT_ROW_CAP)
            ),
        }
    report = {
        "scenario": scenario.name,
        "description": scenario.description,
        "size": size,
        "seed": seed,
        "fingerprint": scenario.fingerprint(size=size, seed=seed),
        "catalog": {
            name: sum(database[name].counter().values())
            for name in database.names()
        },
        "queries": queries,
        "cells": cells,
        "coverage": _coverage(cells),
        "nl": score_nl(
            scenario, database, oracle_session=pool.get("reference", "sql")
        )
        if run_nl
        else None,
    }
    return report


def run_corpus(
    names=None,
    *,
    size="small",
    seed=0,
    backends=DEFAULT_BACKENDS,
    frontends=None,
    run_nl=True,
):
    """Run every named scenario (default: all) and assemble the report."""
    if names is None:
        names = list(SCENARIOS)
    reset_breakers()  # verdicts reflect capabilities, not prior failures
    scenario_reports = {}
    for name in names:
        scenario_reports[name] = run_scenario(
            name,
            size=size,
            seed=seed,
            backends=backends,
            frontends=frontends,
            run_nl=run_nl,
        )
    all_cells = [
        cell
        for report in scenario_reports.values()
        for cell in report["cells"]
    ]
    statuses = {"ok": 0, "typed_error": 0, "mismatch": 0, "error": 0}
    feature_cells = {}
    for cell in all_cells:
        statuses[cell["status"]] += 1
        for feature in cell["features"]:
            feature_cells[feature] = feature_cells.get(feature, 0) + 1
    nl_reports = {
        name: report["nl"]
        for name, report in scenario_reports.items()
        if report["nl"] is not None
    }
    nl_cases = sum(r["cases"] for r in nl_reports.values())
    nl_matched = sum(r["matched"] for r in nl_reports.values())
    nl_gold = sum(r["gold_cases"] for r in nl_reports.values())
    nl_gold_matched = sum(r["gold_matched"] for r in nl_reports.values())
    disagreements = [
        f"{name}:{qname}"
        for name, report in scenario_reports.items()
        for qname, qinfo in report["queries"].items()
        if not qinfo["cross_frontend_agree"]
    ]
    return {
        "version": REPORT_VERSION,
        "size": size,
        "seed": seed,
        "backends": list(backends),
        "frontends": sorted(
            {
                fe
                for report in scenario_reports.values()
                for qinfo in report["queries"].values()
                for fe in qinfo["frontends"]
            }
        ),
        "scenarios": scenario_reports,
        "summary": {
            "scenarios": len(scenario_reports),
            "queries": sum(
                len(report["queries"]) for report in scenario_reports.values()
            ),
            "cells": len(all_cells),
            **statuses,
            "cross_frontend_disagreements": disagreements,
            "coverage": _coverage(all_cells),
            "feature_cells": feature_cells,
            "nl": {
                "cases": nl_cases,
                "matched": nl_matched,
                "gold_cases": nl_gold,
                "gold_matched": nl_gold_matched,
                "accuracy": (
                    round(nl_gold_matched / nl_gold, 4) if nl_gold else None
                ),
            },
        },
    }


def report_failures(report):
    """Cells (and frontend disagreements) that should fail a gate.

    A ``typed_error`` is an accepted refusal; ``mismatch`` / ``error``
    cells and any cross-frontend disagreement are genuine failures.
    Accepts a corpus-level report (:func:`run_corpus`) or a single
    scenario report (:func:`run_scenario`).
    """
    scenario_reports = report.get("scenarios")
    if scenario_reports is None:
        scenario_reports = {report["scenario"]: report}
    failures = [
        f"{name}/{cell['query']}/{cell['frontend']}/{cell['backend']}: "
        f"{cell['status']} ({cell['error_type'] or 'wrong answer'})"
        for name, scenario_report in scenario_reports.items()
        for cell in scenario_report["cells"]
        if cell["status"] in ("mismatch", "error")
    ]
    failures.extend(
        f"cross-frontend disagreement: {name}:{qname}"
        for name, scenario_report in scenario_reports.items()
        for qname, qinfo in scenario_report["queries"].items()
        if not qinfo["cross_frontend_agree"]
    )
    return failures


def write_report(report, path):
    """Write the corpus report as deterministic, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
