"""Execution-based evaluation: the scenario-corpus differential harness."""

from .harness import (
    CONVENTIONS,
    DEFAULT_BACKENDS,
    normalize_result,
    report_failures,
    result_rows,
    results_agree,
    run_corpus,
    run_scenario,
    score_nl,
    write_report,
)

__all__ = [
    "CONVENTIONS",
    "DEFAULT_BACKENDS",
    "normalize_result",
    "report_failures",
    "result_rows",
    "results_agree",
    "run_corpus",
    "run_scenario",
    "score_nl",
    "write_report",
]
