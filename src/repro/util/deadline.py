"""Deadlines and row budgets: bounded execution for every tier.

A :class:`Deadline` is armed once per run (by
:meth:`repro.api.EvalOptions.deadline` via the Session) and threaded through
the evaluator, the planner's compiled-scope loops, the semi-naive fixpoint,
and the SQLite backend.  Latency bounds are treated as a correctness
property of the serving path: a query that cannot finish inside its budget
must *answer* with a typed error (:class:`~repro.errors.QueryTimeout` /
:class:`~repro.errors.BudgetExceeded`), never hang.

Two kinds of checks, tuned for hot loops:

* :meth:`tick` — called once per enumerated row in the execution loops.
  It only bumps a counter; every :data:`STRIDE` ticks it reads the
  monotonic clock and raises :class:`~repro.errors.QueryTimeout` past the
  deadline.  The common case is one integer add and one compare, so the
  guard stays well under the 5 % overhead ceiling the CI perf gate asserts
  on the E23 width-4 sweep.
* :meth:`count_rows` — called where result rows are *produced* (collection
  emission loops, fused grouped outputs, SQLite fetch chunks, fixpoint
  deltas).  Exceeding ``max_rows`` raises
  :class:`~repro.errors.BudgetExceeded` before the oversized result is
  fully materialized.  The budget bounds rows produced across all
  execution tiers — materialized intermediates included — so it is a
  resource budget, not an exact result-size predicate.

The clock is injectable for deterministic tests; :meth:`expired` is the
boolean form the SQLite progress handler polls.

A :class:`CancelToken` adds *external* interruption on the same rails: the
serving watchdog flips the token from its supervisor thread, and the very
next stride check (or SQLite progress callback) surfaces it as
:class:`~repro.errors.QueryTimeout` — no new check sites, no polling cost
beyond what deadlines already pay.  For queries offloaded to SQLite the
token also holds the executing connection and calls
``sqlite3.Connection.interrupt()``, so a runaway ``WITH RECURSIVE`` stops
mid-VM instead of at the next Python-level checkpoint.
"""

from __future__ import annotations

import threading
import time

from ..errors import BudgetExceeded, QueryTimeout

#: Ticks between monotonic-clock reads in the hot loops.  Small enough that
#: even ~1 ms/row pathological loops notice the deadline within a second;
#: large enough that the per-row cost is a counter bump.
STRIDE = 1024


class CancelToken:
    """A thread-safe one-shot cancellation flag with SQLite teeth.

    The canceller (the pool watchdog) calls :meth:`cancel` from its own
    thread; the running query observes it through the :class:`Deadline`
    it is attached to (``expired()`` turns True, ``check()`` raises
    :class:`~repro.errors.QueryTimeout` carrying *reason*).  While a query
    executes on SQLite, the backend arms the executing connection on the
    token so cancellation interrupts the VM immediately; arming after
    cancellation interrupts on the spot, closing the race where the
    watchdog fires between dispatch and execution.
    """

    __slots__ = ("reason", "_cancelled", "_conn", "_lock")

    def __init__(self):
        self.reason = None
        self._cancelled = False
        self._conn = None
        self._lock = threading.Lock()

    @property
    def cancelled(self):
        return self._cancelled

    def cancel(self, reason="cancelled"):
        """Flip the flag (idempotent); True only for the first caller.

        Interrupts the armed SQLite connection, if any.
        """
        with self._lock:
            if self._cancelled:
                return False
            self._cancelled = True
            self.reason = reason
            conn = self._conn
        if conn is not None:
            try:
                conn.interrupt()
            except Exception:  # pragma: no cover - conn may be closing
                pass
        return True

    def arm_connection(self, conn):
        """Point the token at the connection executing this query."""
        with self._lock:
            self._conn = conn
            fire = self._cancelled
        if fire:
            try:
                conn.interrupt()
            except Exception:  # pragma: no cover - conn may be closing
                pass

    def disarm_connection(self):
        with self._lock:
            self._conn = None

    def __repr__(self):
        return f"CancelToken(cancelled={self._cancelled}, reason={self.reason!r})"


class Deadline:
    """One run's deadline and row budget (either part optional).

    Parameters
    ----------
    timeout_ms:
        Wall-clock budget in milliseconds from construction, or None for
        no deadline.
    max_rows:
        Maximum rows the run may produce, or None for no budget.
    clock:
        Monotonic clock (seconds); injectable for deterministic tests.
    cancel:
        Optional :class:`CancelToken` observed by the same checks as the
        wall-clock deadline, so external interruption needs no new sites.
    """

    __slots__ = (
        "timeout_ms",
        "max_rows",
        "rows",
        "cancel",
        "_clock",
        "_started",
        "_expires",
        "_ops",
        "_next_check",
    )

    def __init__(self, timeout_ms=None, max_rows=None, *, clock=time.monotonic,
                 cancel=None):
        self.timeout_ms = timeout_ms
        self.max_rows = max_rows
        self.rows = 0
        self.cancel = cancel
        self._clock = clock
        self._started = clock()
        self._expires = (
            None if timeout_ms is None else self._started + timeout_ms / 1000.0
        )
        self._ops = 0
        self._next_check = STRIDE

    # -- deadline ----------------------------------------------------------

    def expired(self):
        """Whether the deadline passed or the run was cancelled."""
        if self.cancel is not None and self.cancel.cancelled:
            return True
        return self._expires is not None and self._clock() > self._expires

    def check(self):
        """Raise :class:`QueryTimeout` when past the deadline (direct read).

        Used at naturally coarse checkpoints (one fixpoint round, one
        grouped scan) where a clock read per call is cheap relative to the
        work between calls.  A cancelled :class:`CancelToken` raises here
        too, carrying the canceller's reason.
        """
        if self.cancel is not None and self.cancel.cancelled:
            raise QueryTimeout(
                self.cancel.reason or "query was cancelled by the server"
            )
        if self._expires is not None and self._clock() > self._expires:
            raise QueryTimeout(
                f"query exceeded its {self.timeout_ms} ms deadline "
                f"(ran {(self._clock() - self._started) * 1000:.0f} ms)"
            )

    def tick(self):
        """Stride-counted per-row check for hot loops.

        Call once per enumerated row; reads the clock only every
        :data:`STRIDE` calls.
        """
        self._ops += 1
        if self._ops >= self._next_check:
            self._next_check = self._ops + STRIDE
            self.check()

    # -- budget ------------------------------------------------------------

    def count_rows(self, n=1):
        """Record *n* produced rows; raise when over ``max_rows``."""
        self.rows += n
        if self.max_rows is not None and self.rows > self.max_rows:
            raise BudgetExceeded(
                f"query produced more than max_rows={self.max_rows} rows "
                f"(aborted at {self.rows})"
            )

    def __repr__(self):
        return (
            f"Deadline(timeout_ms={self.timeout_ms}, max_rows={self.max_rows}, "
            f"rows={self.rows}, expired={self.expired()})"
        )
