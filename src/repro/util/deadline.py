"""Deadlines and row budgets: bounded execution for every tier.

A :class:`Deadline` is armed once per run (by
:meth:`repro.api.EvalOptions.deadline` via the Session) and threaded through
the evaluator, the planner's compiled-scope loops, the semi-naive fixpoint,
and the SQLite backend.  Latency bounds are treated as a correctness
property of the serving path: a query that cannot finish inside its budget
must *answer* with a typed error (:class:`~repro.errors.QueryTimeout` /
:class:`~repro.errors.BudgetExceeded`), never hang.

Two kinds of checks, tuned for hot loops:

* :meth:`tick` — called once per enumerated row in the execution loops.
  It only bumps a counter; every :data:`STRIDE` ticks it reads the
  monotonic clock and raises :class:`~repro.errors.QueryTimeout` past the
  deadline.  The common case is one integer add and one compare, so the
  guard stays well under the 5 % overhead ceiling the CI perf gate asserts
  on the E23 width-4 sweep.
* :meth:`count_rows` — called where result rows are *produced* (collection
  emission loops, fused grouped outputs, SQLite fetch chunks, fixpoint
  deltas).  Exceeding ``max_rows`` raises
  :class:`~repro.errors.BudgetExceeded` before the oversized result is
  fully materialized.  The budget bounds rows produced across all
  execution tiers — materialized intermediates included — so it is a
  resource budget, not an exact result-size predicate.

The clock is injectable for deterministic tests; :meth:`expired` is the
boolean form the SQLite progress handler polls.
"""

from __future__ import annotations

import time

from ..errors import BudgetExceeded, QueryTimeout

#: Ticks between monotonic-clock reads in the hot loops.  Small enough that
#: even ~1 ms/row pathological loops notice the deadline within a second;
#: large enough that the per-row cost is a counter bump.
STRIDE = 1024


class Deadline:
    """One run's deadline and row budget (either part optional).

    Parameters
    ----------
    timeout_ms:
        Wall-clock budget in milliseconds from construction, or None for
        no deadline.
    max_rows:
        Maximum rows the run may produce, or None for no budget.
    clock:
        Monotonic clock (seconds); injectable for deterministic tests.
    """

    __slots__ = (
        "timeout_ms",
        "max_rows",
        "rows",
        "_clock",
        "_started",
        "_expires",
        "_ops",
        "_next_check",
    )

    def __init__(self, timeout_ms=None, max_rows=None, *, clock=time.monotonic):
        self.timeout_ms = timeout_ms
        self.max_rows = max_rows
        self.rows = 0
        self._clock = clock
        self._started = clock()
        self._expires = (
            None if timeout_ms is None else self._started + timeout_ms / 1000.0
        )
        self._ops = 0
        self._next_check = STRIDE

    # -- deadline ----------------------------------------------------------

    def expired(self):
        """Whether the deadline has passed (False when none is set)."""
        return self._expires is not None and self._clock() > self._expires

    def check(self):
        """Raise :class:`QueryTimeout` when past the deadline (direct read).

        Used at naturally coarse checkpoints (one fixpoint round, one
        grouped scan) where a clock read per call is cheap relative to the
        work between calls.
        """
        if self._expires is not None and self._clock() > self._expires:
            raise QueryTimeout(
                f"query exceeded its {self.timeout_ms} ms deadline "
                f"(ran {(self._clock() - self._started) * 1000:.0f} ms)"
            )

    def tick(self):
        """Stride-counted per-row check for hot loops.

        Call once per enumerated row; reads the clock only every
        :data:`STRIDE` calls.
        """
        self._ops += 1
        if self._ops >= self._next_check:
            self._next_check = self._ops + STRIDE
            self.check()

    # -- budget ------------------------------------------------------------

    def count_rows(self, n=1):
        """Record *n* produced rows; raise when over ``max_rows``."""
        self.rows += n
        if self.max_rows is not None and self.rows > self.max_rows:
            raise BudgetExceeded(
                f"query produced more than max_rows={self.max_rows} rows "
                f"(aborted at {self.rows})"
            )

    def __repr__(self):
        return (
            f"Deadline(timeout_ms={self.timeout_ms}, max_rows={self.max_rows}, "
            f"rows={self.rows}, expired={self.expired()})"
        )
