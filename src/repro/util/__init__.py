"""Cross-cutting execution utilities (deadlines, fault injection).

Deliberately import-light: every execution tier (planner loops, fixpoint
rounds, the SQLite backend, ``repro serve``) reaches into this package, so
it must not import any of them back.
"""

from .deadline import Deadline

__all__ = ["Deadline"]
