"""Deterministic fault injection for chaos testing the serving path.

A *failpoint* is a named site in the execution stack that can be armed to
raise a configured exception when reached.  The chaos suite
(``tests/api/test_chaos_env.py`` and the fault-injection tests) arms them to
prove a robustness invariant: **every injected fault yields either a clean
planner fallback (differentially equal to the reference oracle) or a typed
error — never a hang and never a wrong answer.**

Sites (see :data:`SITES`):

==================  =====================================================
``sqlite.connect``  before a SQLite connection is created/reused
``catalog.load``    inside the catalog table loader
``sql.render``      before an ARC node is rendered to SQL text
``sqlite.execute``  inside the execute-with-retry loop (per attempt)
``pool.worker``     inside a pool worker's job loop, *outside* the
                    per-job exception fence — an armed fault escapes the
                    loop and kills the worker thread (drives the
                    supervisor's respawn and poison-quarantine paths)
``pool.leader``     on a coalescing leader between submitting its job and
                    collecting the outcome (drives the publish-or-fail
                    guarantee toward waiting followers)
==================  =====================================================

Spec grammar: ``kind[*count][:message]``

* ``locked`` — ``sqlite3.OperationalError("database is locked")``: a
  *transient* fault; the retry loop in
  :mod:`repro.backends.exec.sqlite_exec` absorbs up to its attempt budget.
* ``error`` — a non-transient ``sqlite3.OperationalError``: not retried;
  surfaces as ``BackendUnsupported`` and takes the planner fallback.
* ``unsupported`` — ``BackendUnsupported`` directly (capability-style
  refusal at runtime).
* ``boom`` — ``RuntimeError``: an untyped infrastructure fault, for
  exercising the defensive 500 path and the circuit breaker.
* ``*count`` — fire only for the first *count* hits, then pass (drives
  retry-then-succeed paths deterministically).
* ``:message`` — override the exception message.

Activation: the API below, or the ``REPRO_FAILPOINTS`` environment
variable read at import (comma-separated ``site=spec`` entries), e.g.::

    REPRO_FAILPOINTS='sqlite.execute=locked*2,catalog.load=unsupported'

Everything is process-local, deterministic, and free of side effects when
no failpoint is armed: :func:`hit` on an un-armed site is one dict lookup.
Armed sites are hit from concurrent pool workers, so the counted decrement
of ``kind*N`` specs happens under a lock: exactly N hits fire no matter
how many threads race the site (pinned by the thread-safety suite).
"""

from __future__ import annotations

import os
import threading
from collections import Counter

from ..errors import ArcError

#: The instrumented sites, in execution order.
SITES = (
    "sqlite.connect",
    "catalog.load",
    "sql.render",
    "sqlite.execute",
    "pool.worker",
    "pool.leader",
)

#: Spec kinds and the exception each one raises (see :func:`_raise`).
KINDS = ("locked", "error", "unsupported", "boom")

#: site -> [kind, remaining-or-None, message-or-None] (mutable: remaining
#: decrements per hit for count-limited specs).
_ACTIVE = {}

#: Guards _ACTIVE mutations and the counted decrement in :func:`hit`
#: (reentrant: configure() arms sites while already holding it).
_LOCK = threading.RLock()

#: Observability: hits per armed site (including pass-through hits after a
#: count-limited spec is exhausted).
hits = Counter()


class FailpointError(ArcError):
    """A failpoint was configured with an unknown site or malformed spec."""


def parse_spec(text):
    """Parse ``kind[*count][:message]`` into ``(kind, count, message)``."""
    head, sep, message = text.partition(":")
    message = message if sep else None
    kind, sep, count_text = head.partition("*")
    count = None
    if sep:
        try:
            count = int(count_text)
        except ValueError:
            raise FailpointError(
                f"failpoint count must be an integer, got {count_text!r}"
            ) from None
        if count <= 0:
            raise FailpointError(f"failpoint count must be positive, got {count}")
    if kind not in KINDS:
        raise FailpointError(
            f"unknown failpoint kind {kind!r}; choose from {KINDS}"
        )
    return kind, count, message


def activate(site, spec):
    """Arm *site* with *spec* (``kind[*count][:message]``), replacing any
    previous arming of the same site."""
    if site not in SITES:
        raise FailpointError(f"unknown failpoint site {site!r}; sites: {SITES}")
    kind, count, message = parse_spec(spec)
    with _LOCK:
        _ACTIVE[site] = [kind, count, message]


def deactivate(site):
    """Disarm *site* (a no-op when it was not armed)."""
    with _LOCK:
        _ACTIVE.pop(site, None)


def reset():
    """Disarm every failpoint and clear the hit counters."""
    with _LOCK:
        _ACTIVE.clear()
        hits.clear()


def active():
    """Snapshot of the armed sites: ``{site: "kind[*remaining][:message]"}``."""
    out = {}
    with _LOCK:
        entries = {site: list(spec) for site, spec in _ACTIVE.items()}
    for site, (kind, remaining, message) in entries.items():
        spec = kind
        if remaining is not None:
            spec += f"*{remaining}"
        if message is not None:
            spec += f":{message}"
        out[site] = spec
    return out


def configure(text):
    """Arm failpoints from a ``site=spec,site=spec`` string (env format).

    Replaces the whole active set; an empty/None *text* disarms everything.
    """
    with _LOCK:
        _ACTIVE.clear()
        for entry in (text or "").split(","):
            entry = entry.strip()
            if not entry:
                continue
            site, sep, spec = entry.partition("=")
            if not sep:
                raise FailpointError(
                    f"failpoint entry must be site=spec, got {entry!r}"
                )
            activate(site.strip(), spec.strip())


def load_env(environ=None):
    """(Re)load the active set from ``REPRO_FAILPOINTS``."""
    environ = os.environ if environ is None else environ
    configure(environ.get("REPRO_FAILPOINTS", ""))


def _raise(kind, message, site):
    import sqlite3

    if kind == "locked":
        raise sqlite3.OperationalError(message or "database is locked")
    if kind == "error":
        raise sqlite3.OperationalError(
            message or f"injected non-transient fault at {site}"
        )
    if kind == "unsupported":
        # Imported lazily: util must stay import-light and the registry
        # defines BackendUnsupported before it imports the sqlite engine,
        # so this cannot cycle.
        from ..backends.exec.registry import BackendUnsupported

        raise BackendUnsupported(message or f"injected failpoint at {site}")
    raise RuntimeError(message or f"injected fault at {site}")


def hit(site):
    """Reach *site*: raise its armed fault, or return None.

    Count-limited specs (``kind*N``) fire for their first N hits and pass
    afterwards; the site stays listed in :func:`active` with the remaining
    count so tests can assert consumption.  The decrement happens under
    the module lock, so concurrent workers hammering one site consume
    exactly N firings between them; the un-armed fast path stays a single
    lock-free dict lookup.
    """
    if _ACTIVE.get(site) is None:
        return None
    with _LOCK:
        spec = _ACTIVE.get(site)  # re-read: configure()/reset() may race
        if spec is None:
            return None
        hits[site] += 1
        kind, remaining, message = spec
        if remaining is not None:
            if remaining <= 0:
                return None
            spec[1] = remaining - 1
    _raise(kind, message, site)
    return None  # pragma: no cover - _raise always raises


# Arm from the environment at import: `REPRO_FAILPOINTS=... repro serve`
# (and the CI chaos matrix) work without any code change.
load_env()
