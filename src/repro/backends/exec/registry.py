"""The executable-backend registry: pluggable engines behind ``evaluate``.

The paper's Section 5 positions ARC as a hub between query languages;
:mod:`repro.backends.sql_render` already produces executable SQL *text*, and
this package turns that modality into an *engine*.  A backend is anything
that can take an ARC node plus a catalog and produce the same answer the
reference evaluator would:

* ``reference`` — the paper's nested-loop strategy (``planner=False``), the
  semantic oracle;
* ``planner`` — the hash-indexed execution layer (the default engine);
* ``sqlite`` — renders the node through ``to_sql`` and offloads execution
  to a SQLite connection holding the loaded catalog
  (:mod:`repro.backends.exec.sqlite_exec`).

Backends advertise what they can honor through a ``capabilities`` probe;
:func:`run_backend` dispatches to the requested backend and falls back to
the planner — with a :class:`BackendFallbackWarning` — when the probe (or
the engine itself, via :class:`BackendUnsupported`) reports a construct or
convention the backend cannot evaluate faithfully.  The fallback keeps
``evaluate(..., backend=...)`` total: every query answers, and the warning
tells the caller which engine actually ran.
"""

from __future__ import annotations

import warnings

from ...errors import EvaluationError


class BackendUnsupported(EvaluationError):
    """A backend cannot faithfully evaluate this query/catalog/conventions."""


class BackendFallbackWarning(UserWarning):
    """Dispatch substituted the planner for the requested backend.

    ``reasons`` carries the capability probe's findings verbatim, one entry
    per failed capability, so callers (and tests) can inspect *which*
    construct blocked the offload instead of parsing the message.
    """

    def __init__(self, message, reasons=()):
        super().__init__(message)
        self.reasons = tuple(reasons)


class Backend:
    """Protocol for an executable backend.

    Subclasses set :attr:`name`, may override :meth:`capabilities` (return a
    list of human-readable reasons the node cannot run — empty means fully
    supported), and must implement :meth:`run`.

    ``run`` and ``capabilities`` receive an optional *context* — a session
    context (see :class:`repro.api.session.SessionContext`, duck-typed so
    this module stays import-light) bundling the run's
    :class:`~repro.api.EvalOptions` with warm state: shared execution
    stats, the session's SQLite connection acquisition, and memoized probe
    verdicts.  Backends that predate the Session API keep working: loose
    kwargs (``decorrelate``, ``db_file``) remain accepted and are filled in
    from the context when one is present.
    """

    name = None

    def capabilities(self, node, conventions, database=None, **options):
        """Reasons this backend cannot evaluate *node*; ``[]`` = supported.

        *options* receives the same keyword options as :meth:`run` (e.g.
        ``decorrelate``), so the probe's verdict matches what the engine
        will actually execute.
        """
        return []

    def run(self, node, database, conventions, *, externals=None, context=None,
            **options):
        """Evaluate *node*; returns a Relation (collections/programs) or Truth."""
        raise NotImplementedError


def _in_process(node, database, conventions, externals, context, *,
                planner, decorrelate):
    """Run the in-process engine, sharing the session's stats when given."""
    from ...engine.evaluator import Evaluator

    evaluator = Evaluator(
        database, conventions, externals, planner=planner, decorrelate=decorrelate
    )
    if context is not None:
        evaluator.stats = context.stats
    return evaluator.evaluate(node)


class ReferenceBackend(Backend):
    """The paper's nested-loop strategy — the semantic oracle."""

    name = "reference"

    def run(self, node, database, conventions, *, externals=None, context=None,
            **options):
        return _in_process(
            node, database, conventions, externals, context,
            planner=False, decorrelate=True,
        )


class PlannerBackend(Backend):
    """The hash-indexed execution layer (the default engine)."""

    name = "planner"

    def run(
        self,
        node,
        database,
        conventions,
        *,
        externals=None,
        context=None,
        decorrelate=True,
        **options,
    ):
        return _in_process(
            node, database, conventions, externals, context,
            planner=True, decorrelate=decorrelate,
        )


_REGISTRY = {}


def register(backend):
    """Register *backend* under its name (replacing any previous holder)."""
    if not backend.name:
        raise ValueError("backend must define a name")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name):
    try:
        return _REGISTRY[name]
    except KeyError:
        raise EvaluationError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None


def available_backends():
    return sorted(_REGISTRY)


def run_backend(
    node,
    database,
    conventions,
    backend="planner",
    *,
    externals=None,
    fallback=True,
    context=None,
    **options,
):
    """Evaluate *node* on the named backend, falling back to the planner.

    The fallback triggers when the backend's capability probe reports
    problems or its ``run`` raises :class:`BackendUnsupported` (e.g. SQLite
    rejecting a construct the static probe could not see).  ``fallback=False``
    turns both into a raised :class:`BackendUnsupported` instead.

    *context* is a session context (see :class:`Backend`): its options
    fill in the loose kwargs, its probe memo answers repeated capability
    checks warm, and it is threaded through to the engine (including the
    planner substituted on fallback, so session stats see the run).
    """
    engine = get_backend(backend)
    if context is not None:
        options.setdefault("decorrelate", context.options.decorrelate)
        problems = context.probe(engine, node, conventions, database, options)
    else:
        problems = engine.capabilities(node, conventions, database, **options)
    if not problems:
        try:
            return engine.run(
                node, database, conventions, externals=externals,
                context=context, **options
            )
        except BackendUnsupported as exc:
            problems = [str(exc)]
    reason = "; ".join(problems)
    if not fallback or engine.name == PlannerBackend.name:
        raise BackendUnsupported(
            f"backend {engine.name!r} cannot evaluate this query: {reason}"
        )
    warnings.warn(
        BackendFallbackWarning(
            f"backend {engine.name!r} cannot evaluate this query ({reason}); "
            "falling back to the planner",
            problems,
        ),
        stacklevel=2,
    )
    options.pop("db_file", None)  # the planner has no catalog to persist
    return get_backend(PlannerBackend.name).run(
        node, database, conventions, externals=externals, context=context,
        **options
    )


register(ReferenceBackend())
register(PlannerBackend())

# SQLite ships with CPython, but gate the import so a stripped-down build
# still exposes the pure-Python backends.
try:
    from .sqlite_exec import SqliteBackend
except ImportError:  # pragma: no cover - sqlite3 is stdlib everywhere we run
    SqliteBackend = None
else:
    register(SqliteBackend())
