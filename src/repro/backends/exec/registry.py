"""The executable-backend registry: pluggable engines behind ``evaluate``.

The paper's Section 5 positions ARC as a hub between query languages;
:mod:`repro.backends.sql_render` already produces executable SQL *text*, and
this package turns that modality into an *engine*.  A backend is anything
that can take an ARC node plus a catalog and produce the same answer the
reference evaluator would:

* ``reference`` — the paper's nested-loop strategy (``planner=False``), the
  semantic oracle;
* ``planner`` — the hash-indexed execution layer (the default engine);
* ``sqlite`` — renders the node through ``to_sql`` and offloads execution
  to a SQLite connection holding the loaded catalog
  (:mod:`repro.backends.exec.sqlite_exec`).

Backends advertise what they can honor through a ``capabilities`` probe;
:func:`run_backend` dispatches to the requested backend and falls back to
the planner — with a :class:`BackendFallbackWarning` — when the probe (or
the engine itself, via :class:`BackendUnsupported`) reports a construct or
convention the backend cannot evaluate faithfully.  The fallback keeps
``evaluate(..., backend=...)`` total: every query answers, and the warning
tells the caller which engine actually ran.
"""

from __future__ import annotations

import threading
import time
import warnings

from ...errors import EvaluationError, ResourceError
from ...obs import NULL_SPAN


class BackendUnsupported(EvaluationError):
    """A backend cannot faithfully evaluate this query/catalog/conventions."""


class BackendFallbackWarning(UserWarning):
    """Dispatch substituted the planner for the requested backend.

    ``reasons`` carries the capability probe's findings verbatim, one entry
    per failed capability, so callers (and tests) can inspect *which*
    construct blocked the offload instead of parsing the message.
    """

    def __init__(self, message, reasons=()):
        super().__init__(message)
        self.reasons = tuple(reasons)


class Backend:
    """Protocol for an executable backend.

    Subclasses set :attr:`name`, may override :meth:`capabilities` (return a
    list of human-readable reasons the node cannot run — empty means fully
    supported), and must implement :meth:`run`.

    ``run`` and ``capabilities`` receive an optional *context* — a session
    context (see :class:`repro.api.session.SessionContext`, duck-typed so
    this module stays import-light) bundling the run's
    :class:`~repro.api.EvalOptions` with warm state: shared execution
    stats, the session's SQLite connection acquisition, and memoized probe
    verdicts.  Backends that predate the Session API keep working: loose
    kwargs (``decorrelate``, ``db_file``) remain accepted and are filled in
    from the context when one is present.
    """

    name = None

    def capabilities(self, node, conventions, database=None, **options):
        """Reasons this backend cannot evaluate *node*; ``[]`` = supported.

        *options* receives the same keyword options as :meth:`run` (e.g.
        ``decorrelate``), so the probe's verdict matches what the engine
        will actually execute.
        """
        return []

    def run(self, node, database, conventions, *, externals=None, context=None,
            **options):
        """Evaluate *node*; returns a Relation (collections/programs) or Truth."""
        raise NotImplementedError


def _in_process(node, database, conventions, externals, context, *,
                planner, decorrelate):
    """Run the in-process engine, sharing the session's stats when given."""
    from ...engine.evaluator import Evaluator

    evaluator = Evaluator(
        database, conventions, externals, planner=planner,
        decorrelate=decorrelate,
        # The context's armed Deadline (if any) rides into the engine —
        # including a planner substituted on fallback, which inherits the
        # *remaining* budget of the run that failed over.
        deadline=getattr(context, "deadline", None),
        tracer=getattr(context, "tracer", None),
    )
    if context is not None:
        evaluator.stats = context.stats
    return evaluator.evaluate(node)


class ReferenceBackend(Backend):
    """The paper's nested-loop strategy — the semantic oracle."""

    name = "reference"

    def run(self, node, database, conventions, *, externals=None, context=None,
            **options):
        return _in_process(
            node, database, conventions, externals, context,
            planner=False, decorrelate=True,
        )


class PlannerBackend(Backend):
    """The hash-indexed execution layer (the default engine)."""

    name = "planner"

    def run(
        self,
        node,
        database,
        conventions,
        *,
        externals=None,
        context=None,
        decorrelate=True,
        **options,
    ):
        return _in_process(
            node, database, conventions, externals, context,
            planner=True, decorrelate=decorrelate,
        )


_REGISTRY = {}

#: Consecutive runtime failures before a backend's breaker opens.
BREAKER_THRESHOLD = 5
#: Seconds an open breaker waits before letting one half-open probe through.
BREAKER_COOLDOWN_S = 30.0


class CircuitBreaker:
    """Per-backend failure breaker: closed → open → half-open → closed.

    *Runtime* failures (a ``run`` that raises — :class:`BackendUnsupported`
    the static probe missed, or an untyped infrastructure error) count;
    static probe refusals are expected steady-state behavior and do not,
    and :class:`~repro.errors.ResourceError` is the caller's budget, not
    the backend's health.  After ``threshold`` consecutive failures the
    breaker **opens**: dispatch skips the backend entirely (straight to
    planner fallback, no probe).  After ``cooldown_s`` it turns
    **half-open** and admits one trial run — success closes it, failure
    re-opens it for another cooldown.  The clock is injectable so tests
    drive the state machine deterministically.

    Thread-safe: transitions are read-modify-write sequences (``allow``'s
    cooldown check-and-set, ``record_failure``'s count-and-trip), so every
    one runs under the breaker's lock — the serve worker pool records
    outcomes from N threads at once (pinned by
    ``tests/serve/test_thread_safety.py``).
    """

    __slots__ = (
        "name", "threshold", "cooldown_s", "failures", "trips",
        "_state", "_opened_at", "_clock", "_lock",
    )

    def __init__(self, name, threshold=BREAKER_THRESHOLD,
                 cooldown_s=BREAKER_COOLDOWN_S, *, clock=time.monotonic):
        self.name = name
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.failures = 0
        self.trips = 0
        self._state = "closed"
        self._opened_at = None
        self._clock = clock
        # RLock: state/snapshot re-enter from the locked transitions.
        self._lock = threading.RLock()

    @property
    def state(self):
        """``"closed"``, ``"open"``, or ``"half-open"`` (cooldown elapsed)."""
        with self._lock:
            if (
                self._state == "open"
                and self._clock() - self._opened_at >= self.cooldown_s
            ):
                return "half-open"
            return self._state

    def allow(self):
        """Whether dispatch may try the backend now.

        Transitions open → half-open when the cooldown has elapsed, so the
        admitted run is the breaker's single trial.
        """
        with self._lock:
            state = self.state
            if state == "half-open":
                self._state = "half-open"
                return True
            return state != "open"

    def record_success(self):
        with self._lock:
            self.failures = 0
            self._state = "closed"
            self._opened_at = None

    def record_failure(self):
        """Count one runtime failure; True when this failure *trips* open."""
        with self._lock:
            self.failures += 1
            if self._state == "half-open" or (
                self._state == "closed" and self.failures >= self.threshold
            ):
                self._state = "open"
                self._opened_at = self._clock()
                self.trips += 1
                return True
            return False

    def snapshot(self):
        with self._lock:
            return {
                "state": self.state,
                "failures": self.failures,
                "trips": self.trips,
            }

    def __repr__(self):
        return (
            f"CircuitBreaker({self.name!r}, state={self.state!r}, "
            f"failures={self.failures}, trips={self.trips})"
        )


#: backend name -> its process-wide breaker (created on first dispatch).
_BREAKERS = {}

#: Guards breaker creation: two serve workers dispatching the same backend
#: for the first time must share one breaker, not race two into existence.
_BREAKERS_LOCK = threading.Lock()


def breaker_for(name):
    """The process-wide :class:`CircuitBreaker` for backend *name*."""
    with _BREAKERS_LOCK:
        breaker = _BREAKERS.get(name)
        if breaker is None:
            breaker = _BREAKERS[name] = CircuitBreaker(name)
        return breaker


def breaker_states():
    """Snapshot of every instantiated breaker: ``{name: {state, ...}}``."""
    with _BREAKERS_LOCK:
        names = sorted(_BREAKERS)
        return {name: _BREAKERS[name].snapshot() for name in names}


def reset_breakers():
    """Drop every breaker (test isolation / cold-start state)."""
    with _BREAKERS_LOCK:
        _BREAKERS.clear()


def register(backend):
    """Register *backend* under its name (replacing any previous holder)."""
    if not backend.name:
        raise ValueError("backend must define a name")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name):
    try:
        return _REGISTRY[name]
    except KeyError:
        raise EvaluationError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None


def available_backends():
    return sorted(_REGISTRY)


def probe_capabilities(node, database, conventions, backends=None, **options):
    """Static capability verdicts for *node*, per backend.

    Returns ``{backend_name: tuple_of_reasons}`` over *backends* (default:
    every registered backend); an empty tuple predicts a fully native run.
    This is the accounting surface the scenario-corpus harness reports next
    to the *observed* native-vs-fallback verdicts from dispatch, so probe
    drift (a probe that promises what the engine then refuses, or refuses
    what it could run) shows up as a coverage discrepancy instead of noise.
    """
    verdicts = {}
    for name in backends if backends is not None else available_backends():
        engine = get_backend(name)
        verdicts[name] = tuple(
            engine.capabilities(node, conventions, database, **options)
        )
    return verdicts


def _count_failure(breaker, context):
    """Record a runtime failure; mirror a trip into the session stats."""
    if breaker.record_failure() and context is not None:
        context.stats.breaker_trips += 1


def run_backend(
    node,
    database,
    conventions,
    backend="planner",
    *,
    externals=None,
    fallback=True,
    context=None,
    reasons=None,
    **options,
):
    """Evaluate *node* on the named backend, falling back to the planner.

    The fallback triggers when the backend's capability probe reports
    problems, its ``run`` raises :class:`BackendUnsupported` (e.g. SQLite
    rejecting a construct the static probe could not see), or the backend's
    circuit breaker is open after repeated runtime failures.
    ``fallback=False`` turns all of these into a raised
    :class:`BackendUnsupported` instead.

    *context* is a session context (see :class:`Backend`): its options
    fill in the loose kwargs, its probe memo answers repeated capability
    checks warm, and it is threaded through to the engine (including the
    planner substituted on fallback, so session stats see the run).

    *reasons* is the explicit fallback-reason channel: when a list is
    supplied, the probe findings are appended to it **instead of** emitting
    a :class:`BackendFallbackWarning` — callers that want to report why an
    offload failed over (``repro serve``) read the list rather than
    sniffing the warnings machinery.
    """
    engine = get_backend(backend)
    tracer = getattr(context, "tracer", None)
    # The planner is the fallback target, so it carries no breaker — a
    # planner outage has nowhere to fail over to.
    breaker = breaker_for(engine.name) if engine.name != PlannerBackend.name else None
    with NULL_SPAN if tracer is None else tracer.span(
        "backend.dispatch", backend=engine.name
    ) as span:
        problems = None
        if breaker is not None and not breaker.allow():
            problems = [
                f"circuit breaker for backend {engine.name!r} is open "
                f"(cooling down after {breaker.failures} consecutive failures)"
            ]
            if tracer is not None:
                tracer.event(
                    "breaker.skip", backend=engine.name,
                    failures=breaker.failures,
                )
        if problems is None:
            if context is not None:
                options.setdefault("decorrelate", context.options.decorrelate)
                problems = context.probe(engine, node, conventions, database, options)
            else:
                problems = engine.capabilities(node, conventions, database, **options)
        if not problems:
            try:
                result = engine.run(
                    node, database, conventions, externals=externals,
                    context=context, **options
                )
            except BackendUnsupported as exc:
                # A *runtime* refusal the static probe missed: counts toward
                # the breaker (unlike probe refusals, which are steady-state).
                if breaker is not None:
                    _count_failure(breaker, context)
                if tracer is not None:
                    tracer.event(
                        "backend.refused", backend=engine.name, reason=str(exc)
                    )
                problems = [str(exc)]
            except ResourceError:
                # The caller's deadline/budget, not the backend's health.
                raise
            except Exception:
                if breaker is not None:
                    _count_failure(breaker, context)
                raise
            else:
                if breaker is not None:
                    breaker.record_success()
                span.tag(ran=engine.name)
                return result
        reason = "; ".join(problems)
        if not fallback or engine.name == PlannerBackend.name:
            raise BackendUnsupported(
                f"backend {engine.name!r} cannot evaluate this query: {reason}"
            )
        if reasons is not None:
            reasons.extend(problems)
        else:
            warnings.warn(
                BackendFallbackWarning(
                    f"backend {engine.name!r} cannot evaluate this query "
                    f"({reason}); falling back to the planner",
                    problems,
                ),
                stacklevel=2,
            )
        if tracer is not None:
            tracer.event(
                "backend.fallback", backend=engine.name, reasons=len(problems)
            )
            tracer.count(
                "arc_backend_fallbacks_total",
                help_text="Dispatches that fell back to the planner.",
                backend=engine.name,
            )
        span.tag(ran=PlannerBackend.name, fallback=True)
        options.pop("db_file", None)  # the planner has no catalog to persist
        return get_backend(PlannerBackend.name).run(
            node, database, conventions, externals=externals, context=context,
            **options
        )


register(ReferenceBackend())
register(PlannerBackend())

# SQLite ships with CPython, but gate the import so a stripped-down build
# still exposes the pure-Python backends.
try:
    from .sqlite_exec import SqliteBackend
except ImportError:  # pragma: no cover - sqlite3 is stdlib everywhere we run
    SqliteBackend = None
else:
    register(SqliteBackend())
