"""Executable backends: registry, dispatch, and the SQLite offload engine."""

from .registry import (
    Backend,
    BackendFallbackWarning,
    BackendUnsupported,
    CircuitBreaker,
    PlannerBackend,
    ReferenceBackend,
    SqliteBackend,  # None when sqlite3 is unavailable (registry guards it)
    available_backends,
    breaker_for,
    breaker_states,
    get_backend,
    probe_capabilities,
    register,
    reset_breakers,
    run_backend,
)

try:
    from .sqlite_exec import (
        catalog_fingerprint,
        clear_catalog_cache,
        connect_catalog,
    )
except ImportError:  # pragma: no cover - sqlite3 is stdlib everywhere we run
    catalog_fingerprint = None
    clear_catalog_cache = None
    connect_catalog = None

__all__ = [
    "Backend",
    "BackendFallbackWarning",
    "BackendUnsupported",
    "CircuitBreaker",
    "PlannerBackend",
    "ReferenceBackend",
    "SqliteBackend",
    "available_backends",
    "breaker_for",
    "breaker_states",
    "catalog_fingerprint",
    "clear_catalog_cache",
    "connect_catalog",
    "get_backend",
    "probe_capabilities",
    "register",
    "reset_breakers",
    "run_backend",
]
