"""The SQLite offload engine: execute rendered ARC SQL on ``sqlite3``.

This backend makes the paper's ``ARC → SQL`` direction executable: the node
is rendered through :func:`repro.backends.sql_render.to_sql`, the catalog is
loaded into a SQLite connection, the query runs there (including
``WITH RECURSIVE`` programs, which have no other executable SQL path), and
the result rows are coerced back into a schema-correct
:class:`~repro.data.relation.Relation`.

Catalog mapping
---------------
* values — ``NULL``/int/float/str map onto SQLite's NULL/INTEGER/REAL/TEXT
  (``bool`` stores as 0/1, matching the engine's Python-level ``True == 1``);
  NaN would silently become NULL inside SQLite, so it is rejected up front;
* bag semantics — every duplicate is inserted as its own row (its identity
  is the rowid), so multiplicities survive the round trip; set-convention
  evaluation is *not* offloaded (see the capability probe);
* columns are created without type affinity, so values come back exactly as
  inserted.

Connection cache
----------------
Loaded catalogs are cached per *fingerprint* — a deterministic digest of
every relation's schema and rows — so repeated CLI/service calls against an
unchanged catalog reuse the in-memory connection instead of reloading.
Mutating a relation changes its fingerprint (the per-relation digest rides
the same derived-result cache that ``Relation.add`` invalidates), which
naturally turns the next call into a cold load.  With ``db_file`` the
catalog persists on disk: the fingerprint is stored in a meta table and the
tables are reloaded only when it changes, so separate processes start warm.

Capability probe
----------------
``capabilities`` reports (triggering planner fallback in the registry):

* non-SQL conventions — set semantics, two-valued NULL comparisons, or the
  ZERO empty-aggregate convention;
* relations without a stored extension (externals, abstract definitions);
* correlated lateral subqueries that survive the FOI → FIO decorrelation
  pass (:func:`repro.engine.decorrelate.rewrite_for_sql` — which covers
  equality group-by joins, unnesting, and θ-band derived tables joined
  through the projected band key) *and* cannot be inlined as correlated
  scalar subqueries — each reported with the binding variable and the
  specific refusal, which names the correlation predicate (``< on s.A``)
  for θ shapes, since SQLite has no ``LATERAL``;
* ``/`` and ``%`` arithmetic (SQLite integer division/modulo differ from
  the engine's true division / Python modulo);
* negated or sentence-level quantifiers over NULL-bearing sources — SQL's
  EXISTS collapses an UNKNOWN Kleene fold to FALSE, observable under ``¬``
  (see :func:`_three_valued_hazard`);
* anything ``to_sql`` itself refuses to render.

Constructs the static probe cannot see (e.g. nonlinear recursion, which
SQLite rejects with "multiple references to recursive table") surface as
:class:`BackendUnsupported` at execution time and take the same fallback.
"""

from __future__ import annotations

import hashlib
import sqlite3
import threading
import time
import weakref
from collections import Counter, OrderedDict

from ...core import nodes as n
from ...core.scopes import free_variables
from ...data.relation import Relation, Tuple
from ...data.values import NULL, Truth, is_null, sort_key
from ...engine.decorrelate import rewrite_for_sql
from ...errors import QueryTimeout, RewriteError
from ...obs import NULL_SPAN
from ...util import failpoints
from ..sql_render import scalar_inlinable, to_sql
from .registry import Backend, BackendUnsupported


def _correlated_lateral_bindings(prepared):
    """Correlated lateral bindings the renderer will emit with LATERAL."""
    for sub in prepared.walk():
        if not isinstance(sub, n.Quantifier):
            continue
        for binding in sub.bindings:
            if (
                isinstance(binding.source, n.Collection)
                and free_variables(binding.source)
                and scalar_inlinable(sub, binding) is not None
            ):
                yield binding

_META_TABLE = "__arc_catalog__"
_CACHE_LIMIT = 8

#: Execute-retry policy for *transient* ``sqlite3.OperationalError``
#: ("database is locked" / "busy"): bounded attempts with deterministic
#: exponential backoff, so a briefly contended file catalog answers instead
#: of failing over.  Non-transient errors are never retried.
_RETRY_ATTEMPTS = 3
_RETRY_BASE_S = 0.01

#: SQLite VM instructions between progress-handler callbacks.  Small enough
#: that a runaway ``WITH RECURSIVE`` notices its deadline within
#: milliseconds; large enough to stay invisible on the warm serve path.
_PROGRESS_STRIDE = 4096

#: In-memory connections keyed by catalog fingerprint (LRU, bounded).
_connections = OrderedDict()

#: Guards ``_connections`` and ``stats``: the serve pool's workers (and
#: its control thread) may connect concurrently, and an unguarded
#: get/insert/evict on the OrderedDict would corrupt it.
_cache_lock = threading.Lock()

#: Observability counters for tests and benchmarks (guarded by
#: ``_cache_lock`` — bare ``+=`` would lose increments under the pool).
stats = {"loads": 0, "hits": 0}


class _FingerprintOwner:
    """Weak-referenceable key for the per-relation fingerprint cache."""


_FP_OWNER = _FingerprintOwner()


# ---------------------------------------------------------------------------
# Value mapping
# ---------------------------------------------------------------------------


def _to_sqlite(value, relation_name):
    if is_null(value):
        return None
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if value != value:
            raise BackendUnsupported(
                f"relation {relation_name!r} contains NaN, which SQLite "
                "stores as NULL"
            )
        return value
    raise BackendUnsupported(
        f"relation {relation_name!r} contains a {type(value).__name__} "
        "value; SQLite holds NULL/int/float/str only"
    )


def _from_sqlite(value):
    return NULL if value is None else value


def _fp_token(value, relation_name):
    if is_null(value):
        return b"\x00N"
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        return b"i" + str(value).encode()
    if isinstance(value, float):
        return b"f" + value.hex().encode()
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    raise BackendUnsupported(
        f"relation {relation_name!r} contains a {type(value).__name__} "
        "value; SQLite holds NULL/int/float/str only"
    )


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def relation_fingerprint(relation):
    """Deterministic digest of a relation's schema and rows (cached).

    The cache rides :meth:`Relation.derived_put`, which every mutation
    (``add``/``extend_new``) drops, so a stale fingerprint is impossible.
    """
    cached = relation.derived_get(_FP_OWNER, "fingerprint")
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(repr(tuple(relation.schema)).encode("utf-8"))
    ordered = sorted(
        relation.counter().items(),
        key=lambda item: tuple(sort_key(item[0][a]) for a in relation.schema),
    )
    for row, mult in ordered:
        digest.update(b"\x00" + str(mult).encode())
        for attr in relation.schema:
            digest.update(b"\x01" + _fp_token(row[attr], relation.name))
    return relation.derived_put(_FP_OWNER, "fingerprint", digest.hexdigest())


def catalog_fingerprint(database):
    """Deterministic digest of the whole catalog (relation names + contents)."""
    digest = hashlib.sha256()
    for name in database.names():
        digest.update(name.encode("utf-8") + b"\x00")
        digest.update(relation_fingerprint(database[name]).encode("ascii"))
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Catalog loading
# ---------------------------------------------------------------------------


def _quote(identifier):
    return '"' + str(identifier).replace('"', '""') + '"'


def _check_identifiers(database):
    """SQLite identifiers are case-insensitive; reject colliding catalogs."""
    seen = {}
    for name in database.names():
        folded = name.lower()
        if folded == _META_TABLE.lower():
            raise BackendUnsupported(
                f"relation name {name!r} is reserved for the catalog "
                "fingerprint meta table"
            )
        if folded in seen:
            raise BackendUnsupported(
                f"relation names {seen[folded]!r} and {name!r} collide "
                "case-insensitively in SQLite"
            )
        seen[folded] = name
        relation = database[name]
        attrs = {}
        for attr in relation.schema:
            folded_attr = attr.lower()
            if folded_attr in attrs:
                raise BackendUnsupported(
                    f"attributes {attrs[folded_attr]!r} and {attr!r} of "
                    f"{name!r} collide case-insensitively in SQLite"
                )
            attrs[folded_attr] = attr


def _load_catalog(conn, database):
    """Create and populate one table per catalog relation (bag layout)."""
    failpoints.hit("catalog.load")
    _check_identifiers(database)
    for name in database.names():
        relation = database[name]
        columns = ", ".join(_quote(attr) for attr in relation.schema)
        try:
            conn.execute(f"create table {_quote(name)} ({columns})")
        except sqlite3.Error as exc:
            raise BackendUnsupported(
                f"SQLite rejected the schema of {name!r} ({exc})"
            ) from exc
        placeholders = ", ".join("?" for _ in relation.schema)
        rows = [
            tuple(_to_sqlite(row[attr], name) for attr in relation.schema)
            for row in relation  # bag iteration: one insert per duplicate
        ]
        if rows:
            conn.executemany(
                f"insert into {_quote(name)} values ({placeholders})", rows
            )
    conn.commit()
    with _cache_lock:
        stats["loads"] += 1


def load_private_catalog(database):
    """A fresh, caller-owned in-memory connection holding *database*.

    Bypasses the process-wide fingerprint cache entirely: the caller (a
    :class:`~repro.api.Session` with ``private_connections=True``) owns
    the connection and closes it.  This is what lets N serve workers
    execute concurrently — SQLite releases the GIL inside ``step()``, but
    only when each thread drives its own connection.
    """
    failpoints.hit("sqlite.connect")
    conn = sqlite3.connect(":memory:", check_same_thread=False)
    try:
        _load_catalog(conn, database)
    except BaseException:
        conn.close()
        raise
    return conn


def connect_catalog(database, *, db_file=None):
    """A SQLite connection holding *database*, reusing warm catalogs.

    In-memory connections are cached per fingerprint (LRU of
    ``_CACHE_LIMIT``).  With *db_file* a fresh connection to the file is
    returned — the caller closes it — and the tables are reloaded only when
    the stored fingerprint disagrees with the catalog's.

    Cache bookkeeping is lock-guarded so concurrent callers cannot corrupt
    the LRU, but a *shared* connection handed out here may still be
    serialized (or evicted) under another thread — threads that need an
    exclusive handle use :func:`load_private_catalog` instead.
    """
    failpoints.hit("sqlite.connect")
    fingerprint = catalog_fingerprint(database)
    if db_file is None:
        with _cache_lock:
            conn = _connections.get(fingerprint)
            if conn is not None:
                _connections.move_to_end(fingerprint)
                stats["hits"] += 1
                return conn
        # check_same_thread=False: the cache may be primed in one thread
        # and consumed in another (callers serialize actual use).  The
        # catalog loads *outside* the lock — it is the slow part — and the
        # publish below resolves the race two concurrent loaders create.
        conn = sqlite3.connect(":memory:", check_same_thread=False)
        try:
            _load_catalog(conn, database)
        except BaseException:
            conn.close()
            raise
        evicted = []
        redundant = None
        with _cache_lock:
            existing = _connections.get(fingerprint)
            if existing is not None:
                # Another thread published the same catalog first: adopt
                # theirs, discard ours (closing outside the lock).
                _connections.move_to_end(fingerprint)
                stats["hits"] += 1
                redundant, conn = conn, existing
            else:
                _connections[fingerprint] = conn
                while len(_connections) > _CACHE_LIMIT:
                    _, victim = _connections.popitem(last=False)
                    evicted.append(victim)
        if redundant is not None:
            redundant.close()
        for victim in evicted:
            victim.close()
        return conn

    conn = sqlite3.connect(db_file, check_same_thread=False)
    try:
        stored = conn.execute(
            f"select fingerprint from {_quote(_META_TABLE)}"
        ).fetchone()
    except sqlite3.Error:
        stored = None
    if stored is not None and stored[0] == fingerprint:
        with _cache_lock:
            stats["hits"] += 1
        return conn
    try:
        for (table,) in conn.execute(
            "select name from sqlite_master where type = 'table'"
        ).fetchall():
            if not table.startswith("sqlite_"):
                conn.execute(f"drop table {_quote(table)}")
        _load_catalog(conn, database)
        conn.execute(f"create table {_quote(_META_TABLE)} (fingerprint text)")
        conn.execute(
            f"insert into {_quote(_META_TABLE)} values (?)", (fingerprint,)
        )
        conn.commit()
    except BaseException:
        conn.close()
        raise
    return conn


def clear_catalog_cache():
    """Close and drop every cached in-memory connection (cold-start state)."""
    with _cache_lock:
        conns = list(_connections.values())
        _connections.clear()
        stats["loads"] = 0
        stats["hits"] = 0
    for conn in conns:
        conn.close()


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------


def _relation_has_null(relation):
    """Whether any stored value is NULL (cached until the relation mutates)."""
    cached = relation.derived_get(_FP_OWNER, "has_null")
    if cached is None:
        cached = any(
            any(is_null(value) for value in row._values.values())
            for row in relation.iter_distinct()
        )
        relation.derived_put(_FP_OWNER, "has_null", cached)
    return cached


def _three_valued_hazard(prepared, database):
    """Reason SQL's two-valued EXISTS could diverge from the Kleene fold.

    SQL renders ``∃`` as EXISTS, which collapses an UNKNOWN-only fold to
    FALSE.  In a positive WHERE context that collapse is unobservable
    (UNKNOWN and FALSE both drop the row), but under ``¬`` — or as a
    sentence's top-level answer — it flips the result.  UNKNOWN needs a
    NULL to arise, so the hazard requires both an *exposed* quantifier and
    a NULL source: stored NULLs, NULL literals, or a non-count aggregate
    (NULL over an empty group).
    """
    exposed = isinstance(prepared, n.Sentence) or (
        isinstance(prepared, n.Program)
        and isinstance(prepared.resolve_main(), n.Sentence)
    )
    if not exposed:
        exposed = any(
            isinstance(sub, n.Not)
            and any(isinstance(inner, n.Quantifier) for inner in sub.walk())
            for sub in prepared.walk()
        )
    if not exposed:
        return None
    if any(
        isinstance(sub, n.Const) and is_null(sub.value) for sub in prepared.walk()
    ):
        return (
            "NULL literal under a negated/top-level quantifier "
            "(EXISTS collapses UNKNOWN)"
        )
    if any(
        isinstance(sub, n.AggCall) and not sub.func.startswith("count")
        for sub in prepared.walk()
    ):
        return (
            "non-count aggregate under a negated/top-level quantifier "
            "(empty groups yield NULL; EXISTS collapses UNKNOWN)"
        )
    if database is not None:
        nullable = sorted(
            name
            for name in {
                sub.name
                for sub in prepared.walk()
                if isinstance(sub, n.RelationRef)
            }
            if name in database and _relation_has_null(database[name])
        )
        if nullable:
            return (
                f"relations {nullable} contain NULLs under a negated/"
                "top-level quantifier (EXISTS collapses UNKNOWN)"
            )
    return None


def _prepare(node, database):
    """Wrap a self-recursive collection into a one-definition program.

    Mirrors the evaluator's handling (Section 2.9): a collection whose body
    references its own head name — and whose name is not a stored relation —
    denotes a least fixpoint, which renders as ``WITH RECURSIVE``.
    """
    if isinstance(node, n.Collection):
        name = node.head.name
        stored = database is not None and name in database
        if not stored and any(
            isinstance(sub, n.RelationRef) and sub.name == name
            for sub in node.walk()
        ):
            return n.Program({name: node}, name)
    return node


#: node -> (catalog-names token, prepared node).  ``_prepare`` depends on
#: the catalog only through relation *names* (stored vs recursive), so the
#: token invalidates on schema changes while row mutations stay warm.
_PREPARED_NODES = weakref.WeakKeyDictionary()

#: rewritten node -> rendered SQL text (a pure function of the AST).
_RENDERED_SQL = weakref.WeakKeyDictionary()


def _prepared_for(node, database):
    """Memoized :func:`_prepare` (per node, keyed by the catalog's names).

    The common case (non-recursive node) returns the node itself; it is
    stored as None so the weak-keyed entry never strongly references its
    own key (which would make it immortal).
    """
    names = frozenset(database.names()) if database is not None else frozenset()
    try:
        cached = _PREPARED_NODES.get(node)
    except TypeError:  # pragma: no cover - every AST node is weakref-able
        return _prepare(node, database)
    if cached is not None and cached[0] == names:
        return node if cached[1] is None else cached[1]
    prepared = _prepare(node, database)
    _PREPARED_NODES[node] = (names, None if prepared is node else prepared)
    return prepared


def compile_sql(node, database, *, decorrelate=True):
    """Compile *node* for SQLite: ``(executable node, SQL text)``.

    The executable node is :func:`_prepare`-wrapped and (unless disabled)
    FOI → FIO rewritten; the SQL text is its rendering.  Every step is
    memoized on the AST, so a prepared query that stays alive — a
    :class:`repro.api.Session` ``Prepared`` — compiles exactly once and
    re-runs render-free.  Raises :class:`BackendUnsupported` when the node
    is not renderable.
    """
    try:
        failpoints.hit("sql.render")
    except sqlite3.Error as exc:
        # A sqlite-flavored fault at render time can only mean "cannot
        # produce SQL" — surface it as the typed refusal so the registry
        # falls back instead of leaking a raw OperationalError.
        raise BackendUnsupported(f"SQL render failed ({exc})") from exc
    prepared = _prepared_for(node, database)
    if decorrelate:
        prepared, _ = rewrite_for_sql(prepared)
    sql = _RENDERED_SQL.get(prepared)
    if sql is None:
        try:
            sql = to_sql(prepared)
        except RewriteError as exc:
            raise BackendUnsupported(f"not renderable as SQL ({exc})") from exc
        _RENDERED_SQL[prepared] = sql
    return prepared, sql


def _is_transient(exc):
    """Whether an ``OperationalError`` is worth retrying (lock contention)."""
    message = str(exc).lower()
    return "locked" in message or "busy" in message


def execute_with_retry(conn, sql, *, stats_obj=None, sleep=time.sleep,
                       tracer=None):
    """Execute *sql* with bounded deterministic-backoff retries.

    Transient ``sqlite3.OperationalError`` ("database is locked"/"busy")
    retries up to :data:`_RETRY_ATTEMPTS` times, sleeping
    ``_RETRY_BASE_S * 2**attempt`` between attempts (*sleep* injectable for
    tests).  Each retry increments ``stats_obj.retries`` when an
    :class:`~repro.engine.planner.ExecutionStats` is supplied (and records a
    ``sqlite.retry`` event when a *tracer* is).  The ``sqlite.execute``
    failpoint fires once per attempt, so a ``locked*2`` spec
    deterministically drives the retry-then-succeed path.
    """
    last_exc = None
    for attempt in range(_RETRY_ATTEMPTS):
        try:
            failpoints.hit("sqlite.execute")
            return conn.execute(sql)
        except sqlite3.OperationalError as exc:
            if not _is_transient(exc):
                raise
            last_exc = exc
            if attempt + 1 < _RETRY_ATTEMPTS:
                if stats_obj is not None:
                    stats_obj.retries += 1
                if tracer is not None:
                    tracer.event(
                        "sqlite.retry", attempt=attempt + 1, error=str(exc)
                    )
                sleep(_RETRY_BASE_S * 2**attempt)
    raise last_exc


class SqliteBackend(Backend):
    """Render through ``to_sql`` and execute on a loaded SQLite catalog."""

    name = "sqlite"

    def capabilities(
        self, node, conventions, database=None, *, decorrelate=True, **options
    ):
        problems = []
        if not conventions.is_bag:
            problems.append("set semantics (SQL evaluates bags)")
        if not conventions.three_valued:
            problems.append("two-valued NULL comparisons (SQLite is 3VL)")
        if conventions.empty_aggregate.value != "null":
            problems.append(
                "ZERO empty-aggregate convention (SQLite returns NULL)"
            )
        prepared = _prepared_for(node, database)
        if decorrelate:
            prepared, leftover_laterals = rewrite_for_sql(prepared)
        else:
            # Mirror run(decorrelate=False): no rewrite happens, so every
            # correlated lateral that is not scalar-inlined needs LATERAL.
            leftover_laterals = [
                (binding.var, "decorrelation disabled (--no-decorrelate)")
                for binding in _correlated_lateral_bindings(prepared)
            ]
        defined = (
            set(prepared.definitions) if isinstance(prepared, n.Program) else set()
        )
        missing = sorted(
            {
                sub.name
                for sub in prepared.walk()
                if isinstance(sub, n.RelationRef)
                and sub.name not in defined
                and (database is None or sub.name not in database)
            }
        )
        if missing:
            problems.append(
                f"relations {missing} have no stored extension "
                "(external/abstract access patterns cannot be offloaded)"
            )
        for sub in prepared.walk():
            if isinstance(sub, n.Arith) and sub.op in ("/", "%"):
                problems.append(
                    f"arithmetic {sub.op!r} (SQLite integer division/modulo "
                    "differ from the engine's semantics)"
                )
            elif (
                isinstance(sub, n.Const)
                and isinstance(sub.value, str)
                and "'" in sub.value
            ):
                problems.append("string literal containing a quote")
        for var, reason in leftover_laterals:
            problems.append(
                f"correlated lateral binding {var!r} needs LATERAL, which "
                f"SQLite lacks: {reason}"
            )
        hazard = _three_valued_hazard(prepared, database)
        if hazard:
            problems.append(hazard)
        if not problems:
            try:
                compile_sql(node, database, decorrelate=decorrelate)
            except BackendUnsupported as exc:
                problems.append(str(exc))
        return list(dict.fromkeys(problems))

    def run(
        self,
        node,
        database,
        conventions,
        *,
        externals=None,
        db_file=None,
        decorrelate=True,
        context=None,
        **options,
    ):
        if context is not None:
            db_file = context.options.db_file
        deadline = getattr(context, "deadline", None)
        stats_obj = context.stats if context is not None else None
        tracer = getattr(context, "tracer", None)
        with NULL_SPAN if tracer is None else tracer.span("sql.compile"):
            prepared, sql = compile_sql(node, database, decorrelate=decorrelate)
        try:
            if context is not None:
                conn = context.acquire_connection(database)
            else:
                conn = connect_catalog(database, db_file=db_file)
        except sqlite3.Error as exc:
            # Connection/catalog-load faults are infrastructure refusals:
            # surface them typed so the registry can fall back cleanly.
            raise BackendUnsupported(
                f"SQLite connection failed ({exc})"
            ) from exc
        cancel = getattr(deadline, "cancel", None)
        armed = deadline is not None and (
            deadline.timeout_ms is not None or cancel is not None
        )
        if armed:
            # Nonzero return aborts the VM, which surfaces as
            # OperationalError("interrupted") — mapped to QueryTimeout
            # below, *before* the generic BackendUnsupported wrap (a
            # timed-out query must not fall back and run away again).
            conn.set_progress_handler(
                lambda: 1 if deadline.expired() else 0, _PROGRESS_STRIDE
            )
        if cancel is not None:
            # The watchdog's token interrupts this connection directly:
            # conn.interrupt() aborts the VM from the supervisor thread
            # without waiting for the next progress callback.
            cancel.arm_connection(conn)
        try:
            with NULL_SPAN if tracer is None else tracer.span(
                "sqlite.execute"
            ) as span:
                try:
                    cursor = execute_with_retry(
                        conn, sql, stats_obj=stats_obj, tracer=tracer
                    )
                    if deadline is not None and deadline.max_rows is not None:
                        raw = []
                        while True:
                            chunk = cursor.fetchmany(256)
                            if not chunk:
                                break
                            deadline.count_rows(len(chunk))
                            raw.extend(chunk)
                    else:
                        raw = cursor.fetchall()
                except sqlite3.Error as exc:
                    if armed and deadline.expired():
                        # A cancelled run (watchdog interrupt) reports its
                        # canceller's reason; a plain deadline keeps the
                        # wall-clock wording.  Both are QueryTimeout so an
                        # interrupted query never falls back and runs away
                        # a second time.
                        if cancel is not None and cancel.cancelled:
                            raise QueryTimeout(
                                cancel.reason
                                or "query was interrupted inside SQLite"
                            ) from exc
                        raise QueryTimeout(
                            f"query exceeded its {deadline.timeout_ms} ms "
                            "deadline (aborted inside SQLite)"
                        ) from exc
                    raise BackendUnsupported(
                        f"SQLite rejected the rendered query ({exc})"
                    ) from exc
                span.tag(rows=len(raw))
        finally:
            if cancel is not None:
                cancel.disarm_connection()
            if armed:
                conn.set_progress_handler(None, 0)
            if db_file is not None:
                conn.close()
        return _shape_result(prepared, raw)


def _shape_result(prepared, raw):
    """Coerce the cursor rows back into the node's result type."""
    main = prepared.resolve_main() if isinstance(prepared, n.Program) else prepared
    if isinstance(main, n.Sentence):
        # SQL's EXISTS is two-valued: an UNKNOWN-only sentence collapses to
        # FALSE, which is exactly how SQL itself answers the rendered query.
        return Truth.TRUE if raw and raw[0][0] else Truth.FALSE
    head = main.head
    attrs = tuple(head.attrs)
    counter = Counter()
    # Deduplicate the raw rows first: cursor rows are plain tuples of
    # primitives, which hash at C speed, so a bag result with duplicates
    # (e.g. a projection) builds each distinct Tuple once instead of per
    # occurrence — the dominant cost of the warm serve path.
    for values, mult in Counter(raw).items():
        if len(values) != len(attrs):
            raise BackendUnsupported(
                f"SQLite returned {len(values)} columns for head "
                f"{head.name}({', '.join(attrs)})"
            )
        counter[
            Tuple._adopt(
                {attr: _from_sqlite(v) for attr, v in zip(attrs, values)}
            )
        ] += mult
    return Relation._adopt_counter(head.name, attrs, counter)
