"""Rendering backends (ARC -> comprehension text, ARC -> SQL) and the
executable-backend registry (:mod:`repro.backends.exec`)."""

from . import comprehension

__all__ = ["comprehension"]
