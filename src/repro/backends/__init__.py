"""Rendering backends: ARC -> comprehension text, ARC -> SQL."""

from . import comprehension

__all__ = ["comprehension"]
