"""Render ARC ASTs back into comprehension-syntax text.

This is the textual modality of ARC (Section 2.2 of the paper).  Two
spellings are supported: the Unicode notation used in the paper
(``∃ r ∈ R, γ r.A [ ... ]``) and an ASCII fallback
(``exists r in R, gamma r.A [ ... ]``).  Both round-trip through
:func:`repro.core.parser.parse`.
"""

from __future__ import annotations

from ..core import nodes as n
from ..data.values import is_null


class Style:
    """Rendering vocabulary for one spelling of the comprehension syntax."""

    def __init__(self, exists, member, conj, disj, neg, gamma, empty):
        self.exists = exists
        self.member = member
        self.conj = conj
        self.disj = disj
        self.neg = neg
        self.gamma = gamma
        self.empty = empty


UNICODE = Style("∃", "∈", "∧", "∨", "¬", "γ", "∅")
# ASCII keywords need a trailing space where the Unicode symbols abut the
# following token (``∃r`` vs ``exists r``, ``¬∃`` vs ``not exists``).
ASCII = Style("exists ", "in", "and", "or", "not ", "gamma", "empty")


def render(node, style=UNICODE):
    """Render any ARC node (Collection, Sentence, Program, Formula, Expr)."""
    return _Renderer(style).render(node)


def render_ascii(node):
    """Render using the keyboard-friendly ASCII spelling."""
    return render(node, ASCII)


class _Renderer:
    def __init__(self, style):
        self._s = style

    def render(self, node):
        if isinstance(node, n.Program):
            return self._program(node)
        if isinstance(node, n.Collection):
            return self._collection(node)
        if isinstance(node, n.Sentence):
            return self._formula(node.body)
        if isinstance(node, n.Formula):
            return self._formula(node)
        if isinstance(node, n.Expr):
            return self._expr(node)
        if isinstance(node, n.Grouping):
            return self._grouping(node)
        if isinstance(node, n.JoinExpr):
            return self._join(node)
        raise TypeError(f"cannot render {type(node).__name__}")

    # -- structure ----------------------------------------------------------

    def _program(self, program):
        lines = []
        for name, definition in program.definitions.items():
            lines.append(f"{name} := {self._collection(definition)} ;")
        if isinstance(program.main, str):
            lines.append(f"main {program.main}")
        elif isinstance(program.main, n.Sentence):
            lines.append(self._formula(program.main.body))
        elif program.main is not None:
            lines.append(self._collection(program.main))
        return "\n".join(lines)

    def _collection(self, coll):
        head = f"{coll.head.name}({', '.join(coll.head.attrs)})"
        return f"{{{head} | {self._formula(coll.body)}}}"

    def _formula(self, formula, *, parenthesize=False):
        if isinstance(formula, n.Quantifier):
            return self._quantifier(formula)
        if isinstance(formula, n.And):
            text = f" {self._s.conj} ".join(
                self._formula(c, parenthesize=isinstance(c, n.Or))
                for c in formula.children_list
            )
            return f"({text})" if parenthesize else text
        if isinstance(formula, n.Or):
            text = f" {self._s.disj} ".join(
                self._formula(c) for c in formula.children_list
            )
            return f"({text})" if parenthesize else text
        if isinstance(formula, n.Not):
            child = formula.child
            if isinstance(child, n.Quantifier):
                return f"{self._s.neg}{self._quantifier(child)}"
            return f"{self._s.neg}({self._formula(child)})"
        if isinstance(formula, n.Comparison):
            return f"{self._expr(formula.left)} {formula.op} {self._expr(formula.right)}"
        if isinstance(formula, n.IsNull):
            suffix = "is not null" if formula.negated else "is null"
            return f"{self._expr(formula.expr)} {suffix}"
        if isinstance(formula, n.BoolConst):
            return "true" if formula.value else "false"
        if isinstance(formula, n.Collection):
            return self._collection(formula)
        raise TypeError(f"cannot render formula {type(formula).__name__}")

    def _quantifier(self, quant):
        items = []
        for binding in quant.bindings:
            items.append(self._binding(binding))
        if quant.grouping is not None:
            items.append(self._grouping(quant.grouping))
        if quant.join is not None:
            items.append(self._join(quant.join))
        body = self._formula(quant.body)
        return f"{self._s.exists}{', '.join(items)}[{body}]"

    def _binding(self, binding):
        if isinstance(binding.source, n.RelationRef):
            source = binding.source.name
            if not source.replace("_", "a").replace("$", "a").isalnum():
                source = f"'{source}'"  # reified operators like '-' or '>'
        else:
            source = self._collection(binding.source)
        return f"{binding.var} {self._s.member} {source}"

    def _grouping(self, grouping):
        if not grouping.keys:
            return f"{self._s.gamma} {self._s.empty}"
        keys = ", ".join(self._expr(k) for k in grouping.keys)
        return f"{self._s.gamma} {keys}"

    def _join(self, join):
        if isinstance(join, n.JoinVar):
            return join.var
        if isinstance(join, n.JoinConst):
            return self._const_text(join.value)
        children = ", ".join(self._join(c) for c in join.children_list)
        return f"{join.kind}({children})"

    # -- expressions -----------------------------------------------------------

    def _expr(self, expr, *, parent_op=None):
        if isinstance(expr, n.Attr):
            return f"{expr.var}.{expr.attr}"
        if isinstance(expr, n.Const):
            return self._const_text(expr.value)
        if isinstance(expr, n.AggCall):
            if expr.arg is None:
                return f"{expr.func}(*)"
            return f"{expr.func}({self._expr(expr.arg)})"
        if isinstance(expr, n.Arith):
            left = self._expr(expr.left, parent_op=expr.op)
            right = self._expr(expr.right, parent_op=expr.op)
            text = f"{left} {expr.op} {right}"
            if parent_op is not None:
                # Parenthesize all nested arithmetic so the rendered text
                # reparses to the identical tree (associativity-faithful).
                return f"({text})"
            return text
        raise TypeError(f"cannot render expression {type(expr).__name__}")

    @staticmethod
    def _const_text(value):
        if is_null(value):
            return "null"
        if value is True:
            return "true"
        if value is False:
            return "false"
        if isinstance(value, str):
            return f"'{value}'"
        return repr(value)
