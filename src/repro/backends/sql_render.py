"""Rendering ARC back into executable SQL text.

The inverse direction of the paper's planned ``SQL ↔ ARC`` translator
(Section 5): every ARC construct maps onto its SQL encoding —

* bindings become FROM items; nested collections become ``JOIN LATERAL``
  derived tables (the paper's canonical encoding of body nesting, Fig. 3a);
* join annotations become INNER/LEFT/FULL JOIN syntax, re-materializing the
  literal-leaf device as ON conjuncts (Fig. 12);
* plain assignments become select items; aggregation assignments become
  aggregate select items with GROUP BY; aggregation comparisons become
  HAVING;
* boolean quantifiers become EXISTS subqueries; a boolean ``γ∅`` scope with
  a single aggregation comparison becomes a correlated scalar subquery
  (Fig. 21a); negation becomes NOT EXISTS;
* top-level disjunction becomes UNION ALL; deduplicating grouping becomes
  SELECT DISTINCT; recursion becomes WITH RECURSIVE, with the recursive
  disjuncts joined by set-based UNION — the engine's fixpoint materializes
  recursive relations under set semantics (Section 2.9), and UNION is what
  makes the SQL iteration terminate on cyclic data.

Derived tables carry the ``lateral`` keyword only when the nested collection
actually references outer bindings; uncorrelated subqueries render as plain
parenthesized FROM items, which keeps them inside the fragment engines
without LATERAL support (e.g. SQLite) can execute.  A correlated γ∅ scope
whose head is aggregate-only is not rendered as a FROM item at all: it is
inlined as per-attribute *correlated scalar subqueries* (the paper's
Fig. 5a/13a device, :func:`scalar_subquery_shape`) — a γ∅ scope emits
exactly one row per outer row, which is precisely a scalar subquery's
contract (including ``count`` over an empty group, where the group-by
rewrite would hit the count bug).  The device is operator-agnostic: an
eq15-shaped θ correlation (``s.a < r.a``) renders as the same scalar
subquery with the inequality in its WHERE clause, and the FOI → FIO pass
(:mod:`repro.engine.decorrelate`) turns non-grouped θ laterals that
resist unnesting into uncorrelated derived tables joined back through the
projected band key with the original inequality.  Together these keep
every equality-, θ-, or aggregate-correlated paper workload executable on
engines without LATERAL.

The produced text parses back through :mod:`repro.frontends.sql` for the
non-recursive fragment, enabling round-trip testing, and executes on the
SQLite offload backend (:mod:`repro.backends.exec.sqlite_exec`).
"""

from __future__ import annotations

from ..core import nodes as n
from ..core.scopes import (  # noqa: F401  (re-exported for compatibility)
    assignment_of,
    free_variables,
    scalar_subquery_shape,
    shadows_binding,
    split_scope,
)
from ..data.values import is_null
from ..errors import RewriteError


def to_sql(node, *, pretty=True):
    """Render an ARC Collection, Sentence, or Program as SQL text."""
    renderer = _SqlRenderer()
    if isinstance(node, n.Program):
        return renderer.render_program(node)
    if isinstance(node, n.Collection):
        return renderer.render_collection(node)
    if isinstance(node, n.Sentence):
        return renderer.render_sentence(node)
    raise RewriteError(f"cannot render {type(node).__name__} as SQL")


def scalar_inlinable(quant, binding):
    """Why the renderer will NOT inline *binding* as scalar subqueries.

    Returns None when it will.  This is the renderer's own decision
    procedure, shared with the SQLite capability probe
    (:mod:`repro.engine.decorrelate`) so the probe never promises native
    execution for a shape the renderer still emits as LATERAL.
    """
    reason = scalar_subquery_shape(binding.source)
    if reason is not None:
        return reason
    if shadows_binding(quant, binding):
        return f"the variable {binding.var!r} is rebound in the scope"
    if quant.join is not None:
        from ..engine.joins import annotation_vars

        if binding.var in annotation_vars(quant.join):
            return "the binding is an operand of a join annotation"
    return None


class _SqlRenderer:
    def __init__(self):
        #: Active scalar-subquery substitutions: (var, attr) -> SQL text.
        self._scalar = {}

    # -- programs ------------------------------------------------------------

    def render_program(self, program):
        if not program.definitions:
            return self.render_collection(program.resolve_main())
        ctes = []
        recursive = False
        for name, definition in program.definitions.items():
            is_recursive = self._is_recursive(name, definition)
            recursive = recursive or is_recursive
            attrs = ", ".join(definition.head.attrs)
            # Recursive definitions iterate to a *set-based* least fixpoint
            # (Section 2.9), so their disjuncts are joined by UNION — which
            # also makes the SQL recursion terminate on cyclic inputs.
            body = self.render_collection(definition, set_union=is_recursive)
            ctes.append(f"{name}({attrs}) as (\n{body}\n)")
        main = program.resolve_main()
        if isinstance(program.main, str):
            main_sql = f"select * from {program.main}"
        elif isinstance(main, n.Sentence):
            main_sql = self.render_sentence(main)
        else:
            main_sql = self.render_collection(main)
        keyword = "with recursive" if recursive else "with"
        return f"{keyword} " + ",\n".join(ctes) + f"\n{main_sql}"

    @staticmethod
    def _is_recursive(name, definition):
        return any(
            isinstance(node, n.RelationRef) and node.name == name
            for node in definition.walk()
        )

    # -- collections ------------------------------------------------------------

    def render_collection(self, coll, *, set_union=False):
        head = coll.head
        disjuncts = (
            coll.body.children_list if isinstance(coll.body, n.Or) else [coll.body]
        )
        selects = []
        for disjunct in disjuncts:
            if not isinstance(disjunct, n.Quantifier):
                raise RewriteError(
                    "only quantifier bodies can be rendered as SQL selects "
                    f"(got {type(disjunct).__name__})"
                )
            selects.append(self._render_quantifier_select(head, disjunct))
        separator = "\nunion\n" if set_union else "\nunion all\n"
        return separator.join(selects)

    def _render_quantifier_select(self, head, quant):
        parts = self._split_scope(head, quant)
        (assignments, agg_assignments, agg_comparisons, row_formulas) = parts

        eliminated, substitutions = self._scalar_eliminated(quant)
        saved = self._scalar
        if substitutions:
            self._scalar = {**saved, **substitutions}
        try:
            return self._render_select_body(
                head, quant, parts, eliminated
            )
        finally:
            self._scalar = saved

    def _render_select_body(self, head, quant, parts, eliminated):
        (assignments, agg_assignments, agg_comparisons, row_formulas) = parts

        from_sql, on_consumed = self._render_from(quant, skip=eliminated)
        where = [
            self._render_formula(f)
            for f in row_formulas
            if id(f) not in on_consumed
        ]

        select_items = []
        for attr in head.attrs:
            expr = dict(assignments + agg_assignments).get(attr)
            if expr is None:
                raise RewriteError(
                    f"head attribute {attr!r} has no assignment predicate"
                )
            select_items.append(f"{self._render_expr(expr)} as {attr}")

        grouping = quant.grouping
        distinct = ""
        group_by = ""
        having = ""
        if grouping is not None:
            has_aggs = bool(agg_assignments or agg_comparisons)
            if not has_aggs:
                # Pure deduplication: grouping on all projected expressions.
                assigned = {self._render_expr(e) for _, e in assignments}
                keys = {self._render_expr(k) for k in grouping.keys}
                if keys == assigned:
                    distinct = "distinct "
                else:
                    group_by = "\ngroup by " + ", ".join(
                        self._render_expr(k) for k in grouping.keys
                    )
            elif grouping.keys:
                group_by = "\ngroup by " + ", ".join(
                    self._render_expr(k) for k in grouping.keys
                )
            if agg_comparisons:
                having = "\nhaving " + " and ".join(
                    self._render_formula(f) for f in agg_comparisons
                )

        sql = f"select {distinct}" + ", ".join(select_items)
        if from_sql:
            sql += f"\nfrom {from_sql}"
        if where:
            sql += "\nwhere " + " and ".join(where)
        sql += group_by + having
        return sql

    # -- correlated scalar subqueries -----------------------------------------

    def _scalar_eliminated(self, quant):
        """Bindings inlined as scalar subqueries: (ids to skip, substitutions).

        A correlated γ∅ aggregate-only collection emits exactly one row per
        outer environment, so each head attribute renders as a correlated
        scalar subquery (Fig. 5a/13a) instead of a LATERAL FROM item.
        Bindings are processed in scope order with the substitutions
        installed progressively, so a later inlined binding referencing an
        earlier one renders the reference as a *nested* scalar subquery
        instead of naming an alias that was eliminated from FROM.
        """
        eliminated = set()
        substitutions = {}
        saved = self._scalar
        try:
            for binding in quant.bindings:
                source = binding.source
                if not isinstance(source, n.Collection) or not free_variables(
                    source
                ):
                    continue
                if scalar_inlinable(quant, binding) is not None:
                    continue
                self._scalar = {**saved, **substitutions}
                for attr in source.head.attrs:
                    substitutions[(binding.var, attr)] = (
                        self._render_scalar_subquery(source, attr)
                    )
                eliminated.add(id(binding))
        finally:
            self._scalar = saved
        return eliminated, substitutions

    def _render_scalar_subquery(self, source, attr):
        body = source.body
        parts = self._split_scope(source.head, body)
        _, agg_assignments, _, row_formulas = parts
        expr = dict(agg_assignments)[attr]
        from_sql, consumed = self._render_from(body)
        where = [
            self._render_formula(f)
            for f in row_formulas
            if id(f) not in consumed
        ]
        sub = f"select {self._render_expr(expr)}"
        if from_sql:
            sub += f"\nfrom {from_sql}"
        if where:
            sub += "\nwhere " + " and ".join(where)
        indented = "\n   ".join(sub.splitlines())
        return f"(\n   {indented})"

    @staticmethod
    def _split_scope(head, quant):
        return split_scope(head, quant)

    @staticmethod
    def _assignment_of(predicate, head):
        return assignment_of(predicate, head)

    # -- FROM / joins -----------------------------------------------------------------

    def _render_from(self, quant, skip=frozenset()):
        """Render the FROM clause; returns (sql, ids of consumed conjuncts).

        *skip* holds ids of bindings inlined as scalar subqueries (they are
        not FROM items); an empty FROM renders as "" (a one-row select).
        """
        bindings = {b.var: b for b in quant.bindings}
        consumed = set()
        if quant.join is None:
            items = [
                self._render_binding(b) for b in quant.bindings if id(b) not in skip
            ]
            return ",\n     ".join(items), consumed

        from ..engine.joins import ConditionAssignment, annotation_vars

        row_formulas = [
            c
            for c in n.conjuncts(quant.body)
            if not (isinstance(c, n.Comparison) and c.has_aggregate())
            and self._assignment_of_any(c, quant) is None
        ]
        assignment = ConditionAssignment(quant.join, row_formulas)

        def render_ann(node):
            if isinstance(node, n.JoinVar):
                filters = assignment.filters(node.var)
                consumed.update(id(f) for f in filters)
                text = self._render_binding(bindings[node.var])
                return text, [self._render_formula(f) for f in filters]
            if isinstance(node, n.JoinConst):
                return None, []
            children = [render_ann(c) for c in node.children_list]
            conditions = assignment.conditions(node)
            consumed.update(id(f) for f in conditions)
            condition_texts = [self._render_formula(f) for f in conditions]
            if node.kind == "inner":
                texts = [(t, extra) for t, extra in children if t is not None]
                base, extras = texts[0]
                condition_texts.extend(extras)
                for text, child_extras in texts[1:]:
                    on = " and ".join(condition_texts + child_extras) or "true"
                    base = f"{base}\n  join {text} on {on}"
                    condition_texts = []
                return base, condition_texts
            keyword = {"left": "left join", "full": "full join"}[node.kind]
            (left_text, left_extras) = children[0]
            (right_text, right_extras) = children[1]
            on_parts = condition_texts + left_extras + right_extras
            on = " and ".join(on_parts) or "true"
            return f"{left_text}\n  {keyword} {right_text} on {on}", []

        covered = annotation_vars(quant.join)
        text, leftover = render_ann(quant.join)
        if leftover:
            raise RewriteError("dangling join conditions in annotation rendering")
        uncovered = [
            b for b in quant.bindings if b.var not in covered and id(b) not in skip
        ]
        items = [text] + [self._render_binding(b) for b in uncovered]
        return ",\n     ".join(items), consumed

    def _assignment_of_any(self, conjunct, quant):
        """An assignment to *any* enclosing head cannot be a row formula;
        detect by shape (Head.attr = expr with a capitalized-style var that
        is not bound in this scope)."""
        if not isinstance(conjunct, n.Comparison) or conjunct.op != "=":
            return None
        bound = {b.var for b in quant.bindings}
        for side in (conjunct.left, conjunct.right):
            if isinstance(side, n.Attr) and side.var not in bound:
                other = conjunct.right if side is conjunct.left else conjunct.left
                other_vars = n.vars_used(other)
                if other_vars and other_vars <= bound:
                    return side
        return None

    def _render_binding(self, binding):
        if isinstance(binding.source, n.RelationRef):
            name = binding.source.name
            if not (name[0].isalpha() or name[0] == "_"):
                name = f'"{name}"'
            if binding.var.lower() == binding.source.name.lower():
                return name
            return f"{name} {binding.var}"
        sub = self.render_collection(binding.source)
        indented = "\n    ".join(sub.splitlines())
        keyword = "lateral " if free_variables(binding.source) else ""
        return f"{keyword}(\n    {indented}\n  ) {binding.var}"

    # -- formulas -----------------------------------------------------------------------

    def _render_formula(self, formula):
        if isinstance(formula, n.Comparison):
            return (
                f"{self._render_expr(formula.left)} {formula.op} "
                f"{self._render_expr(formula.right)}"
            )
        if isinstance(formula, n.IsNull):
            suffix = "is not null" if formula.negated else "is null"
            return f"{self._render_expr(formula.expr)} {suffix}"
        if isinstance(formula, n.BoolConst):
            return "true" if formula.value else "false"
        if isinstance(formula, n.And):
            return "(" + " and ".join(
                self._render_formula(c) for c in formula.children_list
            ) + ")"
        if isinstance(formula, n.Or):
            return "(" + " or ".join(
                self._render_formula(c) for c in formula.children_list
            ) + ")"
        if isinstance(formula, n.Not):
            if isinstance(formula.child, n.Quantifier):
                return f"not {self._render_boolean_quantifier(formula.child)}"
            return f"not ({self._render_formula(formula.child)})"
        if isinstance(formula, n.Quantifier):
            return self._render_boolean_quantifier(formula)
        raise RewriteError(f"cannot render formula {type(formula).__name__} as SQL")

    def _render_boolean_quantifier(self, quant):
        eliminated, substitutions = self._scalar_eliminated(quant)
        saved = self._scalar
        if substitutions:
            self._scalar = {**saved, **substitutions}
        try:
            return self._render_boolean_quantifier_body(quant, eliminated)
        finally:
            self._scalar = saved

    def _render_boolean_quantifier_body(self, quant, eliminated):
        conjuncts = n.conjuncts(quant.body)
        agg_comparisons = [
            c
            for c in conjuncts
            if isinstance(c, n.Comparison) and c.has_aggregate()
        ]
        row_formulas = [c for c in conjuncts if c not in agg_comparisons]
        from_sql, consumed = self._render_from(quant, skip=eliminated)
        where = [
            self._render_formula(f) for f in row_formulas if id(f) not in consumed
        ]
        if quant.grouping is not None and not quant.grouping.keys and len(agg_comparisons) == 1:
            # γ∅ + single aggregation comparison: correlated scalar subquery
            # (Fig. 21a / Fig. 9 pattern).
            predicate = agg_comparisons[0]
            agg_side, other_side, op = self._orient_aggregate(predicate)
            sub = f"select {self._render_expr(agg_side)}"
            if from_sql:
                sub += f"\nfrom {from_sql}"
            if where:
                sub += "\nwhere " + " and ".join(where)
            indented = "\n   ".join(sub.splitlines())
            return f"{self._render_expr(other_side)} {op} (\n   {indented})"
        sql = "select 1"
        if from_sql:
            sql += f"\nfrom {from_sql}"
        if where:
            sql += "\nwhere " + " and ".join(where)
        if quant.grouping is not None:
            if quant.grouping.keys:
                sql += "\ngroup by " + ", ".join(
                    self._render_expr(k) for k in quant.grouping.keys
                )
            if agg_comparisons:
                sql += "\nhaving " + " and ".join(
                    self._render_formula(f) for f in agg_comparisons
                )
        indented = "\n   ".join(sql.splitlines())
        return f"exists (\n   {indented})"

    def render_sentence(self, sentence):
        """A sentence becomes a one-value boolean SELECT.

        Negations stay *outside* the quantifier rendering: wrapping the
        boolean select in a further EXISTS would always be true (the inner
        select always yields its one row), so ``¬∃`` renders directly as
        ``select not exists (...)``.
        """
        return self._render_truth_select(sentence.body, negated=False)

    def _render_truth_select(self, body, *, negated):
        if isinstance(body, n.Not):
            return self._render_truth_select(body.child, negated=not negated)
        if isinstance(body, n.Quantifier):
            text = self._render_boolean_quantifier(body)
            if text.startswith("exists ("):
                keyword = "not exists" if negated else "exists"
                return f"select {keyword} {text[len('exists '):]}"
            # γ∅ scalar-subquery shape: a bare comparison.
            return f"select not ({text})" if negated else f"select {text}"
        raise RewriteError("sentence body must be a (negated) quantifier")

    @staticmethod
    def _orient_aggregate(predicate):
        """Return (aggregate-side, other-side, op-with-other-on-left)."""
        flip = {"=": "=", "<>": "<>", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
        left_has = any(isinstance(x, n.AggCall) for x in predicate.left.walk())
        if left_has:
            return predicate.left, predicate.right, flip[predicate.op]
        return predicate.right, predicate.left, predicate.op

    # -- expressions ----------------------------------------------------------------------

    def _render_expr(self, expr):
        if isinstance(expr, n.Attr):
            inlined = self._scalar.get((expr.var, expr.attr))
            if inlined is not None:
                return inlined
            return f"{expr.var}.{expr.attr}"
        if isinstance(expr, n.Const):
            value = expr.value
            if is_null(value):
                return "null"
            if value is True:
                return "true"
            if value is False:
                return "false"
            if isinstance(value, str):
                return f"'{value}'"
            return repr(value)
        if isinstance(expr, n.AggCall):
            if expr.arg is None:
                return "count(*)"
            func = expr.func
            if func.endswith("distinct"):
                return f"{func[:-len('distinct')]}(distinct {self._render_expr(expr.arg)})"
            return f"{func}({self._render_expr(expr.arg)})"
        if isinstance(expr, n.Arith):
            left = self._render_expr(expr.left)
            right = self._render_expr(expr.right)
            if isinstance(expr.left, n.Arith):
                left = f"({left})"
            if isinstance(expr.right, n.Arith):
                right = f"({right})"
            return f"{left} {expr.op} {right}"
        raise RewriteError(f"cannot render expression {type(expr).__name__}")
