"""Evaluation options: one validated object instead of a kwarg pile.

Historically every entry point took ``evaluate(node, database, conventions,
externals, *, planner, decorrelate, backend, db_file)`` and each layer
re-interpreted the loose kwargs — which is how ``planner=False`` came to be
silently ignored whenever ``backend=`` was also given (each kwarg selects an
engine, and the backend dispatch simply never looked at ``planner``).

:class:`EvalOptions` is the replacement: an immutable, validated bundle that
**raises** :class:`~repro.errors.OptionsError` on contradictory combinations
instead of picking a winner silently.  :class:`~repro.api.Session` carries
one; the legacy ``evaluate(...)`` kwargs still work through a deprecation
shim (:func:`warn_legacy`) that warns once per kwarg per process.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

from ..errors import OptionsError
from ..util.deadline import Deadline


def validate_budget(timeout_ms, max_rows, *, flavor=""):
    """Raise :class:`OptionsError` on malformed deadline/budget values.

    Shared by :class:`EvalOptions` and the per-request overrides ``repro
    serve`` accepts, so both reject the same shapes with the same wording.
    *flavor* prefixes the message (e.g. ``"request "``).
    """
    if timeout_ms is not None:
        if isinstance(timeout_ms, bool) or not isinstance(
            timeout_ms, (int, float)
        ):
            raise OptionsError(
                f"{flavor}timeout_ms must be a number of milliseconds, got "
                f"{timeout_ms!r}"
            )
        if timeout_ms <= 0:
            raise OptionsError(
                f"{flavor}timeout_ms must be positive, got {timeout_ms!r}"
            )
    if max_rows is not None:
        if isinstance(max_rows, bool) or not isinstance(max_rows, int):
            raise OptionsError(
                f"{flavor}max_rows must be an integer row count, got "
                f"{max_rows!r}"
            )
        if max_rows <= 0:
            raise OptionsError(
                f"{flavor}max_rows must be positive, got {max_rows!r}"
            )


@dataclass(frozen=True)
class EvalOptions:
    """How a :class:`~repro.api.Session` evaluates queries.

    Parameters
    ----------
    planner:
        ``True`` (default) runs the hash-indexed execution layer; ``False``
        runs the paper's reference nested-loop strategy (the semantic
        oracle).  Contradictory with ``backend`` — use
        ``backend="reference"`` to select the oracle through the registry.
    decorrelate:
        ``False`` disables the FOI → FIO lateral decorrelation pass
        (correlated scopes re-evaluate per outer row).
    backend:
        A registered executable backend name (``"reference"``,
        ``"planner"``, ``"sqlite"``), or None for the in-process engine
        selected by ``planner``.
    db_file:
        Path persisting the SQLite catalog on disk (implies
        ``backend="sqlite"``; any other backend would silently ignore it,
        so the combination raises).
    fallback:
        Whether backend dispatch may substitute the planner (with a
        :class:`~repro.backends.exec.BackendFallbackWarning`) when the
        requested backend cannot honor the query.  ``False`` raises
        :class:`~repro.backends.exec.BackendUnsupported` instead.
    timeout_ms:
        Wall-clock deadline per run, in milliseconds.  Exceeding it raises
        :class:`~repro.errors.QueryTimeout` from whichever execution tier
        notices first (planner loops, fixpoint rounds, or the SQLite
        progress handler).  None (default) = unbounded.
    max_rows:
        Row budget per run: the maximum rows a run may produce across all
        execution tiers (results and materialized intermediates).
        Exceeding it raises :class:`~repro.errors.BudgetExceeded`.
        None (default) = unbounded.
    """

    planner: bool = True
    decorrelate: bool = True
    backend: str | None = None
    db_file: str | None = None
    fallback: bool = True
    timeout_ms: int | float | None = None
    max_rows: int | None = None

    def __post_init__(self):
        validate_budget(self.timeout_ms, self.max_rows)
        if self.backend is not None and not self.planner:
            raise OptionsError(
                f"planner=False and backend={self.backend!r} both select an "
                "engine; use backend='reference' for the nested-loop oracle "
                "instead of combining them"
            )
        if self.db_file is not None:
            if self.backend is None:
                # A persistent catalog implies the SQLite engine (mirrors
                # the CLI's --db-file behavior).
                object.__setattr__(self, "backend", "sqlite")
            elif self.backend != "sqlite":
                raise OptionsError(
                    f"db_file persists a SQLite catalog; backend "
                    f"{self.backend!r} would silently ignore it"
                )

    def with_backend(self, backend):
        """This option set with *backend* substituted for one run.

        ``db_file`` only applies to the SQLite engine, so overriding to a
        different backend drops it for the run instead of raising.
        Validation re-runs: overriding a ``planner=False`` option set with
        a backend still raises (the contradiction the old kwarg pile
        silently swallowed).
        """
        if backend is None or backend == self.backend:
            return self
        db_file = self.db_file if backend == "sqlite" else None
        return replace(self, backend=backend, db_file=db_file)

    def deadline(self, timeout_ms=None, max_rows=None, cancel=None):
        """Arm a :class:`~repro.util.deadline.Deadline` for one run.

        Per-run overrides (e.g. a request-level ``timeout_ms`` from
        ``repro serve``) take precedence over the option set's defaults;
        returns None when no source sets a bound, so the unbounded path
        stays entirely check-free.  A *cancel*
        :class:`~repro.util.deadline.CancelToken` (the serving watchdog's
        handle) arms a Deadline even without a wall/row bound — external
        interruption rides the same stride checks.
        """
        validate_budget(timeout_ms, max_rows, flavor="override ")
        timeout_ms = timeout_ms if timeout_ms is not None else self.timeout_ms
        max_rows = max_rows if max_rows is not None else self.max_rows
        if timeout_ms is None and max_rows is None and cancel is None:
            return None
        return Deadline(timeout_ms=timeout_ms, max_rows=max_rows, cancel=cancel)


#: Legacy ``evaluate(...)`` kwargs that have already warned this process.
_WARNED_LEGACY = set()


def warn_legacy(kwarg, *, stacklevel=3):
    """Deprecation-warn about a legacy ``evaluate`` kwarg, once per process.

    The shim keeps every old call site working; the warning fires exactly
    once per kwarg name per process (not per call), so hot loops that still
    pass ``planner=False`` pay one set lookup, not a warning flood.
    """
    if kwarg in _WARNED_LEGACY:
        return
    _WARNED_LEGACY.add(kwarg)
    warnings.warn(
        f"evaluate(..., {kwarg}=...) is deprecated; pass "
        "options=repro.api.EvalOptions(...) or hold a repro.api.Session",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset_legacy_warnings():
    """Forget which legacy kwargs have warned (test isolation hook)."""
    _WARNED_LEGACY.clear()
