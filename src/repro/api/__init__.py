"""The public Session API: prepared queries, warm state, and serve mode.

>>> from repro.api import Session, EvalOptions
>>> session = Session(db, options=EvalOptions(backend="sqlite"))
>>> prepared = session.prepare("select R.A from R", frontend="sql")
>>> prepared.run()          # warm: cached plan, probe verdict, connection
"""

from .options import EvalOptions, reset_legacy_warnings, warn_legacy
from .session import Explain, Prepared, Session, SessionContext

__all__ = [
    "EvalOptions",
    "Explain",
    "Prepared",
    "Session",
    "SessionContext",
    "reset_legacy_warnings",
    "warn_legacy",
    "serve",
]


def __getattr__(name):
    # ``serve`` pulls in http.server; import it on first touch so the hot
    # evaluate() path does not pay for it.  (importlib, not ``from . import``:
    # the latter re-enters this __getattr__ while the submodule is mid-import.)
    if name == "serve":
        import importlib

        module = importlib.import_module(".serve", __name__)
        globals()["serve"] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
