"""``repro serve``: the Session API over HTTP (stdlib only).

A tiny JSON endpoint that holds one warm :class:`~repro.api.Session` per
catalog, so repeated requests hit the prepared-query LRU, the compiled
scope plans, the capability-probe memo, and the loaded SQLite connection —
the cross-request amortization the ROADMAP's service-mode item asks for.

Protocol
--------
``POST /query`` with a JSON body::

    {"query": "{Q(A) | ∃r ∈ R[Q.A = r.A]}", "frontend": "arc",
     "backend": "sqlite"}

``frontend`` defaults to ``arc`` (any :data:`repro.frontends.FRONTENDS`
language); ``backend`` defaults to the session's configured engine.  The
response body carries the result only — timing rides response *headers*
(``X-Arc-Elapsed-Us``, ``X-Arc-Warm``) so identical requests produce
byte-identical bodies::

    {"kind": "relation", "name": "Q", "columns": ["A"],
     "rows": [[1], [2]], "row_count": 2, "fallback": []}

``GET /healthz`` answers liveness — 200 while healthy, **503 degraded**
while any backend circuit breaker is open; ``GET /stats`` exposes the
session's execution counters, breaker states, per-phase latency quantiles,
``uptime_s`` and ``requests_total`` (``Cache-Control: no-store``, so load
tests computing RPS externally never see a cached body); ``GET /metrics``
serves the same signals in Prometheus text format.  Errors return 400
(bad request / query errors), 404, 408 (:class:`~repro.errors.QueryTimeout`),
413 (:class:`~repro.errors.BudgetExceeded` or an oversized request body),
or 500, always with ``{"error": ..., "error_type": ...}``.

Observability
-------------
The server attaches a *metrics-only* :class:`~repro.obs.Tracer` to its
session (unless the caller installed one): every query phase feeds the
per-phase/per-backend latency histograms behind ``/metrics`` while the
span records themselves are dropped, so a long-lived server holds no trace
memory.  Each ``POST /query`` gets a fresh ``X-Arc-Query-Id`` response
header (the id spans carry for that request), and ``--log-requests``
emits one stdlib-``logging`` line per request — method, path, status,
elapsed time, query id — with ``--log-json`` switching the same logger to
structured JSON lines.

Operational hardening
---------------------
* requests may override the session's budget per run:
  ``{"query": ..., "timeout_ms": 250, "max_rows": 10000}`` — validated
  through the same :func:`repro.api.options.validate_budget` the
  :class:`~repro.api.EvalOptions` constructor uses;
* request bodies are bounded (``max_body_bytes``, default 1 MiB) and an
  oversized ``Content-Length`` is refused *before* reading the body;
* :func:`install_sigterm_handler` makes SIGTERM drain the in-flight
  request and stop accepting, instead of killing mid-response.

The server is deliberately **single-threaded** (:class:`http.server.HTTPServer`):
a Session is not thread-safe, and serializing requests keeps every warm
structure coherent.  Run one process per catalog; scale out with an
external balancer.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, HTTPServer

from ..backends.exec import breaker_states
from ..data.relation import Relation
from ..data.values import NULL, Truth
from ..errors import ArcError, BudgetExceeded, OptionsError, QueryTimeout
from ..frontends import FRONTENDS
from ..obs import MetricsRegistry, Tracer, render_prometheus
from .options import validate_budget

#: Default bound on request bodies (1 MiB): a query is text, not a bulk
#: upload, so anything larger is a client error or an attack.
DEFAULT_MAX_BODY_BYTES = 1 << 20

#: Numeric encoding of breaker states for the ``arc_breaker_state`` gauge.
_BREAKER_STATE_CODE = {"closed": 0, "half-open": 1, "open": 2}


def configure_request_logging(stream=None):
    """The ``repro.serve`` request logger, handler attached once.

    Request lines are emitted pre-formatted (text or JSON), so the handler
    formats nothing beyond the message itself.  *stream* defaults to the
    stdlib's choice (stderr); tests pass a buffer.
    """
    logger = logging.getLogger("repro.serve")
    logger.setLevel(logging.INFO)
    logger.propagate = False
    if stream is not None:
        logger.handlers.clear()
    if stream is not None or not logger.handlers:
        handler = logging.StreamHandler(stream) if stream is not None \
            else logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
    return logger


def _json_value(value):
    return None if value is NULL else value


def _result_body(result, fallback_reasons):
    if isinstance(result, Truth):
        body = {"kind": "truth", "truth": result.name}
    elif isinstance(result, Relation):
        body = {
            "kind": "relation",
            "name": result.name,
            "columns": list(result.schema),
            "rows": [
                [_json_value(row[attr]) for attr in result.schema]
                for row in result.sorted_rows()
            ],
            "row_count": len(result),
        }
    else:  # pragma: no cover - evaluate() only returns Relation or Truth
        body = {"kind": "value", "value": repr(result)}
    body["fallback"] = list(fallback_reasons)
    return body


def _prometheus_extra(server):
    """Counter/gauge rows for ``/metrics`` beyond the tracer's histograms:
    the engine's ExecutionStats, session cache counters, breaker states,
    and the server's own uptime/request totals."""
    session = server.session
    stats_samples = [
        ({"counter": name}, value)
        for name, value in sorted(session.stats.as_dict().items())
    ]
    stats_samples += [
        ({"counter": "catalog_loads"}, session.catalog_loads),
        ({"counter": "catalog_hits"}, session.catalog_hits),
        ({"counter": "probe_hits"}, session.probe_hits),
    ]
    extra = [
        (
            "arc_stats_total",
            "counter",
            "Engine ExecutionStats and session cache counters.",
            stats_samples,
        ),
        (
            "arc_requests_total",
            "counter",
            "HTTP query requests served.",
            [({}, server.requests_served)],
        ),
        (
            "arc_uptime_seconds",
            "gauge",
            "Seconds since the server started.",
            [({}, round(time.monotonic() - server.started, 3))],
        ),
    ]
    breakers = breaker_states()
    if breakers:
        extra.append((
            "arc_breaker_state",
            "gauge",
            "Circuit breaker state per backend (0=closed 1=half-open 2=open).",
            [
                ({"backend": name}, _BREAKER_STATE_CODE[snap["state"]])
                for name, snap in breakers.items()
            ],
        ))
        extra.append((
            "arc_breaker_trips_total",
            "counter",
            "Circuit breaker trips per backend.",
            [({"backend": name}, snap["trips"]) for name, snap in breakers.items()],
        ))
    return extra


class QueryServer(HTTPServer):
    """An HTTP server bound to one warm Session (one catalog)."""

    def __init__(self, address, session, *, quiet=True,
                 max_body_bytes=DEFAULT_MAX_BODY_BYTES,
                 log_requests=False, log_json=False):
        super().__init__(address, _Handler)
        self.session = session
        self.quiet = quiet
        self.max_body_bytes = max_body_bytes
        self.started = time.monotonic()
        self.requests_served = 0
        self.log_requests = log_requests or log_json
        self.log_json = log_json
        self.logger = configure_request_logging() if self.log_requests else None
        # Metrics-only tracing: phase durations feed the histograms behind
        # /metrics and /stats; spans drop immediately (keep_spans=False),
        # so serving forever accumulates no trace memory.  A tracer the
        # caller already installed is respected — its registry (if any)
        # backs /metrics instead.
        if session.tracer is None:
            self.metrics = MetricsRegistry()
            session.tracer = Tracer(metrics=self.metrics, keep_spans=False)
        else:
            if session.tracer.metrics is None:
                session.tracer.metrics = MetricsRegistry()
            self.metrics = session.tracer.metrics

    @property
    def url(self):
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:  # pragma: no cover - debugging aid
            super().log_message(format, *args)

    def log_request(self, code="-", size="-"):
        """One structured line per request (``--log-requests``).

        ``send_response`` calls this for every response, so each request —
        success or error — logs exactly once, with its status code, elapsed
        time, and (for ``/query``) the query id the response headers carry.
        """
        server = self.server
        if not server.log_requests:
            return
        code = getattr(code, "value", code)
        started = getattr(self, "_request_started", None)
        elapsed_ms = (
            None if started is None
            else round((time.perf_counter() - started) * 1e3, 3)
        )
        query_id = getattr(self, "_query_id", None)
        if server.log_json:
            server.logger.info(json.dumps(
                {
                    "ts": round(time.time(), 6),
                    "method": self.command,
                    "path": self.path,
                    "status": int(code),
                    "elapsed_ms": elapsed_ms,
                    "query_id": query_id,
                },
                sort_keys=True,
            ))
        else:
            parts = [f"{self.command} {self.path} {code}"]
            if elapsed_ms is not None:
                parts.append(f"{elapsed_ms:.3f}ms")
            if query_id is not None:
                parts.append(f"qid={query_id}")
            server.logger.info(" ".join(parts))

    def _send_json(self, status, body, headers=()):
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        # Every response to an identified request — success *or* error —
        # carries the query id, so client logs always correlate.
        query_id = getattr(self, "_query_id", None)
        if query_id is not None:
            self.send_header("X-Arc-Query-Id", query_id)
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_text(self, status, text, content_type="text/plain; charset=utf-8"):
        payload = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(payload)

    # -- GET ---------------------------------------------------------------

    def do_GET(self):
        self._request_started = time.perf_counter()
        self._query_id = None
        if self.path == "/healthz":
            session = self.server.session
            breakers = breaker_states()
            degraded = sorted(
                name
                for name, snap in breakers.items()
                if snap["state"] == "open"
            )
            self._send_json(
                503 if degraded else 200,
                {
                    "status": "degraded" if degraded else "ok",
                    "degraded_backends": degraded,
                    "breakers": breakers,
                    "relations": sorted(session.database.names()),
                    "backend": session.options.backend or "planner",
                    "requests": self.server.requests_served,
                    "uptime_s": round(time.monotonic() - self.server.started, 3),
                },
            )
            return
        if self.path == "/stats":
            server = self.server
            session = server.session
            stats = session.stats.as_dict()
            stats.update(
                catalog_loads=session.catalog_loads,
                catalog_hits=session.catalog_hits,
                probe_hits=session.probe_hits,
                requests=server.requests_served,
                requests_total=server.requests_served,
                uptime_s=round(time.monotonic() - server.started, 3),
                breakers=breaker_states(),
                latency=server.metrics.latency_summary(),
            )
            self._send_json(
                200, stats, headers=(("Cache-Control", "no-store"),)
            )
            return
        if self.path == "/metrics":
            self._send_text(
                200,
                render_prometheus(
                    self.server.metrics, extra=_prometheus_extra(self.server)
                ),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
            return
        self._send_json(404, {"error": f"unknown path {self.path!r}"})

    # -- POST /query -------------------------------------------------------

    def _error(self, status, exc_or_message, *, close=False, headers=()):
        if isinstance(exc_or_message, BaseException):
            body = {
                "error": str(exc_or_message),
                "error_type": type(exc_or_message).__name__,
            }
        else:
            body = {"error": exc_or_message, "error_type": "BadRequest"}
        headers = tuple(headers)
        if close:
            self.close_connection = True
            headers += (("Connection", "close"),)
        self._send_json(status, body, headers=headers)

    def do_POST(self):
        self._request_started = time.perf_counter()
        # A fresh id per request, assigned before any parsing: even a
        # malformed request's error response ties back to the server logs.
        self._query_id = uuid.uuid4().hex[:16]
        # Drain the request body before any response: on a keep-alive
        # (HTTP/1.1) connection, unread body bytes would be parsed as the
        # next request line, desyncing every follow-up request.
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            # Cannot drain an unknown length: refuse and drop the socket.
            self._error(400, "bad Content-Length", close=True)
            return
        if length < 0:
            self._error(400, "negative Content-Length", close=True)
            return
        if length > self.server.max_body_bytes:
            # Refused *before* reading: draining an attacker-sized body
            # would be the very resource sink the bound exists to prevent.
            self._error(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.server.max_body_bytes} byte limit",
                close=True,
            )
            return
        payload = self.rfile.read(length)
        if self.path != "/query":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            request = json.loads(payload or b"{}")
        except json.JSONDecodeError:
            self._send_json(400, {"error": "request body must be JSON"})
            return
        if not isinstance(request, dict) or not isinstance(
            request.get("query"), str
        ):
            self._send_json(
                400, {"error": 'request must be {"query": "...", ...}'}
            )
            return
        frontend = request.get("frontend", "arc")
        if frontend not in FRONTENDS:
            self._send_json(
                400,
                {"error": f"unknown frontend {frontend!r}; choose from {FRONTENDS}"},
            )
            return
        timeout_ms = request.get("timeout_ms")
        max_rows = request.get("max_rows")
        try:
            validate_budget(timeout_ms, max_rows, flavor="request ")
        except OptionsError as exc:
            self._error(400, exc)
            return
        session = self.server.session
        # The response header ties client-side logs to the spans/metrics
        # this request produced (the session tracer pins the request id on
        # every root span of the run).
        if session.tracer is not None:
            session.tracer.begin(self._query_id)
        start = time.perf_counter()
        try:
            prepared = session.prepare(request["query"], frontend)
            warm = prepared.run_count > 0
            info = prepared.run_info(
                backend=request.get("backend"),
                timeout_ms=timeout_ms,
                max_rows=max_rows,
            )
        except QueryTimeout as exc:
            # The query is dead but the connection is fine: answer 408 and
            # keep serving (the body was drained above).
            self._error(408, exc)
            return
        except BudgetExceeded as exc:
            self._error(413, exc)
            return
        except ArcError as exc:
            self._error(400, exc)
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, exc)
            return
        elapsed_us = int((time.perf_counter() - start) * 1_000_000)
        self.server.requests_served += 1
        self._send_json(
            200,
            _result_body(info["result"], info["fallback_reasons"]),
            headers=(
                ("X-Arc-Elapsed-Us", str(elapsed_us)),
                ("X-Arc-Warm", "1" if warm else "0"),
            ),
        )


def make_server(session, host="127.0.0.1", port=0, *, quiet=True,
                max_body_bytes=DEFAULT_MAX_BODY_BYTES,
                log_requests=False, log_json=False):
    """Bind a :class:`QueryServer` for *session* (``port=0`` = ephemeral).

    The caller drives it: ``server.serve_forever()`` to block,
    ``server.handle_request()`` for one request, ``server.server_close()``
    to release the socket.  ``server.url`` reports the bound address.
    ``log_requests`` emits one ``repro.serve`` logging line per request;
    ``log_json`` switches those lines to structured JSON (and implies
    ``log_requests``).
    """
    return QueryServer(
        (host, port), session, quiet=quiet, max_body_bytes=max_body_bytes,
        log_requests=log_requests, log_json=log_json,
    )


def install_sigterm_handler(server, *, signals=(signal.SIGTERM, signal.SIGINT)):
    """Make *signals* shut *server* down gracefully; returns the handler.

    ``HTTPServer.shutdown()`` blocks until ``serve_forever`` exits, and the
    signal handler runs **on** the serving thread — calling it directly
    would deadlock.  The handler instead fires ``shutdown()`` from a helper
    thread: ``serve_forever`` finishes the in-flight request (the loop is
    synchronous, so a request in progress always completes and its response
    is written) and then stops accepting.  Idempotent under signal storms:
    only the first delivery spawns the shutdown thread.
    """
    fired = []

    def _handler(signum, frame):
        if fired:
            return
        fired.append(signum)
        threading.Thread(target=server.shutdown, daemon=True).start()

    for signum in signals:
        signal.signal(signum, _handler)
    return _handler
