"""``repro serve``: the Session API over HTTP (stdlib only).

A tiny JSON endpoint that holds one warm :class:`~repro.api.Session` per
catalog, so repeated requests hit the prepared-query LRU, the compiled
scope plans, the capability-probe memo, and the loaded SQLite connection —
the cross-request amortization the ROADMAP's service-mode item asks for.

Protocol
--------
``POST /query`` with a JSON body::

    {"query": "{Q(A) | ∃r ∈ R[Q.A = r.A]}", "frontend": "arc",
     "backend": "sqlite"}

``frontend`` defaults to ``arc`` (any :data:`repro.frontends.FRONTENDS`
language); ``backend`` defaults to the session's configured engine.  The
response body carries the result only — timing rides response *headers*
(``X-Arc-Elapsed-Us``, ``X-Arc-Warm``) so identical requests produce
byte-identical bodies::

    {"kind": "relation", "name": "Q", "columns": ["A"],
     "rows": [[1], [2]], "row_count": 2, "fallback": []}

``GET /healthz`` answers liveness; ``GET /stats`` exposes the session's
execution counters.  Errors return 400 (bad request / query errors) or
500 with ``{"error": ...}``.

The server is deliberately **single-threaded** (:class:`http.server.HTTPServer`):
a Session is not thread-safe, and serializing requests keeps every warm
structure coherent.  Run one process per catalog; scale out with an
external balancer.
"""

from __future__ import annotations

import json
import time
import warnings
from http.server import BaseHTTPRequestHandler, HTTPServer

from ..data.relation import Relation
from ..data.values import NULL, Truth
from ..errors import ArcError
from ..frontends import FRONTENDS


def _json_value(value):
    return None if value is NULL else value


def _result_body(result, fallback_reasons):
    if isinstance(result, Truth):
        body = {"kind": "truth", "truth": result.name}
    elif isinstance(result, Relation):
        body = {
            "kind": "relation",
            "name": result.name,
            "columns": list(result.schema),
            "rows": [
                [_json_value(row[attr]) for attr in result.schema]
                for row in result.sorted_rows()
            ],
            "row_count": len(result),
        }
    else:  # pragma: no cover - evaluate() only returns Relation or Truth
        body = {"kind": "value", "value": repr(result)}
    body["fallback"] = list(fallback_reasons)
    return body


class QueryServer(HTTPServer):
    """An HTTP server bound to one warm Session (one catalog)."""

    def __init__(self, address, session, *, quiet=True):
        super().__init__(address, _Handler)
        self.session = session
        self.quiet = quiet
        self.started = time.monotonic()
        self.requests_served = 0

    @property
    def url(self):
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:  # pragma: no cover - debugging aid
            super().log_message(format, *args)

    def _send_json(self, status, body, headers=()):
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    # -- GET ---------------------------------------------------------------

    def do_GET(self):
        if self.path == "/healthz":
            session = self.server.session
            self._send_json(
                200,
                {
                    "status": "ok",
                    "relations": sorted(session.database.names()),
                    "backend": session.options.backend or "planner",
                    "requests": self.server.requests_served,
                    "uptime_s": round(time.monotonic() - self.server.started, 3),
                },
            )
            return
        if self.path == "/stats":
            session = self.server.session
            stats = session.stats.as_dict()
            stats.update(
                catalog_loads=session.catalog_loads,
                catalog_hits=session.catalog_hits,
                probe_hits=session.probe_hits,
                requests=self.server.requests_served,
            )
            self._send_json(200, stats)
            return
        self._send_json(404, {"error": f"unknown path {self.path!r}"})

    # -- POST /query -------------------------------------------------------

    def do_POST(self):
        # Drain the request body before any response: on a keep-alive
        # (HTTP/1.1) connection, unread body bytes would be parsed as the
        # next request line, desyncing every follow-up request.
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.close_connection = True  # cannot drain an unknown length
            self._send_json(
                400, {"error": "bad Content-Length"},
                headers=(("Connection", "close"),),
            )
            return
        payload = self.rfile.read(length)
        if self.path != "/query":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            request = json.loads(payload or b"{}")
        except json.JSONDecodeError:
            self._send_json(400, {"error": "request body must be JSON"})
            return
        if not isinstance(request, dict) or not isinstance(
            request.get("query"), str
        ):
            self._send_json(
                400, {"error": 'request must be {"query": "...", ...}'}
            )
            return
        frontend = request.get("frontend", "arc")
        if frontend not in FRONTENDS:
            self._send_json(
                400,
                {"error": f"unknown frontend {frontend!r}; choose from {FRONTENDS}"},
            )
            return
        session = self.server.session
        start = time.perf_counter()
        try:
            prepared = session.prepare(request["query"], frontend)
            warm = prepared.run_count > 0
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                result = prepared.run(backend=request.get("backend"))
        except ArcError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        elapsed_us = int((time.perf_counter() - start) * 1_000_000)
        reasons = []
        for entry in caught:
            reasons.extend(getattr(entry.message, "reasons", ()))
        self.server.requests_served += 1
        self._send_json(
            200,
            _result_body(result, reasons),
            headers=(
                ("X-Arc-Elapsed-Us", str(elapsed_us)),
                ("X-Arc-Warm", "1" if warm else "0"),
            ),
        )


def make_server(session, host="127.0.0.1", port=0, *, quiet=True):
    """Bind a :class:`QueryServer` for *session* (``port=0`` = ephemeral).

    The caller drives it: ``server.serve_forever()`` to block,
    ``server.handle_request()`` for one request, ``server.server_close()``
    to release the socket.  ``server.url`` reports the bound address.
    """
    return QueryServer((host, port), session, quiet=quiet)
