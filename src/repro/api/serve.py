"""``repro serve``: the Session API over HTTP (stdlib only).

A JSON endpoint backed by the :mod:`repro.serve` concurrency subsystem: a
threaded front end (one handler thread per connection) dispatching to a
fixed **worker pool** where each worker owns its own warm
:class:`~repro.api.Session` — per-worker prepared-query LRUs, private
SQLite connections, capability-probe memos — so repeated requests hit
every cache while distinct requests execute in parallel.

Protocol
--------
``POST /query`` with a JSON body::

    {"query": "{Q(A) | ∃r ∈ R[Q.A = r.A]}", "frontend": "arc",
     "backend": "sqlite", "catalog": "default"}

``frontend`` defaults to ``arc`` (any :data:`repro.frontends.FRONTENDS`
language); ``backend`` defaults to the session's configured engine;
``catalog`` (optional) selects one of the server's named catalogs for
multi-catalog serving.  The response body carries the result only —
timing rides response *headers* (``X-Arc-Elapsed-Us``, ``X-Arc-Warm``,
``X-Arc-Worker``) so identical requests produce byte-identical bodies::

    {"kind": "relation", "name": "Q", "columns": ["A"],
     "rows": [[1], [2]], "row_count": 2, "fallback": []}

Concurrency semantics
---------------------
* **Coalescing**: N concurrent identical requests (same catalog, query,
  frontend, backend, and budget) fold into **one** execution; followers
  receive the leader's byte-identical body with ``X-Arc-Coalesced: 1``.
* **Admission control**: the pool's job queue is bounded
  (``--queue-depth``); a full queue answers **429** with ``Retry-After``
  and ``error_type: "AdmissionError"`` instead of buffering overload.
  A draining server answers 503.
* **Deadlines** still apply per request *inside* the worker
  (``timeout_ms`` / ``max_rows``), so admission and execution budgets
  compose.

Self-healing
------------
The pool supervises itself (see :mod:`repro.serve.pool`): a crashed
worker is respawned with fresh warm Sessions and the in-flight caller
gets a typed 500 (``error_type: "WorkerCrash"``); a request fingerprint
that kills workers repeatedly is quarantined and answers **422**
(``error_type: "PoisonQuery"``) with ``Retry-After`` until its TTL
lapses; a stuck query is interrupted by the watchdog at its hard wall
cap (``--hard-timeout-ms``) and answers 408 like any deadline; and
deadline-aware shedding refuses requests (429 + ``Retry-After``) whose
budget the queue would already consume.  ``/stats`` exposes
``pool.workers_respawned`` / ``watchdog_cancels`` / ``shed_total`` and a
``quarantine`` block; ``/metrics`` exports the matching
``arc_worker_respawns_total`` / ``arc_watchdog_cancels_total`` /
``arc_shed_total`` / ``arc_quarantined_total`` counters and the
``arc_quarantine_size`` gauge.

``GET /healthz`` answers liveness — 200 while healthy, **503 degraded**
while any backend circuit breaker is open *or the job queue is
saturated*; ``GET /stats`` exposes aggregated execution counters across
every worker session, breaker states, per-phase latency quantiles, and a
``pool`` block (``workers``, ``busy``, ``queue_depth``,
``coalesced_total``, per-worker handled counts); ``GET /metrics`` serves
the same signals in Prometheus text format (pool gauges, coalescing
counter, per-worker latency histograms).  Errors return 400 (bad request
/ query errors), 404, 408 (:class:`~repro.errors.QueryTimeout`), 413
(:class:`~repro.errors.BudgetExceeded` or an oversized request body), 422
(:class:`~repro.errors.PoisonQuery`), 429 (admission/shedding), or 500
(including :class:`~repro.errors.WorkerCrash`), always with
``{"error": ..., "error_type": ...}``.

Observability
-------------
The server attaches a *metrics-only* :class:`~repro.obs.Tracer` to every
worker session (sharing one locked registry): every query phase feeds the
per-phase/per-backend latency histograms behind ``/metrics`` while the
span records themselves are dropped, so a long-lived server holds no
trace memory.  Each ``POST /query`` gets a fresh ``X-Arc-Query-Id``
response header, and ``--log-requests`` emits one stdlib-``logging`` line
per request — method, path, status, elapsed time, query id — with
``--log-json`` switching the same logger to structured JSON lines.

Shutdown
--------
:func:`install_sigterm_handler` makes SIGTERM/SIGINT **drain**: stop
accepting, finish every queued and in-flight request (responses are
written), then close.  ``server.server_close()`` performs the same drain
when no signal arrived first.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..backends.exec import breaker_states
from ..data.relation import Relation
from ..data.values import NULL, Truth
from ..engine.planner import ExecutionStats
from ..errors import (
    ArcError,
    BudgetExceeded,
    OptionsError,
    PoisonQuery,
    QueryTimeout,
    WorkerCrash,
)
from ..frontends import FRONTENDS
from ..obs import MetricsRegistry, Tracer, render_prometheus
from ..serve import (
    DEFAULT_POISON_THRESHOLD,
    DEFAULT_QUARANTINE_TTL_S,
    RETRY_AFTER_S,
    AdmissionError,
    Coalescer,
    SessionFactory,
    WorkerPool,
    poison_fingerprint,
)
from ..serve.pool import DEFAULT_QUEUE_DEPTH, DEFAULT_SESSION_LIMIT
from ..util import failpoints
from ..util.deadline import CancelToken
from .options import validate_budget

#: Default bound on request bodies (1 MiB): a query is text, not a bulk
#: upload, so anything larger is a client error or an attack.
DEFAULT_MAX_BODY_BYTES = 1 << 20

#: Upper bound a handler thread waits for its own job / a coalesced
#: leader.  Generous on purpose: per-request deadlines (``timeout_ms``)
#: are the real budget; this is only a backstop against a wedged worker.
_JOB_WAIT_S = 600.0

#: Numeric encoding of breaker states for the ``arc_breaker_state`` gauge.
_BREAKER_STATE_CODE = {"closed": 0, "half-open": 1, "open": 2}


def configure_request_logging(stream=None):
    """The ``repro.serve`` request logger, handler attached once.

    Request lines are emitted pre-formatted (text or JSON), so the handler
    formats nothing beyond the message itself.  *stream* defaults to the
    stdlib's choice (stderr); tests pass a buffer.
    """
    logger = logging.getLogger("repro.serve")
    logger.setLevel(logging.INFO)
    logger.propagate = False
    if stream is not None:
        logger.handlers.clear()
    if stream is not None or not logger.handlers:
        handler = logging.StreamHandler(stream) if stream is not None \
            else logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
    return logger


def _json_value(value):
    return None if value is NULL else value


def _result_body(result, fallback_reasons):
    if isinstance(result, Truth):
        body = {"kind": "truth", "truth": result.name}
    elif isinstance(result, Relation):
        body = {
            "kind": "relation",
            "name": result.name,
            "columns": list(result.schema),
            "rows": [
                [_json_value(row[attr]) for attr in result.schema]
                for row in result.sorted_rows()
            ],
            "row_count": len(result),
        }
    else:  # pragma: no cover - evaluate() only returns Relation or Truth
        body = {"kind": "value", "value": repr(result)}
    body["fallback"] = list(fallback_reasons)
    return body


class Outcome:
    """One request's computed answer: status + pre-serialized body.

    The body serializes **once** (sorted keys), so a coalesced flight fans
    the exact same bytes out to every follower — the byte-identical
    contract the coalescer depends on.
    """

    __slots__ = ("status", "payload", "headers")

    def __init__(self, status, body, headers=()):
        self.status = status
        self.payload = json.dumps(body, sort_keys=True).encode("utf-8")
        self.headers = tuple(headers)


def _error_outcome(exc_or_message, status, headers=(), worker=None):
    if isinstance(exc_or_message, BaseException):
        body = {
            "error": str(exc_or_message),
            "error_type": type(exc_or_message).__name__,
        }
    else:
        body = {"error": exc_or_message, "error_type": "BadRequest"}
    headers = tuple(headers)
    if worker is not None:
        headers += (("X-Arc-Worker", str(worker)),)
    return Outcome(status, body, headers)


def _prometheus_extra(server):
    """Counter/gauge rows for ``/metrics`` beyond the tracer's histograms:
    aggregated engine ExecutionStats and session cache counters across the
    worker pool, pool gauges, coalescing totals, breaker states, and the
    server's own uptime/request totals."""
    totals, loads, hits, probes = server.aggregate_stats()
    stats_samples = [
        ({"counter": name}, value) for name, value in sorted(totals.items())
    ]
    stats_samples += [
        ({"counter": "catalog_loads"}, loads),
        ({"counter": "catalog_hits"}, hits),
        ({"counter": "probe_hits"}, probes),
    ]
    pool = server.pool.snapshot()
    extra = [
        (
            "arc_stats_total",
            "counter",
            "Engine ExecutionStats and session cache counters "
            "(summed across worker sessions).",
            stats_samples,
        ),
        (
            "arc_requests_total",
            "counter",
            "HTTP query requests served.",
            [({}, server.requests_served)],
        ),
        (
            "arc_pool_workers",
            "gauge",
            "Worker threads in the serving pool.",
            [({}, pool["workers"])],
        ),
        (
            "arc_pool_busy",
            "gauge",
            "Workers executing a job right now.",
            [({}, pool["busy"])],
        ),
        (
            "arc_pool_queue_depth",
            "gauge",
            "Jobs queued but not yet started.",
            [({}, pool["queue_depth"])],
        ),
        (
            "arc_pool_queue_capacity",
            "gauge",
            "Queue depth at which admission control refuses (429).",
            [({}, pool["queue_capacity"])],
        ),
        (
            "arc_coalesced_total",
            "counter",
            "Requests answered from another in-flight execution.",
            [({}, server.coalescer.coalesced_total)],
        ),
        (
            "arc_worker_requests_total",
            "counter",
            "Jobs completed per pool worker.",
            [
                ({"worker": str(row["worker"])}, row["handled"])
                for row in pool["per_worker"]
            ],
        ),
        (
            "arc_quarantine_size",
            "gauge",
            "Request fingerprints currently quarantined as poison.",
            [({}, len(server.pool.quarantine))],
        ),
        (
            "arc_uptime_seconds",
            "gauge",
            "Seconds since the server started.",
            [({}, round(time.monotonic() - server.started, 3))],
        ),
    ]
    breakers = breaker_states()
    if breakers:
        extra.append((
            "arc_breaker_state",
            "gauge",
            "Circuit breaker state per backend (0=closed 1=half-open 2=open).",
            [
                ({"backend": name}, _BREAKER_STATE_CODE[snap["state"]])
                for name, snap in breakers.items()
            ],
        ))
        extra.append((
            "arc_breaker_trips_total",
            "counter",
            "Circuit breaker trips per backend.",
            [({"backend": name}, snap["trips"]) for name, snap in breakers.items()],
        ))
    return extra


class QueryServer(ThreadingHTTPServer):
    """An HTTP front end over a worker pool of warm Sessions.

    *session* is the control session: it defines the default catalog,
    conventions, externals, and options, and worker 0 adopts it (so a
    single-worker server executes on exactly the session object the
    caller holds).  Extra *catalogs* (name → Database) become selectable
    via the request ``catalog`` field; workers build Sessions for them
    lazily through a bounded per-worker LRU.
    """

    # Handler threads are daemonic: a keep-alive connection parked in
    # readline() must not block process exit.  Graceful shutdown happens
    # at the pool layer (drain), not by joining handler threads.
    daemon_threads = True

    def __init__(self, address, session, *, workers=1,
                 queue_depth=DEFAULT_QUEUE_DEPTH,
                 session_limit=DEFAULT_SESSION_LIMIT, catalogs=None,
                 quiet=True, max_body_bytes=DEFAULT_MAX_BODY_BYTES,
                 log_requests=False, log_json=False,
                 hard_timeout_ms=None, shed_threshold_ms=None,
                 poison_threshold=DEFAULT_POISON_THRESHOLD,
                 quarantine_ttl_s=DEFAULT_QUARANTINE_TTL_S):
        super().__init__(address, _Handler)
        self.session = session
        self.quiet = quiet
        self.max_body_bytes = max_body_bytes
        self.started = time.monotonic()
        self.requests_served = 0
        #: Backend executions performed (coalesced followers excluded).
        self.queries_executed = 0
        self._counts_lock = threading.Lock()
        self.log_requests = log_requests or log_json
        self.log_json = log_json
        self.logger = configure_request_logging() if self.log_requests else None
        # Metrics-only tracing: phase durations feed the histograms behind
        # /metrics and /stats; spans drop immediately (keep_spans=False),
        # so serving forever accumulates no trace memory.  A tracer the
        # caller already installed is respected — its registry (if any)
        # backs /metrics instead.
        if session.tracer is None:
            self.metrics = MetricsRegistry()
            session.tracer = Tracer(metrics=self.metrics, keep_spans=False)
        else:
            if session.tracer.metrics is None:
                session.tracer.metrics = MetricsRegistry()
            self.metrics = session.tracer.metrics
        if workers > 1:
            # Multi-worker servers isolate the adopted session's SQLite
            # connections from the process-wide cache, so worker 0 never
            # shares a handle with code outside the pool.
            session.private_connections = True
        self.factory = SessionFactory.from_session(
            session, metrics=self.metrics, catalogs=catalogs
        )
        self.pool = WorkerPool(
            self.factory, workers, queue_depth,
            session_limit=session_limit, metrics=self.metrics,
            adopt=session, hard_timeout_ms=hard_timeout_ms,
            shed_threshold_ms=shed_threshold_ms,
            poison_threshold=poison_threshold,
            quarantine_ttl_s=quarantine_ttl_s,
        )
        self.coalescer = Coalescer()

    @property
    def url(self):
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    # -- the query path ----------------------------------------------------

    def execute_query(self, catalog, query, frontend, backend, timeout_ms,
                      max_rows, query_id):
        """Run one validated request through coalescing, admission, and
        the pool; ``(outcome, coalesced)``.

        The coalesce key is the full request identity — two requests that
        could produce different bodies never share an execution.  The
        leader publishes its outcome (success *or* error) in a
        ``finally`` — even if the leader's own thread dies between submit
        and publish (fault injection: the ``pool.leader`` failpoint), the
        backstop publishes a typed 500 so followers are never stranded.
        """
        key = (catalog, query, frontend, backend, timeout_ms, max_rows)
        entry, leader = self.coalescer.join(key)
        if not leader:
            outcome = entry.wait(_JOB_WAIT_S)
            if outcome is None:  # pragma: no cover - wedged-leader backstop
                outcome = _error_outcome(
                    "coalesced execution did not complete in time", 500
                )
            return outcome, True
        outcome = None
        try:
            try:
                # The soft deadline the shedding estimate compares against:
                # the request's own budget, else the session default.
                soft_ms = timeout_ms
                if soft_ms is None:
                    soft_ms = self.session.options.timeout_ms
                cancel = CancelToken()
                fingerprint = poison_fingerprint(
                    catalog, query, frontend, backend
                )
                try:
                    future = self.pool.submit(
                        lambda worker: self._run_query(
                            worker, catalog, query, frontend, backend,
                            timeout_ms, max_rows, query_id, cancel,
                        ),
                        timeout_ms=soft_ms, fingerprint=fingerprint,
                        cancel=cancel,
                    )
                except PoisonQuery as exc:
                    headers = (
                        (("Retry-After", str(exc.retry_after_s)),)
                        if exc.retry_after_s else ()
                    )
                    outcome = _error_outcome(exc, 422, headers)
                else:
                    failpoints.hit("pool.leader")
                    outcome = future.wait(_JOB_WAIT_S)
            except AdmissionError as exc:
                outcome = _error_outcome(
                    exc, exc.status,
                    (("Retry-After", str(exc.retry_after_s)),),
                )
            except WorkerCrash as exc:
                outcome = _error_outcome(exc, 500)
            except Exception as exc:  # pragma: no cover - defensive
                outcome = _error_outcome(exc, 500)
        finally:
            if outcome is None:
                outcome = _error_outcome(
                    "coalescing leader died before publishing its outcome",
                    500,
                )
            self.coalescer.publish(key, outcome)
        return outcome, False

    def _run_query(self, worker, catalog, query, frontend, backend,
                   timeout_ms, max_rows, query_id, cancel=None):
        """The worker-side job: run on the worker's Session, map errors to
        HTTP statuses, and serialize the answer exactly once.

        *cancel* is the job's :class:`~repro.util.deadline.CancelToken` —
        shared with the pool's watchdog, which fires it when the job blows
        past its hard wall cap; the run then unwinds as
        :class:`~repro.errors.QueryTimeout` (→ 408) like any deadline.
        """
        session = worker.session_for(catalog)
        # The response header ties client-side logs to the spans/metrics
        # this request produced (the session tracer pins the request id on
        # every root span of the run).
        if session.tracer is not None:
            session.tracer.begin(query_id)
        start = time.perf_counter()
        try:
            prepared = session.prepare(query, frontend)
            warm = prepared.run_count > 0
            info = prepared.run_info(
                backend=backend, timeout_ms=timeout_ms, max_rows=max_rows,
                cancel=cancel,
            )
        except QueryTimeout as exc:
            # The query is dead but the connection is fine: answer 408 and
            # keep serving.
            return _error_outcome(exc, 408, worker=worker.index)
        except BudgetExceeded as exc:
            return _error_outcome(exc, 413, worker=worker.index)
        except ArcError as exc:
            return _error_outcome(exc, 400, worker=worker.index)
        except Exception as exc:  # pragma: no cover - defensive
            return _error_outcome(exc, 500, worker=worker.index)
        elapsed_us = int((time.perf_counter() - start) * 1_000_000)
        with self._counts_lock:
            self.queries_executed += 1
        return Outcome(
            200,
            _result_body(info["result"], info["fallback_reasons"]),
            headers=(
                ("X-Arc-Elapsed-Us", str(elapsed_us)),
                ("X-Arc-Warm", "1" if warm else "0"),
                ("X-Arc-Worker", str(worker.index)),
            ),
        )

    def count_served(self):
        with self._counts_lock:
            self.requests_served += 1

    # -- aggregation -------------------------------------------------------

    def aggregate_stats(self):
        """Execution counters summed across every live worker Session
        **plus** the retired totals harvested from crashed workers:
        ``(stats totals, catalog_loads, catalog_hits, probe_hits)``.

        A respawned worker's fresh Sessions count from zero, but its dead
        predecessor's totals live on in the pool's retired ledger — the
        aggregate never goes backwards across a crash.
        """
        totals = ExecutionStats().as_dict()
        loads = hits = probes = 0
        for session in self.pool.sessions():
            for name, value in session.stats.as_dict().items():
                totals[name] = totals.get(name, 0) + value
            loads += session.catalog_loads
            hits += session.catalog_hits
            probes += session.probe_hits
        retired, (r_loads, r_hits, r_probes) = self.pool.retired_stats()
        for name, value in retired.items():
            totals[name] = totals.get(name, 0) + value
        return totals, loads + r_loads, hits + r_hits, probes + r_probes

    # -- lifecycle ---------------------------------------------------------

    def drain(self):
        """Stop accepting, finish queued + in-flight requests, stop workers.

        Safe to call from any non-serving thread (the SIGTERM handler's
        helper thread does); idempotent.
        """
        self.shutdown()
        self.pool.drain()

    def server_close(self):
        # Drain before releasing the socket so every accepted request gets
        # its response; idempotent after an earlier drain().
        self.pool.drain()
        super().server_close()


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"
    #: Socket timeout per read: an idle keep-alive connection parks its
    #: handler thread at most this long after the peer vanishes.
    timeout = 30

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:  # pragma: no cover - debugging aid
            super().log_message(format, *args)

    def log_request(self, code="-", size="-"):
        """One structured line per request (``--log-requests``).

        ``send_response`` calls this for every response, so each request —
        success or error — logs exactly once, with its status code, elapsed
        time, and (for ``/query``) the query id the response headers carry.
        """
        server = self.server
        if not server.log_requests:
            return
        code = getattr(code, "value", code)
        started = getattr(self, "_request_started", None)
        elapsed_ms = (
            None if started is None
            else round((time.perf_counter() - started) * 1e3, 3)
        )
        query_id = getattr(self, "_query_id", None)
        if server.log_json:
            server.logger.info(json.dumps(
                {
                    "ts": round(time.time(), 6),
                    "method": self.command,
                    "path": self.path,
                    "status": int(code),
                    "elapsed_ms": elapsed_ms,
                    "query_id": query_id,
                },
                sort_keys=True,
            ))
        else:
            parts = [f"{self.command} {self.path} {code}"]
            if elapsed_ms is not None:
                parts.append(f"{elapsed_ms:.3f}ms")
            if query_id is not None:
                parts.append(f"qid={query_id}")
            server.logger.info(" ".join(parts))

    def _send_payload(self, status, payload, headers=()):
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        # Every response to an identified request — success *or* error —
        # carries the query id, so client logs always correlate.
        query_id = getattr(self, "_query_id", None)
        if query_id is not None:
            self.send_header("X-Arc-Query-Id", query_id)
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status, body, headers=()):
        self._send_payload(
            status, json.dumps(body, sort_keys=True).encode("utf-8"), headers
        )

    def _send_text(self, status, text, content_type="text/plain; charset=utf-8"):
        payload = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(payload)

    # -- GET ---------------------------------------------------------------

    def do_GET(self):
        self._request_started = time.perf_counter()
        self._query_id = None
        server = self.server
        if self.path == "/healthz":
            breakers = breaker_states()
            degraded_backends = sorted(
                name
                for name, snap in breakers.items()
                if snap["state"] == "open"
            )
            saturated = server.pool.saturated()
            degraded = bool(degraded_backends) or saturated
            pool = server.pool.snapshot()
            # A degraded 503 is retriable — advise pollers when to return.
            degraded_headers = (
                (("Retry-After", str(RETRY_AFTER_S)),) if degraded else ()
            )
            self._send_json(
                503 if degraded else 200,
                {
                    "status": "degraded" if degraded else "ok",
                    "degraded_backends": degraded_backends,
                    "queue_saturated": saturated,
                    "breakers": breakers,
                    "relations": sorted(
                        server.factory.catalogs[server.factory.default].names()
                    ),
                    "catalogs": server.factory.names(),
                    "backend": server.session.options.backend or "planner",
                    "workers": pool["workers"],
                    "busy": pool["busy"],
                    "queue_depth": pool["queue_depth"],
                    "coalesced_total": server.coalescer.coalesced_total,
                    "requests": server.requests_served,
                    "uptime_s": round(time.monotonic() - server.started, 3),
                },
                headers=degraded_headers,
            )
            return
        if self.path == "/stats":
            totals, loads, hits, probes = server.aggregate_stats()
            pool = server.pool.snapshot()
            pool["coalesced_total"] = server.coalescer.coalesced_total
            pool["queries_executed"] = server.queries_executed
            stats = totals
            stats.update(
                catalog_loads=loads,
                catalog_hits=hits,
                probe_hits=probes,
                requests=server.requests_served,
                requests_total=server.requests_served,
                uptime_s=round(time.monotonic() - server.started, 3),
                breakers=breaker_states(),
                latency=server.metrics.latency_summary(),
                pool=pool,
                quarantine=server.pool.quarantine.snapshot(),
            )
            self._send_json(
                200, stats, headers=(("Cache-Control", "no-store"),)
            )
            return
        if self.path == "/metrics":
            self._send_text(
                200,
                render_prometheus(
                    server.metrics, extra=_prometheus_extra(server)
                ),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
            return
        self._send_json(404, {"error": f"unknown path {self.path!r}"})

    # -- POST /query -------------------------------------------------------

    def _error(self, status, exc_or_message, *, close=False, headers=()):
        if isinstance(exc_or_message, BaseException):
            body = {
                "error": str(exc_or_message),
                "error_type": type(exc_or_message).__name__,
            }
        else:
            body = {"error": exc_or_message, "error_type": "BadRequest"}
        headers = tuple(headers)
        if close:
            self.close_connection = True
            headers += (("Connection", "close"),)
        self._send_json(status, body, headers=headers)

    def do_POST(self):
        self._request_started = time.perf_counter()
        # A fresh id per request, assigned before any parsing: even a
        # malformed request's error response ties back to the server logs.
        self._query_id = uuid.uuid4().hex[:16]
        # Drain the request body before any response: on a keep-alive
        # (HTTP/1.1) connection, unread body bytes would be parsed as the
        # next request line, desyncing every follow-up request.
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            # Cannot drain an unknown length: refuse and drop the socket.
            self._error(400, "bad Content-Length", close=True)
            return
        if length < 0:
            self._error(400, "negative Content-Length", close=True)
            return
        if length > self.server.max_body_bytes:
            # Refused *before* reading: draining an attacker-sized body
            # would be the very resource sink the bound exists to prevent.
            self._error(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.server.max_body_bytes} byte limit",
                close=True,
            )
            return
        payload = self.rfile.read(length)
        if self.path != "/query":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            request = json.loads(payload or b"{}")
        except json.JSONDecodeError:
            self._send_json(400, {"error": "request body must be JSON"})
            return
        if not isinstance(request, dict) or not isinstance(
            request.get("query"), str
        ):
            self._send_json(
                400, {"error": 'request must be {"query": "...", ...}'}
            )
            return
        frontend = request.get("frontend", "arc")
        if frontend not in FRONTENDS:
            self._send_json(
                400,
                {"error": f"unknown frontend {frontend!r}; choose from {FRONTENDS}"},
            )
            return
        backend = request.get("backend")
        if backend is not None and not isinstance(backend, str):
            self._send_json(400, {"error": "backend must be a string"})
            return
        factory = self.server.factory
        catalog = request.get("catalog")
        if catalog is None:
            catalog = factory.default
        elif not isinstance(catalog, str) or not factory.has(catalog):
            self._send_json(
                400,
                {
                    "error": f"unknown catalog {catalog!r}; "
                    f"choose from {factory.names()}"
                },
            )
            return
        timeout_ms = request.get("timeout_ms")
        max_rows = request.get("max_rows")
        try:
            validate_budget(timeout_ms, max_rows, flavor="request ")
        except OptionsError as exc:
            self._error(400, exc)
            return
        outcome, coalesced = self.server.execute_query(
            catalog, request["query"], frontend, backend,
            timeout_ms, max_rows, self._query_id,
        )
        headers = outcome.headers
        if coalesced:
            headers += (("X-Arc-Coalesced", "1"),)
        if outcome.status == 200:
            self.server.count_served()
        self._send_payload(outcome.status, outcome.payload, headers)


def make_server(session, host="127.0.0.1", port=0, *, workers=1,
                queue_depth=DEFAULT_QUEUE_DEPTH,
                session_limit=DEFAULT_SESSION_LIMIT, catalogs=None,
                quiet=True, max_body_bytes=DEFAULT_MAX_BODY_BYTES,
                log_requests=False, log_json=False,
                hard_timeout_ms=None, shed_threshold_ms=None,
                poison_threshold=DEFAULT_POISON_THRESHOLD,
                quarantine_ttl_s=DEFAULT_QUARANTINE_TTL_S):
    """Bind a :class:`QueryServer` for *session* (``port=0`` = ephemeral).

    The caller drives it: ``server.serve_forever()`` to block,
    ``server.handle_request()`` for one request, ``server.server_close()``
    to drain the pool and release the socket.  ``server.url`` reports the
    bound address.  ``workers`` sizes the execution pool (worker 0 adopts
    *session*; the default of 1 preserves strictly serialized execution);
    ``queue_depth`` bounds admission; *catalogs* maps extra catalog names
    to Databases for the request ``catalog`` field.  ``log_requests``
    emits one ``repro.serve`` logging line per request; ``log_json``
    switches those lines to structured JSON (and implies
    ``log_requests``).

    Self-healing knobs: ``hard_timeout_ms`` caps any single execution's
    wall time (the watchdog interrupts past it; default 10× the request's
    soft deadline); ``shed_threshold_ms`` sheds deadline-less requests
    when the estimated queue wait exceeds it; ``poison_threshold`` /
    ``quarantine_ttl_s`` tune the poison-query quarantine.
    """
    return QueryServer(
        (host, port), session, workers=workers, queue_depth=queue_depth,
        session_limit=session_limit, catalogs=catalogs, quiet=quiet,
        max_body_bytes=max_body_bytes,
        log_requests=log_requests, log_json=log_json,
        hard_timeout_ms=hard_timeout_ms, shed_threshold_ms=shed_threshold_ms,
        poison_threshold=poison_threshold, quarantine_ttl_s=quarantine_ttl_s,
    )


def install_sigterm_handler(server, *, signals=(signal.SIGTERM, signal.SIGINT)):
    """Make *signals* drain *server* gracefully; returns the handler.

    Drain means: stop accepting, finish every queued and in-flight
    request (their responses are written), then stop the workers.
    ``HTTPServer.shutdown()`` blocks until ``serve_forever`` exits, and
    the signal handler runs **on** the serving thread — calling it
    directly would deadlock.  The handler instead fires
    :meth:`QueryServer.drain` from a helper thread.  Idempotent under
    signal storms: only the first delivery spawns the drain thread.
    """
    fired = []

    def _handler(signum, frame):
        if fired:
            return
        fired.append(signum)
        threading.Thread(target=server.drain, daemon=True).start()

    for signum in signals:
        signal.signal(signum, _handler)
    return _handler
