"""The Session API: long-lived evaluation state and prepared queries.

A :class:`Session` is the warm-state owner real engines put behind a
connection handle: it pins the parsed ASTs of prepared queries (keeping
their per-node compiled-plan caches alive), accumulates one
:class:`~repro.engine.planner.ExecutionStats` across runs, reuses the
SQLite catalog connection through the fingerprint cache, and memoizes
backend capability-probe verdicts per catalog state.  The one-shot
``repro.evaluate(...)`` is a thin wrapper constructing a transient Session;
``repro serve`` holds one Session per catalog so repeated requests hit all
of these caches.

Warm-state inventory (and what invalidates each piece):

========================  =======================================  =====================
state                     where it lives                           invalidated by
========================  =======================================  =====================
scope plans               weak per-AST-node cache (planner)        AST garbage-collected
relation hash indexes     ``Relation._indexes``                    ``Relation.add``
decorrelation indexes     shared derived cache on inner relations  any inner mutation
probe verdicts            shared derived cache on all relations    any catalog mutation
SQLite connection         fingerprint-keyed connection cache       any catalog mutation
parsed queries            the Session's prepared-query LRU         eviction only
========================  =======================================  =====================

A Session (and everything it hands out) is **not thread-safe**; callers
serialize access.  ``repro serve`` gives each pool worker its *own*
Session (built with ``private_connections=True`` so SQLite runs use a
connection no other thread touches) and never shares one across threads.
"""

from __future__ import annotations

from collections import OrderedDict

from ..core.conventions import SET_CONVENTIONS
from ..data.database import Database
from ..data.relation import Relation
from ..engine.evaluator import Evaluator
from ..engine.externals import standard_registry
from ..engine.planner import ExecutionStats
from ..errors import BudgetExceeded, OptionsError, QueryTimeout
from ..frontends import load_query
from ..obs import NULL_SPAN
from .options import EvalOptions

#: Prepared queries a session retains before evicting the least recent.
_PREPARED_LIMIT = 64

#: Private in-memory SQLite connections a session retains (one per
#: catalog fingerprint) before evicting and closing the least recent.
_PRIVATE_CONN_LIMIT = 8


class Prepared:
    """A query bound to a Session: parse once, run many times warm.

    Holding the Prepared keeps its AST alive, which keeps the weak
    per-node plan caches warm — a second :meth:`run` performs zero plan
    compilations, zero decorrelation-index builds, and zero catalog
    reloads (counter-pinned by ``tests/api/test_session.py``).
    """

    __slots__ = ("session", "node", "text", "frontend", "run_count", "__weakref__")

    def __init__(self, session, node, text=None, frontend=None):
        self.session = session
        self.node = node
        self.text = text
        self.frontend = frontend
        self.run_count = 0

    def run(self, backend=None, *, timeout_ms=None, max_rows=None,
            cancel=None):
        """Evaluate on the session's engine (or *backend* for this run).

        Returns a :class:`~repro.data.relation.Relation` for collections
        and programs, a :class:`~repro.data.values.Truth` for sentences.
        ``timeout_ms`` / ``max_rows`` override the session options' budget
        for this run only; exceeding either raises
        :class:`~repro.errors.QueryTimeout` /
        :class:`~repro.errors.BudgetExceeded`.  *cancel* attaches a
        :class:`~repro.util.deadline.CancelToken` so an external
        supervisor (the serving watchdog) can interrupt the run.
        """
        return self.session._run_prepared(
            self, backend, timeout_ms=timeout_ms, max_rows=max_rows,
            cancel=cancel,
        )

    def run_info(self, backend=None, *, timeout_ms=None, max_rows=None,
                 cancel=None):
        """Like :meth:`run`, plus execution metadata.

        Returns ``{"result": ..., "fallback_reasons": [...]}`` where the
        reasons list is the explicit channel for backend-fallback
        explanations (empty when the requested engine ran the query
        itself).  ``repro serve`` uses this instead of sniffing warnings.
        """
        reasons = []
        result = self.session._run_prepared(
            self,
            backend,
            timeout_ms=timeout_ms,
            max_rows=max_rows,
            reasons=reasons,
            cancel=cancel,
        )
        return {"result": result, "fallback_reasons": reasons}

    def explain(self, backend=None, *, timeout_ms=None, max_rows=None):
        """Run once under a recording tracer and profile where time went.

        Returns an :class:`Explain` whose ``render()`` (and ``str()``) is
        the span tree — per-phase timings, strategy decisions, fallback
        reasons, and the stats counters each phase moved.  The session's
        own tracer (if any) is restored afterwards, so explaining inside a
        metrics-collecting server does not disturb its histograms.
        """
        from ..obs import Tracer

        session = self.session
        previous = session.tracer
        tracer = Tracer(stats=session.stats)
        session.tracer = tracer
        reasons = []
        try:
            result = session._run_prepared(
                self,
                backend,
                timeout_ms=timeout_ms,
                max_rows=max_rows,
                reasons=reasons,
            )
        finally:
            session.tracer = previous
        spans, events = tracer.take()
        return Explain(result, reasons, spans, events)

    def __repr__(self):
        source = self.text if self.text is not None else type(self.node).__name__
        return f"Prepared({source!r}, runs={self.run_count})"


class Explain:
    """The profile :meth:`Prepared.explain` returns: result + span tree."""

    __slots__ = ("result", "fallback_reasons", "spans", "events")

    def __init__(self, result, fallback_reasons, spans, events):
        self.result = result
        self.fallback_reasons = fallback_reasons
        self.spans = spans
        self.events = events

    def render(self, file=None):
        """The span tree as text (also printed to *file* when given)."""
        from ..obs import render_span_tree

        return render_span_tree(self.spans, self.events, file=file)

    def __str__(self):
        return self.render()

    def __repr__(self):
        return (
            f"Explain(spans={len(self.spans)}, events={len(self.events)}, "
            f"fallbacks={len(self.fallback_reasons)})"
        )


class SessionContext:
    """The per-run view a :class:`~repro.backends.exec.Backend` receives.

    Bundles the (possibly per-run overridden) options with the session's
    warm state, so backends stop taking loose ``db_file``/``decorrelate``
    kwargs.  Duck-typed on purpose: the backend registry must not import
    this package.
    """

    __slots__ = ("session", "options", "deadline")

    def __init__(self, session, options, deadline=None):
        self.session = session
        self.options = options
        #: Armed Deadline for this run, or None (unbounded).
        self.deadline = deadline

    @property
    def stats(self):
        return self.session.stats

    def acquire_connection(self, database):
        """A SQLite connection for *database* honoring ``options.db_file``.

        With ``db_file`` the connection is fresh and the caller closes it;
        in-memory connections belong to the fingerprint cache and must not
        be closed.
        """
        return self.session._acquire_connection(database, self.options.db_file)

    def probe(self, engine, node, conventions, database, options):
        return self.session._probe(engine, node, conventions, database, options)

    @property
    def tracer(self):
        """The session's tracer (or None) — backends read it duck-typed."""
        return self.session.tracer


class Session:
    """Long-lived evaluation context over one catalog.

    >>> import repro
    >>> from repro.api import Session, EvalOptions
    >>> db = repro.Database()
    >>> _ = db.create("R", ["A", "B"], [(1, 10), (2, 20)])
    >>> session = Session(db, repro.SQL_CONVENTIONS,
    ...                   options=EvalOptions(backend="sqlite"))
    >>> prepared = session.prepare("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B > 15]}")
    >>> prepared.run().sorted_rows()
    [Tuple(A=2)]
    >>> prepared.run(backend="reference").sorted_rows()  # per-run override
    [Tuple(A=2)]
    """

    def __init__(self, database=None, conventions=SET_CONVENTIONS, *,
                 externals=None, options=None, private_connections=False):
        if options is None:
            options = EvalOptions()
        elif not isinstance(options, EvalOptions):
            raise OptionsError(
                f"options must be an EvalOptions, got {type(options).__name__}"
            )
        self.database = database if database is not None else Database()
        self.conventions = conventions
        self.externals = externals if externals is not None else standard_registry()
        self.options = options
        #: One ExecutionStats accumulated across every run of this session.
        self.stats = ExecutionStats()
        #: Catalog (re)loads and warm hits observed by this session's
        #: SQLite runs (a load means the fingerprint changed or was cold).
        self.catalog_loads = 0
        self.catalog_hits = 0
        #: Capability-probe verdicts served from the warm cache.
        self.probe_hits = 0
        #: Optional :class:`~repro.obs.Tracer`; None (the default) keeps
        #: every instrumentation site on its zero-overhead branch.
        self.tracer = None
        #: With ``private_connections`` the session's in-memory SQLite
        #: connections are its own (built fresh, closed by :meth:`close`)
        #: instead of borrowed from the process-wide fingerprint cache.
        #: ``repro serve`` sets this so N pool workers execute on N
        #: connections rather than serializing on one shared handle.
        self.private_connections = private_connections
        self._prepared = OrderedDict()  # (text, frontend) -> Prepared
        self._connections = OrderedDict()  # fingerprint -> private sqlite conn

    # -- preparing ---------------------------------------------------------

    def prepare(self, query, frontend="arc"):
        """Parse (or adopt) *query* and bind it to this session.

        *query* may be surface text in any supported *frontend* language
        (``arc``, ``alt``, ``sql``, ``datalog``, ``trc``, ``rel``) or an
        already-built ARC node.  Textual queries are cached in an LRU, so
        ``repro serve`` re-preparing the same request string is a hit.
        """
        tracer = self.tracer
        if not isinstance(query, str):
            return Prepared(self, query)
        key = (query, frontend)
        prepared = self._prepared.get(key)
        if prepared is not None:
            self._prepared.move_to_end(key)
            if tracer is not None:
                tracer.event("prepared.lru", result="hit", frontend=frontend)
                tracer.count(
                    "arc_prepared_lru_total",
                    help_text="Prepared-query LRU lookups by outcome.",
                    result="hit",
                )
            return prepared
        if tracer is not None:
            tracer.count(
                "arc_prepared_lru_total",
                help_text="Prepared-query LRU lookups by outcome.",
                result="miss",
            )
        with NULL_SPAN if tracer is None else tracer.span(
            "frontend.parse", frontend=frontend
        ):
            node = load_query(query, frontend, self.database)
        prepared = Prepared(self, node, query, frontend)
        self._prepared[key] = prepared
        while len(self._prepared) > _PREPARED_LIMIT:
            self._prepared.popitem(last=False)
        return prepared

    def evaluate(self, query, frontend="arc", *, backend=None):
        """One-shot convenience: ``prepare(query, frontend).run(backend)``."""
        return self.prepare(query, frontend).run(backend)

    # -- running -----------------------------------------------------------

    def _run_prepared(self, prepared, backend=None, *, timeout_ms=None,
                      max_rows=None, reasons=None, cancel=None):
        options = self.options.with_backend(backend)
        deadline = options.deadline(timeout_ms, max_rows, cancel)
        tracer = self.tracer
        with NULL_SPAN if tracer is None else tracer.span(
            "query",
            backend=options.backend or "planner",
            warm=prepared.run_count > 0,
        ):
            try:
                if options.backend is None:
                    result = self._evaluator(options, deadline).evaluate(
                        prepared.node
                    )
                else:
                    from ..backends.exec import run_backend

                    result = run_backend(
                        prepared.node,
                        self.database,
                        self.conventions,
                        options.backend,
                        externals=self.externals,
                        fallback=options.fallback,
                        context=SessionContext(self, options, deadline),
                        reasons=reasons,
                    )
            except QueryTimeout:
                self.stats.timeouts += 1
                raise
            except BudgetExceeded:
                self.stats.budget_exceeded += 1
                raise
        # Counted only on success: a failed run leaves the query cold, so
        # serve's X-Arc-Warm header never marks an errored first attempt.
        prepared.run_count += 1
        return result

    def _evaluator(self, options, deadline=None):
        """A fresh in-process evaluator sharing this session's stats.

        Evaluator instances are cheap and carry per-program definition
        state (``defined``) that must not leak between queries; the warm
        state proper lives on the AST nodes, the relations, and this
        session — all of which the fresh instance sees.
        """
        evaluator = Evaluator(
            self.database,
            self.conventions,
            self.externals,
            planner=options.planner,
            decorrelate=options.decorrelate,
            deadline=deadline,
            tracer=self.tracer,
        )
        evaluator.stats = self.stats
        return evaluator

    # -- warm state --------------------------------------------------------

    def _acquire_connection(self, database, db_file=None):
        from ..backends.exec import sqlite_exec

        tracer = self.tracer
        if db_file is None and self.private_connections:
            # Session-private connections: the fingerprint keys a per-
            # *session* LRU instead of the process-wide cache, so this
            # session's runs never share a sqlite handle with another
            # thread.  Counters are maintained locally — the global
            # ``sqlite_exec.stats`` delta would race across workers.
            with NULL_SPAN if tracer is None else tracer.span(
                "sqlite.connect"
            ) as span:
                fingerprint = sqlite_exec.catalog_fingerprint(database)
                conn = self._connections.get(fingerprint)
                if conn is not None:
                    self._connections.move_to_end(fingerprint)
                    self.catalog_hits += 1
                    span.tag(loaded=False)
                    return conn
                conn = sqlite_exec.load_private_catalog(database)
                span.tag(loaded=True)
            self.catalog_loads += 1
            self._connections[fingerprint] = conn
            while len(self._connections) > _PRIVATE_CONN_LIMIT:
                _, evicted = self._connections.popitem(last=False)
                evicted.close()
            return conn
        before = sqlite_exec.stats["loads"]
        with NULL_SPAN if tracer is None else tracer.span("sqlite.connect") as span:
            conn = sqlite_exec.connect_catalog(database, db_file=db_file)
            loaded = sqlite_exec.stats["loads"] - before
            span.tag(loaded=bool(loaded))
        self.catalog_loads += loaded
        if not loaded:
            self.catalog_hits += 1
        return conn

    def _probe(self, engine, node, conventions, database, options):
        """Capability-probe *engine* for *node*, memoized per catalog state.

        The verdict is cached on every catalog relation via the shared
        derived-result cache, so mutating **any** relation (which can
        change NULL-hazard and decorrelation answers) re-probes, while an
        unchanged catalog answers from memory.
        """
        tracer = self.tracer
        relations = [database[name] for name in database.names()] if database else []
        tag = (
            "capabilities",
            engine.name,
            conventions,
            tuple(
                (key, value)
                for key, value in sorted(options.items())
                if isinstance(value, (str, int, float, bool, type(None)))
            ),
            frozenset(database.names()) if database else frozenset(),
        )
        if relations:
            cached = Relation.derived_get_shared(relations, node, tag)
            if cached is not None:
                self.probe_hits += 1
                if tracer is not None:
                    tracer.event(
                        "probe.cached", engine=engine.name,
                        problems=len(cached),
                    )
                return list(cached)
        with NULL_SPAN if tracer is None else tracer.span(
            "probe.capabilities", engine=engine.name
        ) as span:
            problems = engine.capabilities(node, conventions, database, **options)
            span.tag(problems=len(problems))
        if relations:
            Relation.derived_put_shared(relations, node, tag, tuple(problems))
        return problems

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        """Release the session's prepared queries and private connections.

        Shared in-memory SQLite connections belong to the process-wide
        fingerprint cache (other sessions over the same catalog share
        them) and stay open; *private* connections
        (``private_connections=True``) are this session's own and are
        closed here — the serve pool's session LRU relies on that when it
        evicts.
        """
        self._prepared.clear()
        while self._connections:
            _, conn = self._connections.popitem(last=False)
            conn.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        return (
            f"Session(relations={sorted(self.database.names())}, "
            f"backend={self.options.backend or 'planner'!r}, "
            f"prepared={len(self._prepared)})"
        )
