"""E18 — Fig. 21 / eqs. (27)-(29): the count bug, end to end.

Claims reproduced, on R(9, 0) with S = ∅:

* version 1 (correlated scalar test, eq. 27) returns {9};
* version 2 (naive decorrelation, eq. 28) returns {} — the bug;
* version 3 (left-join decorrelation, eq. 29) returns {9};
* the SQL texts of Figs. 21a-c behave identically through the frontend;
* the automatic rewrites generate versions 2 and 3 from version 1;
* all three ALT modalities render (Figs. 21g-i).
"""

import pytest

from repro.core import render_alt, rewrites
from repro.core.conventions import SQL_CONVENTIONS
from repro.core.parser import parse
from repro.engine import evaluate
from repro.frontends.sql import to_arc
from repro.workloads import instances, paper_examples

from _common import rows, show


@pytest.fixture
def db():
    return instances.count_bug_instance()


def versions():
    return (
        parse(paper_examples.ARC["eq27"]),
        parse(paper_examples.ARC["eq28"]),
        parse(paper_examples.ARC["eq29"]),
    )


def test_three_versions(benchmark, db):
    v1, v2, v3 = versions()

    def run_all():
        return (
            evaluate(v1, db, SQL_CONVENTIONS),
            evaluate(v2, db, SQL_CONVENTIONS),
            evaluate(v3, db, SQL_CONVENTIONS),
        )

    r1, r2, r3 = benchmark(run_all)
    assert rows(r1) == [(9,)]
    assert rows(r2) == []
    assert rows(r3) == [(9,)]
    show(
        "the count bug on R(9,0), S=∅",
        f"v1 (eq. 27): {rows(r1)}",
        f"v2 (eq. 28): {rows(r2)}   <- the bug",
        f"v3 (eq. 29): {rows(r3)}",
    )


def test_sql_texts(benchmark, db):
    def run_all():
        return tuple(
            evaluate(to_arc(paper_examples.SQL[key], database=db), db, SQL_CONVENTIONS)
            for key in ("fig21a", "fig21b", "fig21c")
        )

    r1, r2, r3 = benchmark(run_all)
    assert rows(r1) == [(9,)] and rows(r2) == [] and rows(r3) == [(9,)]


def test_automatic_rewrites(benchmark, db):
    v1, _, _ = versions()

    def rewrite_both():
        return rewrites.decorrelate_scalar_naive(v1), rewrites.decorrelate_scalar(v1)

    naive, correct = benchmark(rewrite_both)
    assert evaluate(naive, db, SQL_CONVENTIONS).is_empty()
    assert rows(evaluate(correct, db, SQL_CONVENTIONS)) == [(9,)]


def test_alt_modalities(benchmark):
    v1, v2, v3 = versions()
    alts = benchmark(lambda: [render_alt(v) for v in (v1, v2, v3)])
    assert "GROUPING: ∅" in alts[0]  # Fig. 21g
    assert "GROUPING: s.id" in alts[1]  # Fig. 21h
    assert "JOIN: left(r2, s)" in alts[2]  # Fig. 21i
    show("Fig. 21g — ALT of version 1", alts[0])
    show("Fig. 21i — ALT of version 3", alts[2])


def test_diagnosis_via_vocabulary(benchmark):
    """The paper: diagnosing the bug means naming the difference between an
    aggregate used as a *test* and the keyed-grouping rewrite."""
    from repro.analysis import detect_patterns

    v1, v2, v3 = versions()
    patterns = benchmark(lambda: [detect_patterns(v) for v in (v1, v2, v3)])
    assert "aggregate-test" in patterns[0]
    assert "fio-aggregation" in patterns[1]  # keyed grouping, no γ∅
    assert "outer-join" in patterns[2]


def test_populated_agreement(benchmark):
    db = instances.count_bug_populated(n_outer=10)
    v1, _, v3 = versions()

    def both():
        return evaluate(v1, db, SQL_CONVENTIONS), evaluate(v3, db, SQL_CONVENTIONS)

    r1, r3 = benchmark(both)
    assert r1.set_equal(r3)
