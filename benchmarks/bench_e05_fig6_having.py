"""E05 — Fig. 6 / eq. (8): multiple aggregates + HAVING.

Claim reproduced: in ARC, HAVING is simply a selection applied after
aggregation (a wrapping collection); the translation of Fig. 6a's SQL
matches eq. (8) and returns the paper's answer on the running instance.
"""

import pytest

from repro.analysis import same_pattern
from repro.core.conventions import SET_CONVENTIONS, SQL_CONVENTIONS
from repro.core.parser import parse
from repro.data import generators
from repro.engine import evaluate
from repro.frontends.sql import to_arc
from repro.workloads import instances, paper_examples

from _common import rows, show


def test_eq8_on_paper_instance(benchmark):
    db = instances.payroll_instance()
    query = parse(paper_examples.ARC["eq8"])
    result = benchmark(evaluate, query, db, SET_CONVENTIONS)
    assert rows(result) == [("cs", 55.0)]
    show("eq. (8) on the Fig. 6 instance", result.to_table())


def test_sql_translation_matches_eq8(benchmark):
    db = instances.payroll_instance()
    sql_query = benchmark(to_arc, paper_examples.SQL["fig6a"], database=db)
    arc_query = parse(paper_examples.ARC["eq8"])
    assert same_pattern(sql_query, arc_query, anonymize_relations=True)
    assert evaluate(sql_query, db, SQL_CONVENTIONS).set_equal(
        evaluate(arc_query, db, SET_CONVENTIONS)
    )


def test_scaling_payroll(benchmark):
    db = generators.payroll_database(500, 20, seed=7)
    query = parse(paper_examples.ARC["eq8"])
    result = benchmark(evaluate, query, db, SET_CONVENTIONS)
    # Cross-check with a direct Python computation.
    dept_of = {row["empl"]: row["dept"] for row in db["R"]}
    totals, sums = {}, {}
    for row in db["S"]:
        dept = dept_of[row["empl"]]
        sums.setdefault(dept, []).append(row["sal"])
    expected = {
        (dept, sum(sals) / len(sals))
        for dept, sals in sums.items()
        if sum(sals) > 100
    }
    produced = {(row["dept"], row["av"]) for row in result}
    assert produced == expected
