"""E26 — the Session API: cold one-shot vs warm prepared execution.

Runs the E21 join-chain sweep under the SQLite backend on three
configurations spanning the request lifecycles a service can have:

* **one-shot cold** — a stateless process per request (the pre-Session
  architecture the ROADMAP's service-mode item describes: the catalog
  fingerprint cache is process-local, so every request pays parse +
  capability probe + SQL render + catalog load + execute).  Simulated by
  clearing the connection cache around each call;
* **one-shot warm-process** — repeated ``evaluate()`` calls in one process:
  the catalog connection is warm, but each call re-parses and re-probes
  because nothing pins the AST;
* **session warm** — ``Prepared.run()`` on a long-lived
  :class:`repro.api.Session`: parse, scope plans, probe verdict, rendered
  SQL, and the loaded connection are all reused; a request is fingerprint
  check + execute + row coercion.

Every configuration asserts bag-equality against the planner, and the
width-4 sweep asserts the acceptance claim directly: warm ``Prepared.run()``
must be ≥ 3× faster than the cold one-shot.

Representative numbers from the machine this API was built on
(CPython 3.12, SQL conventions, min over rounds):

==========================================  ===========  ============  ===========
case                                        one-shot     one-shot      session
                                            cold         warm-process  warm
==========================================  ===========  ============  ===========
join width=2 (E21 sweep, 60 rows/rel)         ~0.85 ms      ~0.39 ms     ~0.12 ms
join width=3 (E21 sweep, 60 rows/rel)         ~1.19 ms      ~0.56 ms     ~0.19 ms
join width=4 (E21 sweep, 60 rows/rel)         ~1.62 ms      ~0.77 ms     ~0.31 ms
==========================================  ===========  ============  ===========

(≈ 5× cold → warm at width 4; the remaining warm cost is SQLite execution
plus result coercion, which PR 4 cut ~2× by deduplicating raw rows before
building Tuples.)  The serve endpoint adds HTTP framing on top of the
session-warm column — its second-request latency is asserted (not timed)
by ``tests/api/test_serve.py``.
"""

import os
import time

import pytest

from repro.api import EvalOptions, Session
from repro.backends.comprehension import render
from repro.backends.exec import clear_catalog_cache
from repro.core.conventions import SQL_CONVENTIONS
from repro.core.parser import parse
from repro.data import generators
from repro.engine import evaluate
from repro.workloads import sweeps

OPTIONS = EvalOptions(backend="sqlite")


def _database(width):
    return generators.chain_database(width, 60, domain=30, seed=3)


def _query_text(width):
    return render(sweeps.join_chain_query(width))


def _planner_result(text, db):
    return evaluate(parse(text), db, SQL_CONVENTIONS, options=EvalOptions())


def _one_shot(text, db):
    return evaluate(parse(text), db, SQL_CONVENTIONS, options=OPTIONS)


# -- the three lifecycles ------------------------------------------------------


@pytest.mark.parametrize("width", [2, 3, 4])
def test_one_shot_cold_process(benchmark, width):
    db = _database(width)
    text = _query_text(width)

    def cold():
        clear_catalog_cache()
        return _one_shot(text, db)

    result = benchmark(cold)
    assert result == _planner_result(text, db)


@pytest.mark.parametrize("width", [2, 3, 4])
def test_one_shot_warm_process(benchmark, width):
    db = _database(width)
    text = _query_text(width)
    _one_shot(text, db)  # prime the process-level caches
    result = benchmark(_one_shot, text, db)
    assert result == _planner_result(text, db)


@pytest.mark.parametrize("width", [2, 3, 4])
def test_session_warm(benchmark, width):
    db = _database(width)
    text = _query_text(width)
    clear_catalog_cache()  # the cold run below pays the load, not the bench
    session = Session(db, SQL_CONVENTIONS, options=OPTIONS)
    prepared = session.prepare(text)
    prepared.run()  # cold run: parse/probe/render/load
    result = benchmark(prepared.run)
    assert result == _planner_result(text, db)
    assert session.catalog_loads == 1  # every benchmarked run was warm


# -- acceptance ----------------------------------------------------------------


def test_warm_prepared_run_beats_cold_one_shot_by_3x():
    """Acceptance claim: on the E21 width-4 sweep under the SQLite backend,
    a warm ``Prepared.run()`` is ≥ 3× faster than the one-shot
    ``evaluate()`` a stateless caller pays per request.

    A wall-clock ordering with a wide margin (measured ~5×); skipped on
    shared CI runners, where scheduling noise makes timing assertions flake
    (the warm-reuse property itself is counter-pinned in
    ``tests/api/test_session.py``: zero plan compilations, zero
    decorrelation-index builds, zero catalog reloads on the second run).
    """
    if os.environ.get("CI") and not os.environ.get("RUN_TIMING_ASSERTIONS"):
        pytest.skip("timing assertion; set RUN_TIMING_ASSERTIONS=1 to run in CI")
    db = _database(4)
    text = _query_text(4)
    session = Session(db, SQL_CONVENTIONS, options=OPTIONS)
    prepared = session.prepare(text)
    assert prepared.run() == _planner_result(text, db)

    def best_of(fn, rounds=7):
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    def cold():
        clear_catalog_cache()
        _one_shot(text, db)

    warm_time = best_of(prepared.run)
    cold_time = best_of(cold, rounds=5)
    assert cold_time > 3 * warm_time, (
        f"session warm {warm_time * 1e3:.3f} ms vs "
        f"one-shot cold {cold_time * 1e3:.3f} ms"
    )
