"""E19 — Section 1/4: intent-based similarity beats surface similarity.

Claims reproduced: (i) semantically equivalent SQL texts with very
different surface syntax map to identical canonical ARC patterns;
(ii) surface-similar SQL with different semantics maps far apart in
pattern space; (iii) the intent-similarity ranking therefore inverts the
string-similarity ranking — the paper's argument for intent-based
benchmarking of NL2SQL.
"""

import pytest

from repro.analysis import (
    pattern_equal,
    similarity,
    surface_similarity,
)
from repro.data import Database
from repro.frontends.sql import to_arc

from _common import show


@pytest.fixture
def db():
    database = Database()
    database.create("R", ("A", "B"))
    database.create("S", ("A", "B"))
    return database


# Pair 1: same semantics, different surface (scalar subquery vs lateral).
EQUIVALENT_A = (
    "select distinct R.A, (select sum(R2.B) sm from R R2 where R2.A = R.A) sm from R"
)
EQUIVALENT_B = (
    "select distinct R.A, X.sm from R join lateral "
    "(select sum(R2.B) sm from R R2 where R2.A = R.A) X on true"
)

# Pair 2: nearly identical surface, different semantics.
SIMILAR_A = "select R.A from R where exists (select 1 from S where S.A = R.A)"
SIMILAR_B = "select R.A from R where not exists (select 1 from S where S.A = R.A)"


def test_equivalent_texts_same_pattern(benchmark, db):
    arc_a = to_arc(EQUIVALENT_A, database=db)
    arc_b = to_arc(EQUIVALENT_B, database=db)
    equal = benchmark(pattern_equal, arc_a, arc_b)
    assert equal
    assert surface_similarity(EQUIVALENT_A, EQUIVALENT_B) < 0.8


def test_similar_texts_different_pattern(benchmark, db):
    arc_a = to_arc(SIMILAR_A, database=db)
    arc_b = to_arc(SIMILAR_B, database=db)
    equal = benchmark(pattern_equal, arc_a, arc_b)
    assert not equal
    assert surface_similarity(SIMILAR_A, SIMILAR_B) > 0.9


def test_ranking_inversion(benchmark, db):
    """Intent similarity ranks the truly-equivalent pair first; surface
    similarity ranks the EXISTS/NOT-EXISTS pair first."""

    def rank():
        intent_equivalent = similarity(
            to_arc(EQUIVALENT_A, database=db), to_arc(EQUIVALENT_B, database=db)
        )
        intent_similar = similarity(
            to_arc(SIMILAR_A, database=db), to_arc(SIMILAR_B, database=db)
        )
        surface_equivalent = surface_similarity(EQUIVALENT_A, EQUIVALENT_B)
        surface_similar = surface_similarity(SIMILAR_A, SIMILAR_B)
        return intent_equivalent, intent_similar, surface_equivalent, surface_similar

    ie, isim, se, ss = benchmark(rank)
    assert ie > isim  # intent metric: equivalent pair wins
    assert ss > se  # surface metric: misleadingly prefers the other pair
    show(
        "E19 ranking inversion (the paper's Section 1 claim)",
        f"equivalent pair:  intent={ie:.3f}  surface={se:.3f}",
        f"similar pair:     intent={isim:.3f}  surface={ss:.3f}",
    )


def test_corpus_pairwise_matrix(benchmark, db):
    """A small corpus: pattern-equality classes match semantic classes."""
    corpus = {
        "join1": "select R.A from R, S where R.B = S.B",
        "join2": "select x.A from R x, S y where x.B = y.B",
        "semi": "select R.A from R where exists (select 1 from S where S.B = R.B)",
        "anti": "select R.A from R where not exists (select 1 from S where S.B = R.B)",
        "notin": "select R.A from R where R.B not in (select S.B from S)",
    }
    arcs = {k: to_arc(v, database=db) for k, v in corpus.items()}

    def classes():
        groups = {}
        from repro.analysis import fingerprint

        for key, arc in arcs.items():
            groups.setdefault(fingerprint(arc), []).append(key)
        return sorted(sorted(v) for v in groups.values())

    grouped = benchmark(classes)
    assert ["join1", "join2"] in grouped  # alias renaming is inessential
    assert ["anti", "notin"] in grouped  # NOT IN ≡ NOT EXISTS embedding
    assert ["semi"] in grouped
    show("E19 corpus pattern classes", *map(str, grouped))
