"""Shared helpers for the benchmark harness.

Every ``bench_eXX_*.py`` module reproduces one experiment from DESIGN.md's
per-experiment index: it rebuilds the paper artifact (query texts, ALT,
higraph, results), *asserts the paper's claim about it*, and times the
relevant operation with pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only

The printed sections (visible with ``-s``) are the reproduced figures;
EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

#: Named metric groups recorded by benchmark modules; ``--json PATH`` dumps
#: them (see ``conftest.pytest_sessionfinish``) for cross-PR tracking.
METRICS = {}


def record_metric(name, **values):
    """Merge *values* into the named metric group for the ``--json`` dump."""
    METRICS.setdefault(name, {}).update(values)
    return METRICS[name]


def show(title, *blocks):
    """Print one reproduced artifact in a labelled section."""
    print()
    print(f"===== {title} =====")
    for block in blocks:
        print(block)


def rows(relation):
    """Deterministic plain-tuple rows for assertions."""
    return [tuple(row[a] for a in relation.schema) for row in relation.sorted_rows()]
