"""E11 — Fig. 11 / eq. (17): NOT IN under NULLs.

Claims reproduced: (i) with a NULL in S, NOT IN returns the empty set
under 3VL; (ii) the paper's two-valued rewrite with explicit IS NULL
checks reproduces SQL's behaviour even under the two-valued convention;
(iii) the automated rewrite produces eq. (17).
"""

import pytest

from repro.analysis import same_pattern
from repro.core import rewrites
from repro.core.conventions import NullComparison, SET_CONVENTIONS
from repro.core.parser import parse
from repro.data import Database, NULL, generators
from repro.engine import evaluate
from repro.frontends.sql import to_arc
from repro.workloads import instances, paper_examples

from _common import rows, show

TWO_VL = SET_CONVENTIONS.with_(null_comparison=NullComparison.TWO_VALUED)
NOT_IN = paper_examples.ARC["not_in_3vl"]


def test_null_poisons_not_in(benchmark):
    db = instances.not_in_instance(with_null=True)
    query = parse(NOT_IN)
    result = benchmark(evaluate, query, db, SET_CONVENTIONS)
    assert result.is_empty()
    without_null = instances.not_in_instance(with_null=False)
    assert rows(evaluate(query, without_null, SET_CONVENTIONS)) == [(2,), (3,)]
    show(
        "Fig. 11: NOT IN with a NULL in S",
        f"S with NULL    -> {rows(result)} (empty, as SQL)",
        f"S without NULL -> {rows(evaluate(query, without_null, SET_CONVENTIONS))}",
    )


def test_eq17_two_valued_rewrite(benchmark):
    db = instances.not_in_instance(with_null=True)
    rewritten = parse(paper_examples.ARC["eq17"])
    result = benchmark(evaluate, rewritten, db, TWO_VL)
    assert result.is_empty()
    assert evaluate(rewritten, db, SET_CONVENTIONS).is_empty()


def test_automatic_rewrite_matches_eq17(benchmark):
    query = parse(NOT_IN)
    rewritten = benchmark(rewrites.not_in_to_not_exists, query)
    assert same_pattern(rewritten, parse(paper_examples.ARC["eq17"]))


def test_sql_texts_agree(benchmark):
    db = instances.not_in_instance(with_null=True)
    fig11a = benchmark(to_arc, paper_examples.SQL["fig11a"], database=db)
    fig11b = to_arc(paper_examples.SQL["fig11b"], database=db)
    assert evaluate(fig11a, db, SET_CONVENTIONS).is_empty()
    assert evaluate(fig11b, db, SET_CONVENTIONS).is_empty()


def test_random_null_instances(benchmark):
    """3VL NOT IN ≡ rewritten 2VL NOT EXISTS on randomized instances."""
    query = parse(NOT_IN)
    rewritten = rewrites.not_in_to_not_exists(query)

    def sweep():
        agreements = 0
        for seed in range(8):
            db = Database()
            db.add(
                generators.binary_relation("R", 12, domain=6, seed=seed, attrs=("A",))
            )
            db.add(
                generators.binary_relation(
                    "S", 12, domain=6, seed=seed + 100, attrs=("A",), null_rate=0.2
                )
            )
            a = evaluate(query, db, SET_CONVENTIONS)
            b = evaluate(rewritten, db, TWO_VL)
            if a.set_equal(b):
                agreements += 1
        return agreements

    assert benchmark(sweep) == 8
