"""E13 — Fig. 13 / Section 2.12: head aggregates as lateral joins.

Claims reproduced: (i) the scalar-subquery and lateral forms agree under
both set and bag semantics; (ii) the LEFT JOIN + GROUP BY rewrite breaks
under bag semantics when R has duplicates — and an automatic search finds
the counterexample; (iii) with a key on R all three agree.
"""

import pytest

from repro.core.conventions import Conventions, SET_CONVENTIONS, Semantics
from repro.core.parser import parse
from repro.data import Database
from repro.engine import evaluate
from repro.frontends.sql import to_arc
from repro.workloads import paper_examples

from _common import rows, show

BAG = Conventions(semantics=Semantics.BAG)


def duplicate_db():
    db = Database()
    db.create("R", ("A",), [(1,), (1,), (2,)])  # duplicates, no key
    db.create("S", ("A", "B"), [(0, 7), (1, 3)])
    return db


def keyed_db():
    db = Database()
    db.create("R", ("A",), [(1,), (2,)])
    db.create("S", ("A", "B"), [(0, 7), (1, 3)])
    return db


def translations(db):
    return {
        "scalar (Fig. 13a)": to_arc(paper_examples.SQL["fig13a"], database=db),
        "lateral (Fig. 13b)": to_arc(paper_examples.SQL["fig13b"], database=db),
        "left join + group by (Fig. 13c)": to_arc(
            paper_examples.SQL["fig13c"], database=db
        ),
    }


def test_scalar_equals_lateral_under_bag(benchmark):
    db = duplicate_db()
    queries = translations(db)

    def both():
        return (
            evaluate(queries["scalar (Fig. 13a)"], db, BAG),
            evaluate(queries["lateral (Fig. 13b)"], db, BAG),
        )

    scalar, lateral = benchmark(both)
    assert scalar == lateral
    assert scalar.multiplicity({"A": 1, "sm": 7}) == 2  # once per outer tuple


def test_left_join_groupby_breaks_under_bag(benchmark):
    db = duplicate_db()
    queries = translations(db)

    def gap():
        lateral = evaluate(queries["lateral (Fig. 13b)"], db, BAG)
        ljgb = evaluate(queries["left join + group by (Fig. 13c)"], db, BAG)
        return lateral, ljgb

    lateral, ljgb = benchmark(gap)
    assert lateral != ljgb
    show(
        "Fig. 13c counterexample (R has duplicate A = 1)",
        "lateral  : " + str(rows(lateral)),
        "ljgb     : " + str(rows(ljgb)),
    )


def test_counterexample_found_automatically(benchmark):
    """Search tiny instances until one separates 13b from 13c."""

    def search():
        for r_dup in (1, 2, 3):
            db = Database()
            db.create("R", ("A",), [(1,)] * r_dup + [(2,)])
            db.create("S", ("A", "B"), [(0, 7), (1, 3)])
            queries = translations(db)
            lateral = evaluate(queries["lateral (Fig. 13b)"], db, BAG)
            ljgb = evaluate(queries["left join + group by (Fig. 13c)"], db, BAG)
            if lateral != ljgb:
                return r_dup
        return None

    found = benchmark(search)
    assert found == 2  # the first instance with a duplicate outer row


def test_all_agree_with_key(benchmark):
    db = keyed_db()
    queries = translations(db)

    def run_all():
        return [evaluate(q, db, BAG) for q in queries.values()]

    results = benchmark(run_all)
    assert results[0] == results[1] == results[2]


def test_all_agree_under_set(benchmark):
    db = duplicate_db()
    queries = translations(db)

    def run_all():
        return [evaluate(q, db, SET_CONVENTIONS) for q in queries.values()]

    results = benchmark(run_all)
    assert results[0].set_equal(results[1])
    assert results[1].set_equal(results[2])
