"""E28 — the scenario corpus through the differential harness.

Not a paper figure: E28 is the standing correctness-and-coverage experiment
the ISSUE-8 harness introduces.  One small-size corpus run produces the
numbers that matter operationally:

* **correctness** — every (scenario, query, frontend, backend) cell must be
  oracle-equal or a typed refusal (asserted, not just recorded);
* **coverage** — how much of the corpus each backend executes natively
  (the sqlite offload fraction is the one PR 2/3/5 moved);
* **throughput** — wall-clock per cell, the number CI watches drift;
* **nl accuracy** — execution-match accuracy of the template pipeline.

``--json BENCH_E28.json`` records all four; when ``SCENARIO_REPORT`` names
a path, the full machine-readable report lands there as well (CI uploads it
next to the BENCH artifacts).
"""

import os
import time

from _common import record_metric, show

from repro.eval.harness import report_failures, run_corpus, write_report


def test_corpus_cells_oracle_equal_with_coverage():
    started = time.perf_counter()
    report = run_corpus(size="small", seed=0)
    elapsed = time.perf_counter() - started

    assert report_failures(report) == []

    summary = report["summary"]
    cells = summary["cells"]
    coverage = {
        backend: round(entry["native"] / entry["cells"], 4)
        for backend, entry in summary["coverage"].items()
    }
    nl = summary["nl"]
    record_metric(
        "e28_corpus",
        scenarios=summary["scenarios"],
        queries=summary["queries"],
        cells=cells,
        ok=summary["ok"],
        typed_errors=summary["typed_error"],
        native_fraction=coverage,
        cell_ms=round(elapsed * 1e3 / cells, 3),
        total_s=round(elapsed, 3),
        nl_accuracy=nl["accuracy"],
        nl_gold_cases=nl["gold_cases"],
    )
    show(
        "E28 corpus run",
        f"{summary['scenarios']} scenarios, {summary['queries']} queries, "
        f"{cells} cells in {elapsed:.2f}s "
        f"({elapsed * 1e3 / cells:.2f} ms/cell)",
        f"native coverage: {coverage}",
        f"nl execution-match accuracy: {nl['accuracy']} "
        f"({nl['gold_matched']}/{nl['gold_cases']})",
    )

    report_path = os.environ.get("SCENARIO_REPORT")
    if report_path:
        write_report(report, report_path)
