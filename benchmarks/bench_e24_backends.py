"""E24 — the SQLite offload backend vs the planner.

Runs the E21 join-chain sweep, the grouped-aggregate sweep, and transitive
closure on three configurations:

* **planner** — the in-process hash-indexed execution layer;
* **sqlite warm** — the catalog already loaded (fingerprint cache hit), so
  a run is render + execute + row coercion;
* **sqlite cold** — the connection cache cleared each round, so a run also
  pays catalog load.

Every configuration asserts bag-equality against the planner, and the
width-4 join sweep asserts the acceptance claim directly: warm-cache SQLite
must beat the planner at the largest E21 size.

Representative numbers from the machine this backend was built on
(CPython 3.11, SQL conventions, min over rounds):

==========================================  ==========  ===========  ===========
case                                        planner     sqlite warm  sqlite cold
==========================================  ==========  ===========  ===========
join width=2 (E21 sweep, 60 rows/rel)         ~0.40 ms     ~0.35 ms     ~0.71 ms
join width=3 (E21 sweep, 60 rows/rel)         ~0.81 ms     ~0.59 ms     ~1.16 ms
join width=4 (E21 sweep, 60 rows/rel)         ~1.56 ms     ~1.00 ms     ~1.77 ms
grouped aggregate n=100 (E21 sweep)           ~0.11 ms     ~0.23 ms         —
grouped aggregate n=900 (E21 sweep)           ~0.79 ms     ~0.81 ms     ~4.29 ms
transitive closure,  50 nodes                 ~2.87 ms     ~1.17 ms         —
transitive closure, 250 nodes                 ~13.5 ms     ~6.90 ms     ~8.12 ms
==========================================  ==========  ===========  ===========

(Small grouped aggregates are the planner's best case — one fused Python
scan beats render + load-amortized execution + row coercion — while joins
and especially recursion favor SQLite's C engine; the recursive CTE halves
the fixpoint's time even *cold*, since load cost is one pass over P.)
"""

import os
import time

import pytest

from repro.backends.exec import clear_catalog_cache
from repro.core.conventions import SQL_CONVENTIONS
from repro.core.parser import parse
from repro.data import generators
from repro.engine import evaluate
from repro.workloads import sweeps

ANCESTOR = (
    "{A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
    "∃p ∈ P, a2 ∈ A[A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}"
)


def _sqlite(query, db):
    return evaluate(query, db, SQL_CONVENTIONS, backend="sqlite")


def _planner(query, db):
    return evaluate(query, db, SQL_CONVENTIONS)


# -- E21 join-chain sweep ------------------------------------------------------


@pytest.mark.parametrize("width", [2, 3, 4])
def test_join_chain_planner(benchmark, width):
    db = generators.chain_database(width, 60, domain=30, seed=3)
    query = sweeps.join_chain_query(width)
    benchmark(_planner, query, db)


@pytest.mark.parametrize("width", [2, 3, 4])
def test_join_chain_sqlite_warm(benchmark, width):
    db = generators.chain_database(width, 60, domain=30, seed=3)
    query = sweeps.join_chain_query(width)
    _sqlite(query, db)  # prime the catalog cache
    result = benchmark(_sqlite, query, db)
    assert result == _planner(query, db)


@pytest.mark.parametrize("width", [2, 3, 4])
def test_join_chain_sqlite_cold(benchmark, width):
    db = generators.chain_database(width, 60, domain=30, seed=3)
    query = sweeps.join_chain_query(width)

    def cold():
        clear_catalog_cache()
        return _sqlite(query, db)

    result = benchmark(cold)
    assert result == _planner(query, db)


def test_warm_sqlite_beats_planner_on_width4_sweep():
    """Acceptance claim: at the largest E21 join size, a warm SQLite call
    (catalog already loaded) is faster than the planner.

    A wall-clock ordering with a ~1.6× margin; skipped on shared CI
    runners, where scheduling noise makes timing assertions flake (the
    repo's perf-regression tests are counter-based for the same reason).
    """
    if os.environ.get("CI") and not os.environ.get("RUN_TIMING_ASSERTIONS"):
        pytest.skip("timing assertion; set RUN_TIMING_ASSERTIONS=1 to run in CI")
    db = generators.chain_database(4, 60, domain=30, seed=3)
    query = sweeps.join_chain_query(4)
    assert _sqlite(query, db) == _planner(query, db)  # also primes the cache

    def best_of(fn, rounds=7):
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn(query, db)
            times.append(time.perf_counter() - start)
        return min(times)

    planner_time = best_of(_planner)
    sqlite_time = best_of(_sqlite)
    assert sqlite_time < planner_time, (
        f"warm sqlite {sqlite_time * 1e3:.3f} ms vs "
        f"planner {planner_time * 1e3:.3f} ms"
    )


# -- grouped aggregates --------------------------------------------------------


@pytest.mark.parametrize("n_rows", [100, 900])
def test_grouped_aggregate_planner(benchmark, n_rows):
    db = sweeps.size_sweep_database(n_rows, seed=1)
    query = sweeps.grouped_aggregate_query()
    benchmark(_planner, query, db)


@pytest.mark.parametrize("n_rows", [100, 900])
def test_grouped_aggregate_sqlite_warm(benchmark, n_rows):
    db = sweeps.size_sweep_database(n_rows, seed=1)
    query = sweeps.grouped_aggregate_query()
    _sqlite(query, db)
    result = benchmark(_sqlite, query, db)
    assert result == _planner(query, db)


@pytest.mark.parametrize("n_rows", [900])
def test_grouped_aggregate_sqlite_cold(benchmark, n_rows):
    db = sweeps.size_sweep_database(n_rows, seed=1)
    query = sweeps.grouped_aggregate_query()

    def cold():
        clear_catalog_cache()
        return _sqlite(query, db)

    result = benchmark(cold)
    assert result == _planner(query, db)


# -- transitive closure (WITH RECURSIVE offload) -------------------------------


@pytest.mark.parametrize("n_nodes", [50, 250])
def test_transitive_closure_planner(benchmark, n_nodes):
    db = generators.parent_edges(n_nodes, seed=5, extra_edges=n_nodes // 4)
    query = parse(ANCESTOR)
    benchmark(_planner, query, db)


@pytest.mark.parametrize("n_nodes", [50, 250])
def test_transitive_closure_sqlite_warm(benchmark, n_nodes):
    db = generators.parent_edges(n_nodes, seed=5, extra_edges=n_nodes // 4)
    query = parse(ANCESTOR)
    _sqlite(query, db)
    result = benchmark(_sqlite, query, db)
    assert result == _planner(query, db)


@pytest.mark.parametrize("n_nodes", [250])
def test_transitive_closure_sqlite_cold(benchmark, n_nodes):
    db = generators.parent_edges(n_nodes, seed=5, extra_edges=n_nodes // 4)
    query = parse(ANCESTOR)

    def cold():
        clear_catalog_cache()
        return _sqlite(query, db)

    result = benchmark(cold)
    assert result == _planner(query, db)
