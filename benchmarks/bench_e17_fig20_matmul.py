"""E17 — Fig. 20 / eqs. (25)/(26): matrix multiplication as a query.

Claim reproduced: the named-perspective grouped-aggregate formulation of
sparse matrix multiplication — with inline arithmetic (eq. 25-as-ARC) or
the reified "*" external relation (eq. 26, the higraph of Fig. 20) —
matches a dense numpy reference on random sparse matrices.
"""

import numpy as np
import pytest

from repro.core.parser import parse
from repro.data import Database, generators
from repro.engine import evaluate
from repro.workloads import paper_examples

from _common import show

DIMS = (10, 8, 6)  # A is 10x8, B is 8x6


@pytest.fixture
def matrices():
    a_rel = generators.sparse_matrix("A", DIMS[0], DIMS[1], density=0.4, seed=71)
    b_rel = generators.sparse_matrix("B", DIMS[1], DIMS[2], density=0.4, seed=72)
    db = Database([a_rel, b_rel])
    dense_a = np.array(generators.matrix_to_dense(a_rel, DIMS[0], DIMS[1]))
    dense_b = np.array(generators.matrix_to_dense(b_rel, DIMS[1], DIMS[2]))
    return db, dense_a @ dense_b


def to_dense(result, shape):
    dense = np.zeros(shape, dtype=int)
    for row in result:
        dense[row["row"], row["col"]] = row["val"]
    return dense


def test_inline_arithmetic_form(benchmark, matrices):
    db, expected = matrices
    query = parse(paper_examples.ARC["eq25_arc"])
    result = benchmark(evaluate, query, db)
    produced = to_dense(result, expected.shape)
    assert (produced == expected * (expected != 0)).all()
    show(
        "Fig. 20 matrix multiplication",
        f"A: {DIMS[0]}x{DIMS[1]}, B: {DIMS[1]}x{DIMS[2]}, "
        f"non-zero outputs: {len(result)}",
    )


def test_reified_star_form(benchmark, matrices):
    db, expected = matrices
    query = parse(paper_examples.ARC["eq26"])
    result = benchmark(evaluate, query, db)
    produced = to_dense(result, expected.shape)
    assert (produced == expected * (expected != 0)).all()


def test_both_forms_identical(benchmark, matrices):
    db, _ = matrices
    inline = parse(paper_examples.ARC["eq25_arc"])
    reified = parse(paper_examples.ARC["eq26"])

    def both():
        return evaluate(inline, db), evaluate(reified, db)

    a, b = benchmark(both)
    assert a.set_equal(b)


@pytest.mark.parametrize("size", [4, 8, 12])
def test_size_sweep(benchmark, size):
    a_rel = generators.sparse_matrix("A", size, size, density=0.5, seed=size)
    b_rel = generators.sparse_matrix("B", size, size, density=0.5, seed=size + 1)
    db = Database([a_rel, b_rel])
    dense_a = np.array(generators.matrix_to_dense(a_rel, size, size))
    dense_b = np.array(generators.matrix_to_dense(b_rel, size, size))
    expected = dense_a @ dense_b
    query = parse(paper_examples.ARC["eq25_arc"])
    result = benchmark(evaluate, query, db)
    assert (to_dense(result, expected.shape) == expected * (expected != 0)).all()
