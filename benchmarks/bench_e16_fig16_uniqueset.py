"""E16 — Figs. 16-19 / eqs. (22)-(24): abstract relations as modules.

Claims reproduced: (i) the 4-level-nested unique-set query (eq. 22), its
Subset-modularized form (eq. 24), the inlined form, and the SQL of Fig. 17
all agree; (ii) modularization shrinks the visible query; (iii) the safe
SQL view encoding (Figs. 18/19) also agrees.
"""

import pytest

from repro.backends.comprehension import render
from repro.core import rewrites
from repro.core.conventions import SET_CONVENTIONS, SQL_CONVENTIONS
from repro.core.parser import parse
from repro.data import generators
from repro.engine import evaluate
from repro.frontends.sql import to_arc
from repro.workloads import instances, paper_examples

from _common import rows, show


@pytest.fixture
def db():
    return instances.likes_instance()


def test_monolithic_unique_set(benchmark, db):
    query = parse(paper_examples.ARC["eq22"])
    result = benchmark(evaluate, query, db, SET_CONVENTIONS)
    assert rows(result) == [("bob",)]


def test_modular_form_agrees(benchmark, db):
    program = parse(paper_examples.ARC["eq23_24"])
    result = benchmark(evaluate, program, db, SET_CONVENTIONS)
    assert rows(result) == [("bob",)]
    monolithic = render(parse(paper_examples.ARC["eq22"]))
    modular_main = render(program.resolve_main())
    assert len(modular_main) < len(monolithic)
    show(
        "modularization shrinks the query",
        f"eq. (22) length: {len(monolithic)} chars",
        f"eq. (24) main length: {len(modular_main)} chars",
    )


def test_inlining_recovers_monolithic(benchmark, db):
    program = parse(paper_examples.ARC["eq23_24"])
    inlined = benchmark(rewrites.inline_abstract, program)
    a = evaluate(inlined, db, SET_CONVENTIONS)
    b = evaluate(parse(paper_examples.ARC["eq22"]), db, SET_CONVENTIONS)
    assert a.set_equal(b)


def test_fig17_sql(benchmark, db):
    query = benchmark(to_arc, paper_examples.SQL["fig17"], database=db)
    result = evaluate(query, db, SQL_CONVENTIONS)
    assert {row[query.head.attrs[0]] for row in result} == {"bob"}


def test_safe_view_encoding(benchmark, db):
    """Figs. 18/19: Subset as a safe SQL view (drinker pairs enumerated)."""
    program = to_arc_program_fig18_19(db)
    result = benchmark(evaluate, program, db, SQL_CONVENTIONS)
    assert {row[result.schema[0]] for row in result} == {"bob"}


def to_arc_program_fig18_19(db):
    from repro.core import nodes as n
    from repro.frontends.sql import to_arc

    view = to_arc(
        "select distinct D1.drinker as left_, D2.drinker as right_ "
        "into Subset from Likes D1, Likes D2 where not exists ("
        "select 1 from Likes L3 where not exists ("
        "select 1 from Likes L4 where L4.beer = L3.beer "
        "and D2.drinker = L4.drinker) and D1.drinker = L3.drinker)",
        database=db,
    )
    main = to_arc(
        "select distinct L1.drinker from Likes L1 where not exists ("
        "select 1 from Likes L2, Subset S1, Subset S2 "
        "where L1.drinker <> L2.drinker and S1.left_ = L1.drinker "
        "and S1.right_ = L2.drinker and S2.left_ = L2.drinker "
        "and S2.right_ = L1.drinker)",
        database=db,
    )
    return n.Program(dict(view.definitions), main)


def test_scaling_generated_instances(benchmark):
    db = generators.likes_database(7, 5, seed=2)
    db.add(db["Likes"].rename({"drinker": "d", "beer": "b"}, name="L"))
    monolithic = parse(paper_examples.ARC["eq22"])
    modular = parse(paper_examples.ARC["eq23_24"])

    def both():
        return (
            evaluate(monolithic, db, SET_CONVENTIONS),
            evaluate(modular, db, SET_CONVENTIONS),
        )

    a, b = benchmark(both)
    assert a.set_equal(b)
