"""E14 — Fig. 14 / Section 2.13: the relation taxonomy.

Claim reproduced: one program can mix base relations (extensional),
intensional definitions (materializable views), external relations
(built-ins with access patterns), and abstract relations (modules without
standalone extensions) — and the validator classifies each correctly.
"""

import pytest

from repro.core.parser import parse
from repro.core.validator import validate
from repro.data import Database
from repro.engine import Evaluator, standard_registry
from repro.workloads import instances

from _common import rows, show

PROGRAM = """
View := {View(d, b) | ∃l ∈ L[View.d = l.d ∧ View.b = l.b]} ;
Sub := {Sub(l, r) | ¬(∃l3 ∈ L[l3.d = Sub.l ∧ ¬(∃l4 ∈ L[l4.b = l3.b ∧ l4.d = Sub.r])])} ;
{Q(d) | ∃v ∈ View, s ∈ Sub, f ∈ Concat[Q.d = f.out ∧ s.l = v.d ∧ s.r = v.d ∧ f.left = v.d ∧ f.right = '!']}
"""


@pytest.fixture
def db():
    return instances.likes_instance()


def test_taxonomy_classification(benchmark, db):
    program = parse(PROGRAM)
    report = benchmark(validate, program, database=db, externals=standard_registry(), allow_abstract=True)
    kinds = report.relation_kinds
    assert kinds["L"] == "base"
    assert kinds["View"] == "defined"
    assert kinds["Sub"] == "defined"
    assert kinds["Concat"] == "external"
    show(
        "Fig. 14 taxonomy over one program",
        *(f"{name}: {kind}" for name, kind in sorted(kinds.items())),
    )


def test_mixed_program_evaluates(benchmark, db):
    program = parse(PROGRAM)
    evaluator = Evaluator(db)
    result = benchmark(evaluator.evaluate, program)
    # Sub(d, d) holds for every drinker (every set ⊆ itself), so every
    # distinct drinker appears, decorated by the external Concat.
    drinkers = {row["d"] for row in db["L"]}
    assert {row["d"] for row in result} == {f"{d}!" for d in drinkers}
    # Intensional: materialized.  Abstract: access-pattern module.
    assert "View" in evaluator.defined
    assert "Sub" in evaluator.abstract


def test_abstract_has_no_standalone_extension(benchmark, db):
    definition = parse(
        "{Sub(l, r) | ¬(∃l3 ∈ L[l3.d = Sub.l ∧ "
        "¬(∃l4 ∈ L[l4.b = l3.b ∧ l4.d = Sub.r])])}"
    )
    report = benchmark(validate, definition)
    assert report.is_abstract
    assert not report.ok  # standalone use is an error ...
    assert validate(definition, allow_abstract=True).ok  # ... module use is fine
