"""E04 — Fig. 5 / eqs. (4)-(7): the FOI ("from the outside in") pattern.

Claim reproduced: the Klug/Hella/Soufflé per-outer-tuple formulation — SQL
scalar subquery (Fig. 5a), SQL lateral join (Fig. 5b), Soufflé head
aggregate (eq. 6), and ARC's explicit FOI form (eq. 7) — all agree with
the FIO form on set-semantics inputs, while exposing a *different
relational pattern* than FIO.
"""

import pytest

from repro.analysis import detect_patterns, same_pattern
from repro.core.conventions import SET_CONVENTIONS
from repro.core.parser import parse
from repro.data import Database, generators
from repro.engine import evaluate
from repro.frontends import datalog
from repro.frontends.sql import to_arc
from repro.workloads import paper_examples

from _common import rows, show


@pytest.fixture
def db():
    database = Database()
    database.add(generators.binary_relation("R", 150, domain=12, seed=5))
    return database


def values(relation):
    return {tuple(row[a] for a in relation.schema) for row in relation.iter_distinct()}


def test_foi_equals_fio(benchmark, db):
    fio = parse(paper_examples.ARC["eq3"])
    foi = parse(paper_examples.ARC["eq7"])
    result_foi = benchmark(evaluate, foi, db, SET_CONVENTIONS)
    result_fio = evaluate(fio, db, SET_CONVENTIONS)
    assert result_foi.set_equal(result_fio)


def test_all_five_formulations_agree(benchmark, db):
    formulations = {
        "ARC FIO (eq. 3)": parse(paper_examples.ARC["eq3"]),
        "ARC FOI (eq. 7)": parse(paper_examples.ARC["eq7"]),
        "SQL scalar (Fig. 5a)": to_arc(paper_examples.SQL["fig5a"], database=db),
        "SQL lateral (Fig. 5b)": to_arc(paper_examples.SQL["fig5b"], database=db),
        "Soufflé (eq. 6)": datalog.to_arc(paper_examples.DATALOG["eq6"], database=db),
    }
    results = benchmark(
        lambda: {
            name: evaluate(q, db, SET_CONVENTIONS) for name, q in formulations.items()
        }
    )
    reference = values(results["ARC FIO (eq. 3)"])
    for name, result in results.items():
        assert values(result) == reference, name
    show("all FOI/FIO formulations agree", f"groups: {len(reference)}")


def test_scalar_and_lateral_same_pattern(benchmark, db):
    scalar = benchmark(to_arc, paper_examples.SQL["fig5a"], database=db)
    lateral = to_arc(paper_examples.SQL["fig5b"], database=db)
    assert same_pattern(scalar, lateral)
    assert "foi-aggregation" in detect_patterns(scalar)


def test_foi_fio_patterns_differ(benchmark):
    fio = parse(paper_examples.ARC["eq3"])
    foi = parse(paper_examples.ARC["eq7"])
    equal = benchmark(same_pattern, fio, foi)
    assert not equal
    show(
        "pattern vocabulary",
        f"eq. (3): {sorted(detect_patterns(fio))}",
        f"eq. (7): {sorted(detect_patterns(foi))}",
    )
