"""E15 — Fig. 15 / eqs. (19)-(21): external relations with access patterns.

Claims reproduced: (i) inline arithmetic (eq. 19), the reified Minus
(eq. 20), and the fully reified Minus+Bigger equijoin (eq. 21) compute the
same answer; (ii) the named-perspective SQL of Fig. 15b translates and
executes; (iii) access patterns let externals produce outputs (Add run
backwards) and chain through joins.
"""

import pytest

from repro.core.parser import parse
from repro.data import Database, generators
from repro.engine import evaluate
from repro.frontends.sql import to_arc
from repro.workloads import instances, paper_examples

from _common import rows, show


@pytest.fixture
def db():
    return instances.arithmetic_instance()


def test_three_formulations_agree(benchmark, db):
    queries = [
        parse(paper_examples.ARC["eq19"]),
        parse(paper_examples.ARC["eq20"]),
        parse(paper_examples.ARC["eq21"]),
    ]

    def run_all():
        return [evaluate(q, db) for q in queries]

    results = benchmark(run_all)
    assert rows(results[0]) == rows(results[1]) == rows(results[2]) == [(1,)]
    show(
        "eqs. (19)/(20)/(21) agree",
        "inline:   " + str(rows(results[0])),
        "reified - : " + str(rows(results[1])),
        "reified -,> : " + str(rows(results[2])),
    )


def test_fig15b_sql(benchmark, db):
    query = benchmark(to_arc, paper_examples.SQL["fig15b"], database=db)
    assert rows(evaluate(query, db)) == [(1,)]


def test_inverse_access_pattern(benchmark):
    """Add(2, x, 5) returns x = 3: the access-pattern machinery of [35]."""
    db = Database()
    db.create("R", ("A",), [(5,), (9,)])
    query = parse(
        "{Q(x) | ∃r ∈ R, f ∈ Add[Q.x = f.right ∧ f.left = 2 ∧ f.out = r.A]}"
    )
    result = benchmark(evaluate, query, db)
    assert rows(result) == [(3,), (7,)]


def test_scaling_with_externals(benchmark):
    db = Database()
    db.add(generators.binary_relation("R", 120, domain=30, seed=41))
    db.add(generators.binary_relation("S", 40, domain=30, seed=42, attrs=("B",)))
    db.add(generators.binary_relation("T", 40, domain=30, seed=43, attrs=("B",)))
    inline = parse(paper_examples.ARC["eq19"])
    reified = parse(paper_examples.ARC["eq21"])

    def both():
        return evaluate(inline, db), evaluate(reified, db)

    a, b = benchmark(both)
    assert a.set_equal(b)
