"""E09 — Section 2.7: set vs bag as an interpretation switch.

Claims reproduced: (i) the unnesting rewrite preserves results under set
semantics but changes multiplicities under bag semantics (the rewriter
refuses it); (ii) deduplication is expressible as grouping on all
projected attributes, without a DISTINCT operator.
"""

import pytest

from repro.core import rewrites
from repro.core.conventions import Conventions, SET_CONVENTIONS, Semantics
from repro.core.parser import parse
from repro.data import Database, generators
from repro.engine import evaluate
from repro.errors import RewriteError

from _common import show

BAG = Conventions(semantics=Semantics.BAG)

NESTED = "{Q(A) | ∃r ∈ R[∃s ∈ S[Q.A = r.A ∧ r.B = s.B]]}"
FLAT = "{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B]}"


@pytest.fixture
def db():
    database = Database()
    database.add(generators.binary_relation("R", 120, domain=15, seed=21))
    database.add(
        generators.binary_relation("S", 120, domain=15, seed=22, attrs=("B", "C"))
    )
    return database


def test_unnesting_valid_under_set(benchmark, db):
    nested = parse(NESTED)
    flat = benchmark(rewrites.unnest, nested)
    assert evaluate(nested, db, SET_CONVENTIONS).set_equal(
        evaluate(flat, db, SET_CONVENTIONS)
    )


def test_unnesting_changes_bag_multiplicities(benchmark, db):
    nested = parse(NESTED)
    flat = parse(FLAT)

    def multiplicity_gap():
        bag_nested = evaluate(nested, db, BAG)
        bag_flat = evaluate(flat, db, BAG)
        return len(bag_flat) - len(bag_nested)

    gap = benchmark(multiplicity_gap)
    assert gap > 0  # the flat form multiplies matching pairs
    show(
        "Section 2.7 multiplicity difference",
        f"flat bag cardinality exceeds nested by {gap}",
    )


def test_rewriter_refuses_bag_unnesting(benchmark):
    nested = parse(NESTED)

    def attempt():
        try:
            rewrites.unnest(nested, BAG)
            return False
        except RewriteError:
            return True

    assert benchmark(attempt)


def test_dedup_as_grouping(benchmark, db):
    plain = parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}")
    deduped = benchmark(rewrites.distinct_as_grouping, plain)
    bag_plain = evaluate(plain, db, BAG)
    bag_deduped = evaluate(deduped, db, BAG)
    assert len(bag_deduped) == bag_plain.distinct_count()
    assert bag_deduped.set_equal(bag_plain.distinct())


def test_same_query_both_interpretations(benchmark, db):
    """Nothing in the surface syntax changes between interpretations."""
    query = parse(FLAT)

    def both():
        return evaluate(query, db, SET_CONVENTIONS), evaluate(query, db, BAG)

    set_result, bag_result = benchmark(both)
    assert set_result == bag_result.distinct()
