"""E20 — Section 4: NL -> ARC -> validate -> SQL, end to end.

Claim reproduced: the paper's proposed NL2SQL architecture runs as a
pipeline in which every stage is observable — generation produces a
structurally constrained ARC query, validation checks well-scopedness and
grouping legality, the SQL rendering executes to the same answer as the
ARC query, and intent comparison works at the pattern level.
"""

import pytest

from repro.analysis import pattern_equal
from repro.core.conventions import SQL_CONVENTIONS
from repro.engine import evaluate
from repro.frontends.sql import to_arc
from repro.nl import Nl2ArcPipeline
from repro.workloads.instances import employees_demo

from _common import show

REQUESTS = [
    "average salary per department",
    "total salary per department",
    "departments with total salary at least 100",
    "employees earning more than their department average",
    "employees in the engineering department",
    "how many employees are there",
    "departments without any employee earning over 80",
]


@pytest.fixture
def pipeline():
    return Nl2ArcPipeline(database=employees_demo())


def test_full_pipeline(benchmark, pipeline):
    results = benchmark(pipeline.batch, REQUESTS)
    assert all(result.ok for result in results)
    for result in results:
        assert result.sql is not None and result.result is not None
    show(
        "E20 pipeline outcomes",
        *(
            f"{r.request!r} -> [{r.matched_rule}] {len(r.result)} rows"
            for r in results
        ),
    )


def test_rendered_sql_round_trips(benchmark, pipeline):
    def roundtrip_all():
        mismatches = []
        for request in REQUESTS:
            result = pipeline.run(request)
            back = to_arc(result.sql, database=pipeline.database)
            again = evaluate(back, pipeline.database, SQL_CONVENTIONS)
            if again != result.result:
                mismatches.append(request)
        return mismatches

    assert benchmark(roundtrip_all) == []


def test_intent_equality_across_phrasings(benchmark, pipeline):
    pairs = [
        ("average salary per department", "avg salary by department"),
        ("total salary per department", "sum of salary for each department"),
    ]

    def compare_all():
        return [
            pattern_equal(pipeline.run(a).arc, pipeline.run(b).arc)
            for a, b in pairs
        ]

    assert all(benchmark(compare_all))


def test_validation_gates_malformed_generation(benchmark, pipeline):
    """A deliberately broken generator is caught by the validation stage."""
    from repro.core import builder as b
    from repro.core import nodes as n
    from repro.core.validator import validate

    broken = b.collection(
        "Q",
        ["dept", "value"],
        b.exists(
            [b.bind("e", "Employee")],
            b.conj(
                b.eq("Q.dept", "e.dept"),
                n.Comparison(n.Attr("Q", "value"), "=", n.AggCall("avg", n.Attr("e", "salary"))),
            ),
            # Missing grouping operator: the classic generation mistake.
        ),
    )
    report = benchmark(validate, broken, database=pipeline.database)
    assert not report.ok
    assert any(i.code == "grouping-required" for i in report.errors())
    show(
        "E20 validation catches a malformed generation",
        *(str(i) for i in report.errors()),
    )


def test_modalities_for_human_verification(benchmark, pipeline):
    result = benchmark(pipeline.run, "average salary per department")
    assert "GROUPING" in result.alt
    assert "══" in result.higraph  # double border marks the grouping scope
    show("E20 higraph for human validation", result.higraph)
